"""Admission control: bounded in-flight sessions with queue shedding.

The paper's tuner keeps lock *memory* matched to demand, but a live
service also needs to bound *concurrency*: every admitted session holds
lock structures, and admitting an unbounded number of them turns memory
pressure into an escalation storm no tuner can outrun.  The admission
controller is the front door:

* at most ``max_in_flight`` sessions run concurrently;
* up to ``max_queue_depth`` more may wait for a slot, FIFO;
* beyond that, requests are **shed** immediately with a backoff hint
  (:class:`AdmissionRejectedError.retry_after_s`) so clients retry
  later instead of piling onto the condition variable.

FIFO fairness is by explicit ticket queue, not by ``notify`` order: each
waiter re-checks whether *its* ticket is at the head, so a late arrival
can never overtake an earlier one even under thundering-herd wakeups.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.errors import (
    AdmissionRejectedError,
    AdmissionTimeoutError,
    ServiceClosedError,
)
from repro.service.clock import Clock, MonotonicClock


@dataclass
class AdmissionStats:
    """Counters for the service's front door."""

    admitted: int = 0
    completed: int = 0
    sheds: int = 0
    timeouts: int = 0
    peak_in_flight: int = 0
    peak_queue_depth: int = 0


class AdmissionController:
    """A counting semaphore with a bounded FIFO wait queue and shedding."""

    def __init__(
        self,
        max_in_flight: int,
        max_queue_depth: int = 0,
        *,
        clock: Optional[Clock] = None,
        retry_after_s: float = 0.05,
    ) -> None:
        if max_in_flight <= 0:
            raise ValueError(f"max_in_flight must be positive, got {max_in_flight}")
        if max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be non-negative, got {max_queue_depth}"
            )
        self.max_in_flight = max_in_flight
        self.max_queue_depth = max_queue_depth
        self.retry_after_s = retry_after_s
        self.clock = clock or MonotonicClock()
        self.stats = AdmissionStats()
        self._cond = threading.Condition()
        self._in_flight = 0
        self._queue: Deque[object] = deque()
        self._closed = False
        #: Optional :class:`repro.obs.waits.WaitEventProfiler`; records
        #: queued admissions into the ``admission`` wait class.  The
        #: immediate-admit path stays probe-free (no wait happened);
        #: disabled costs one ``is None`` check per queued acquire.
        self.wait_profiler = None

    # -- introspection -----------------------------------------------------

    def in_flight(self) -> int:
        with self._cond:
            return self._in_flight

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    # -- the front door ----------------------------------------------------

    def acquire(self, timeout_s: Optional[float] = None) -> None:
        """Take an execution slot, waiting FIFO up to ``timeout_s``.

        Raises :class:`AdmissionRejectedError` (with a retry hint) when
        the wait queue is already full, :class:`AdmissionTimeoutError`
        when no slot frees up in time, and :class:`ServiceClosedError`
        after :meth:`close`.
        """
        deadline = None if timeout_s is None else self.clock.now() + timeout_s
        with self._cond:
            if self._closed:
                raise ServiceClosedError("admission controller is closed")
            if self._in_flight < self.max_in_flight and not self._queue:
                self._admit()
                return
            if len(self._queue) >= self.max_queue_depth:
                self.stats.sheds += 1
                raise AdmissionRejectedError(
                    f"admission queue full "
                    f"({self._in_flight} in flight, {len(self._queue)} queued)",
                    retry_after_s=self.retry_after_s,
                )
            ticket = object()
            self._queue.append(ticket)
            if len(self._queue) > self.stats.peak_queue_depth:
                self.stats.peak_queue_depth = len(self._queue)
            wait_started = (
                self.clock.now() if self.wait_profiler is not None else 0.0
            )
            try:
                while not (
                    self._queue[0] is ticket
                    and self._in_flight < self.max_in_flight
                ):
                    if self._closed:
                        raise ServiceClosedError("admission controller is closed")
                    if deadline is not None:
                        remaining = deadline - self.clock.now()
                        if remaining <= 0:
                            self.stats.timeouts += 1
                            raise AdmissionTimeoutError(
                                f"no admission slot within {timeout_s}s "
                                f"({self._in_flight} in flight)"
                            )
                        self._cond.wait(remaining)
                    else:
                        self._cond.wait()
            except BaseException:
                self._queue.remove(ticket)
                if self.wait_profiler is not None:
                    self.wait_profiler.observe(
                        "admission",
                        max(0.0, self.clock.now() - wait_started),
                        started=wait_started,
                        note="failed",
                    )
                # Our departure may unblock the new head of the queue.
                self._cond.notify_all()
                raise
            self._queue.popleft()
            self._admit()
            if self.wait_profiler is not None:
                self.wait_profiler.observe(
                    "admission",
                    max(0.0, self.clock.now() - wait_started),
                    started=wait_started,
                    note="admitted",
                )
            # The next queued waiter may also fit (slots can free in bursts).
            self._cond.notify_all()

    def _admit(self) -> None:
        self._in_flight += 1
        self.stats.admitted += 1
        if self._in_flight > self.stats.peak_in_flight:
            self.stats.peak_in_flight = self._in_flight

    def set_limits(
        self,
        max_in_flight: Optional[int] = None,
        max_queue_depth: Optional[int] = None,
    ) -> None:
        """Retune the front door live (the broker's posture actuator).

        Raising ``max_in_flight`` wakes queued waiters so newly legal
        slots fill immediately.  Lowering it never evicts running
        sessions -- the in-flight count drains below the new limit as
        sessions complete.  Lowering ``max_queue_depth`` below the
        current queue length likewise sheds only *new* arrivals; queued
        waiters keep their tickets.
        """
        with self._cond:
            if max_in_flight is not None:
                if max_in_flight <= 0:
                    raise ValueError(
                        f"max_in_flight must be positive, got {max_in_flight}"
                    )
                self.max_in_flight = max_in_flight
            if max_queue_depth is not None:
                if max_queue_depth < 0:
                    raise ValueError(
                        f"max_queue_depth must be non-negative, "
                        f"got {max_queue_depth}"
                    )
                self.max_queue_depth = max_queue_depth
            self._cond.notify_all()

    def release(self) -> None:
        """Return a slot taken by :meth:`acquire`."""
        with self._cond:
            if self._in_flight <= 0:
                raise ValueError("release() without a matching acquire()")
            self._in_flight -= 1
            self.stats.completed += 1
            self._cond.notify_all()

    def close(self) -> None:
        """Refuse new admissions and wake every queued waiter."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
