"""The STMM tuning daemon: asynchronous lock-memory tuning on wall time.

In the paper (section 3.2) the memory-tuning algorithm runs inside
DB2's self-tuning memory manager on its regular wall-clock interval,
concurrently with the applications taking locks.  The DES models that
as a deterministic tuner invoked at virtual times; :class:`TunerDaemon`
runs the *same* :class:`~repro.memory.stmm.Stmm` pass from a real
background thread:

* each pass runs **under the service mutex**, so tuning is atomic with
  respect to lock requests -- exactly the interleaving the DES produces,
  just at wall-clock instants instead of scheduled ones;
* the sleep honours :attr:`Stmm.current_interval_s`, so the adaptive
  interval (shrinking while benefit is high) carries over unchanged;
* a **crash of the tuning thread degrades, never corrupts**: the daemon
  catches the failure, records it, and freezes the service's tuning
  hooks (:meth:`LockService.freeze_tuning`) -- from then on the system
  behaves like the static-LOCKLIST baseline, with memory pressure
  answered by escalation alone, while lock service continues;
* every pass leaves one entry in a bounded
  :class:`~repro.obs.audit.TuningAuditLog` -- the inputs the controller
  saw and the action it chose, in the closed audit-reason vocabulary --
  and a crash leaves a terminal ``freeze`` entry, so the ``/stmm``
  endpoint can always answer *why* lock memory is the size it is.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, List, Optional

from repro.memory.stmm import IntervalReport, Stmm
from repro.obs.audit import TuningAuditLog, TuningAuditRecord, audit_reason_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.controller import LockMemoryController
    from repro.obs.registry import MetricRegistry
    from repro.service.service import LockService


class TunerDaemon:
    """Background thread driving :meth:`Stmm.tune` on its interval.

    Parameters
    ----------
    service:
        The :class:`LockService` whose mutex serialises tuning against
        lock traffic and whose ``freeze_tuning`` is the failure path.
    stmm:
        The memory manager to drive; its ``current_interval_s`` governs
        the sleep between passes (re-read every pass, so the adaptive
        interval applies).
    interval_override_s:
        Fixed interval for tests and demos (bypasses the STMM interval).
    max_intervals:
        Stop after this many passes (None = run until :meth:`stop`).
    controller:
        The :class:`LockMemoryController` the STMM drives.  When given,
        each pass appends one :class:`TuningAuditRecord` to
        :attr:`audit` mapping the controller's decision onto the audit
        reason enum; without it the audit log only ever records
        ``freeze`` entries.
    audit_capacity:
        Ring-buffer bound of :attr:`audit`.
    """

    def __init__(
        self,
        service: "LockService",
        stmm: Stmm,
        *,
        interval_override_s: Optional[float] = None,
        max_intervals: Optional[int] = None,
        metrics: Optional["MetricRegistry"] = None,
        controller: Optional["LockMemoryController"] = None,
        audit_capacity: int = 256,
    ) -> None:
        if interval_override_s is not None and interval_override_s <= 0:
            raise ValueError(
                f"interval_override_s must be positive, got {interval_override_s}"
            )
        self.service = service
        self.stmm = stmm
        self.interval_override_s = interval_override_s
        self.max_intervals = max_intervals
        self.controller = controller
        self.audit = TuningAuditLog(capacity=audit_capacity)
        #: Optional repro.obs.incidents.IncidentRecorder; a tuner crash
        #: then captures a ``tuner-freeze`` incident beside the audit
        #: ring's terminal ``freeze`` entry.
        self.incidents = None
        #: Optional repro.service.broker.MemoryBroker; when set, each
        #: pass runs the whole-memory arbitration right after the STMM
        #: pass, still under the service mutex.  A broker failure rides
        #: the same crash -> freeze_tuning degraded path as an STMM
        #: failure: arbitration stops, lock service continues.
        self.broker = None
        self.reports: List[IntervalReport] = []
        self.intervals_run = 0
        self.crash: Optional[BaseException] = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="stmm-tuner", daemon=True
        )
        self._started = False
        self._metrics = metrics
        if metrics is not None:
            self._m_intervals = metrics.counter("tuner.intervals")
            self._m_crashes = metrics.counter("tuner.crashes")
            self._m_lock_pages = metrics.gauge("tuner.locklist_pages")

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "TunerDaemon":
        if self._started:
            raise RuntimeError("tuner daemon already started")
        self._started = True
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 5.0) -> None:
        """Ask the daemon to exit and join it."""
        self._stop.set()
        if self._started:
            self._thread.join(timeout_s)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    @property
    def frozen(self) -> bool:
        """True once a crash has degraded the service to static sizing."""
        return self.crash is not None

    # -- the daemon loop ---------------------------------------------------

    def _interval_s(self) -> float:
        if self.interval_override_s is not None:
            return self.interval_override_s
        return self.stmm.current_interval_s

    def _run(self) -> None:
        try:
            while not self._stop.wait(self._interval_s()):
                self._tune_once()
                if (
                    self.max_intervals is not None
                    and self.intervals_run >= self.max_intervals
                ):
                    return
        except BaseException as exc:  # noqa: BLE001 - degrade, never corrupt
            self.crash = exc
            if self._metrics is not None:
                self._m_crashes.inc()
            self._record_freeze(exc)
            self.service.freeze_tuning(
                f"tuner thread died: {type(exc).__name__}: {exc}"
            )

    def tune_now(self) -> IntervalReport:
        """Run one tuning pass synchronously (tests, manual demos).

        Same code path as the daemon loop, including crash handling --
        the exception is re-raised after the service is frozen so the
        caller sees the failure.
        """
        try:
            return self._tune_once()
        except BaseException as exc:  # noqa: BLE001
            self.crash = exc
            if self._metrics is not None:
                self._m_crashes.inc()
            self._record_freeze(exc)
            self.service.freeze_tuning(
                f"tuner pass failed: {type(exc).__name__}: {exc}"
            )
            raise

    def _tune_once(self) -> IntervalReport:
        service = self.service
        with service._cond:  # noqa: SLF001 - daemon is part of the service
            controller = self.controller
            decisions_before = (
                len(controller.decisions) if controller is not None else 0
            )
            report = self.stmm.tune(service.clock.now())
            self.reports.append(report)
            self.intervals_run += 1
            if self._metrics is not None:
                self._m_intervals.inc()
                self._m_lock_pages.set(service.chain.allocated_pages)
            if controller is not None:
                self._record_audit(report, decisions_before)
            if self.broker is not None:
                self.broker.run_interval(service.clock.now())
            return report

    # -- the audit trail ---------------------------------------------------

    def _record_audit(self, report: IntervalReport, decisions_before: int) -> None:
        """Append one audit entry per controller decision this pass made.

        Runs under the service mutex right after the tuning pass, so
        the controller state it reads (``lmo_pages``, overflow) is
        exactly the post-decision state.
        """
        controller = self.controller
        assert controller is not None
        delta_pages = sum(
            action.pages
            for action in report.actions
            if action.kind == "resize" and action.heap == controller.heap_name
        )
        overflow_pages = controller.registry.overflow_pages
        lmo_max = controller.params.lmo_max_pages(
            overflow_pages, controller.lmo_pages
        )
        lmo_headroom = max(0, lmo_max - controller.lmo_pages)
        for decision in controller.decisions[decisions_before:]:
            self.audit.append(
                TuningAuditRecord(
                    interval=self.intervals_run,
                    time=decision.time,
                    reason=audit_reason_for(decision.reason),
                    delta_pages=delta_pages,
                    current_pages=decision.current_pages,
                    target_pages=decision.target_pages,
                    used_pages=decision.used_pages,
                    free_fraction=decision.free_fraction,
                    overflow_pages=overflow_pages,
                    escalations_in_interval=decision.escalations_in_interval,
                    lmo_headroom_pages=lmo_headroom,
                    detail=decision.reason,
                )
            )

    def _record_freeze(self, exc: BaseException) -> None:
        """Append the terminal ``freeze`` entry after a tuner crash."""
        controller = self.controller
        self.audit.append(
            TuningAuditRecord(
                interval=0,
                time=self.service.clock.now(),
                reason="freeze",
                delta_pages=0,
                current_pages=self.service.chain.allocated_pages,
                target_pages=self.service.chain.allocated_pages,
                used_pages=(
                    controller.used_pages() if controller is not None else 0
                ),
                free_fraction=0.0,
                overflow_pages=(
                    controller.registry.overflow_pages
                    if controller is not None
                    else 0
                ),
                escalations_in_interval=0,
                lmo_headroom_pages=0,
                detail=f"{type(exc).__name__}: {exc}",
            )
        )
        if self.incidents is not None:
            self.incidents.record_freeze(
                self.service.chain, self.service.clock.now(), exc
            )
