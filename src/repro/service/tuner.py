"""The STMM tuning daemon: asynchronous lock-memory tuning on wall time.

In the paper (section 3.2) the memory-tuning algorithm runs inside
DB2's self-tuning memory manager on its regular wall-clock interval,
concurrently with the applications taking locks.  The DES models that
as a deterministic tuner invoked at virtual times; :class:`TunerDaemon`
runs the *same* :class:`~repro.memory.stmm.Stmm` pass from a real
background thread:

* each pass runs **under the service mutex**, so tuning is atomic with
  respect to lock requests -- exactly the interleaving the DES produces,
  just at wall-clock instants instead of scheduled ones;
* the sleep honours :attr:`Stmm.current_interval_s`, so the adaptive
  interval (shrinking while benefit is high) carries over unchanged;
* a **crash of the tuning thread degrades, never corrupts**: the daemon
  catches the failure, records it, and freezes the service's tuning
  hooks (:meth:`LockService.freeze_tuning`) -- from then on the system
  behaves like the static-LOCKLIST baseline, with memory pressure
  answered by escalation alone, while lock service continues.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, List, Optional

from repro.memory.stmm import IntervalReport, Stmm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricRegistry
    from repro.service.service import LockService


class TunerDaemon:
    """Background thread driving :meth:`Stmm.tune` on its interval.

    Parameters
    ----------
    service:
        The :class:`LockService` whose mutex serialises tuning against
        lock traffic and whose ``freeze_tuning`` is the failure path.
    stmm:
        The memory manager to drive; its ``current_interval_s`` governs
        the sleep between passes (re-read every pass, so the adaptive
        interval applies).
    interval_override_s:
        Fixed interval for tests and demos (bypasses the STMM interval).
    max_intervals:
        Stop after this many passes (None = run until :meth:`stop`).
    """

    def __init__(
        self,
        service: "LockService",
        stmm: Stmm,
        *,
        interval_override_s: Optional[float] = None,
        max_intervals: Optional[int] = None,
        metrics: Optional["MetricRegistry"] = None,
    ) -> None:
        if interval_override_s is not None and interval_override_s <= 0:
            raise ValueError(
                f"interval_override_s must be positive, got {interval_override_s}"
            )
        self.service = service
        self.stmm = stmm
        self.interval_override_s = interval_override_s
        self.max_intervals = max_intervals
        self.reports: List[IntervalReport] = []
        self.intervals_run = 0
        self.crash: Optional[BaseException] = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="stmm-tuner", daemon=True
        )
        self._started = False
        self._metrics = metrics
        if metrics is not None:
            self._m_intervals = metrics.counter("tuner.intervals")
            self._m_crashes = metrics.counter("tuner.crashes")
            self._m_lock_pages = metrics.gauge("tuner.locklist_pages")

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "TunerDaemon":
        if self._started:
            raise RuntimeError("tuner daemon already started")
        self._started = True
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 5.0) -> None:
        """Ask the daemon to exit and join it."""
        self._stop.set()
        if self._started:
            self._thread.join(timeout_s)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    @property
    def frozen(self) -> bool:
        """True once a crash has degraded the service to static sizing."""
        return self.crash is not None

    # -- the daemon loop ---------------------------------------------------

    def _interval_s(self) -> float:
        if self.interval_override_s is not None:
            return self.interval_override_s
        return self.stmm.current_interval_s

    def _run(self) -> None:
        try:
            while not self._stop.wait(self._interval_s()):
                self._tune_once()
                if (
                    self.max_intervals is not None
                    and self.intervals_run >= self.max_intervals
                ):
                    return
        except BaseException as exc:  # noqa: BLE001 - degrade, never corrupt
            self.crash = exc
            if self._metrics is not None:
                self._m_crashes.inc()
            self.service.freeze_tuning(
                f"tuner thread died: {type(exc).__name__}: {exc}"
            )

    def tune_now(self) -> IntervalReport:
        """Run one tuning pass synchronously (tests, manual demos).

        Same code path as the daemon loop, including crash handling --
        the exception is re-raised after the service is frozen so the
        caller sees the failure.
        """
        try:
            return self._tune_once()
        except BaseException as exc:  # noqa: BLE001
            self.crash = exc
            if self._metrics is not None:
                self._m_crashes.inc()
            self.service.freeze_tuning(
                f"tuner pass failed: {type(exc).__name__}: {exc}"
            )
            raise

    def _tune_once(self) -> IntervalReport:
        service = self.service
        with service._cond:  # noqa: SLF001 - daemon is part of the service
            report = self.stmm.tune(service.clock.now())
            self.reports.append(report)
            self.intervals_run += 1
            if self._metrics is not None:
                self._m_intervals.inc()
                self._m_lock_pages.set(service.chain.allocated_pages)
            return report
