"""Clock abstraction: one time source for virtual and wall-clock runs.

The DES drives everything off ``Environment.now`` (virtual seconds); the
live service drives the identical lock-manager code off the operating
system's monotonic clock.  A :class:`Clock` is the seam between the two:
components that need "the current time" (the wall-clock environment, the
tuner daemon, the admission controller's deadlines, the demand-trace
recorder) take a clock instead of calling :func:`time.monotonic`
directly, so every one of them can also be driven by a
:class:`ManualClock` in tests or a :class:`VirtualClock` inside a
simulation.

All clocks report seconds as floats and are monotonic non-decreasing;
:class:`MonotonicClock` additionally starts at 0.0 when constructed so
service timelines read like simulation timelines.
"""

from __future__ import annotations

import abc
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.des import Environment


class Clock(abc.ABC):
    """A monotonic time source, in seconds."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds (monotonic non-decreasing)."""


class MonotonicClock(Clock):
    """Wall-clock time from :func:`time.monotonic`, zeroed at creation.

    Zeroing makes captured traces and tuner decision timestamps start at
    ~0.0, matching the convention of simulation outputs (and of the
    ``(time, target_locks)`` replay format).
    """

    __slots__ = ("_origin",)

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin


class VirtualClock(Clock):
    """The simulation clock of a DES :class:`Environment`.

    Lets clock-taking components (e.g. the demand-trace recorder's
    manual sampling mode) run unchanged inside a simulation.
    """

    __slots__ = ("_env",)

    def __init__(self, env: "Environment") -> None:
        self._env = env

    def now(self) -> float:
        return self._env.now


class ManualClock(Clock):
    """A test clock that only moves when told to.

    ``advance`` is the only mutator and refuses to move backwards, so a
    test's timeline is explicit and monotonic by construction.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta_s: float) -> float:
        """Move the clock forward by ``delta_s`` seconds."""
        if delta_s < 0:
            raise ValueError(f"cannot move a clock backwards ({delta_s})")
        self._now += delta_s
        return self._now

    def set(self, now: float) -> float:
        """Jump the clock to an absolute time (never backwards)."""
        if now < self._now:
            raise ValueError(f"cannot move a clock backwards to {now}")
        self._now = float(now)
        return self._now
