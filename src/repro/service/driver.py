"""Closed-loop multi-threaded load driver for the live lock service.

Each worker thread is one closed-loop client: admit, open a session,
draw a transaction from a :class:`TransactionMix` (the same statistical
mixes the DES workloads use), take its row locks through the service,
commit (release everything), repeat.  Deadlocks, lock timeouts and
lock-list-full errors roll the transaction back, exactly like the DES
client processes; admission sheds back off exponentially.

The driver is the measurement half of the ``service_churn`` benchmark
and the muscle behind the stress tests: it produces real contention --
many threads colliding on the hot set while the tuner daemon resizes
lock memory underneath them.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.transactions import TransactionMix
from repro.errors import (
    AdmissionRejectedError,
    AdmissionTimeoutError,
    RequestCancelledError,
    ServiceClosedError,
    ServiceError,
)
from repro.lockmgr.manager import (
    DeadlockError,
    LockListFullError,
    LockTimeoutError,
)
from repro.service.stack import ServiceStack


@dataclass
class DriverReport:
    """What a load run did, aggregated over all worker threads."""

    threads: int = 0
    commits: int = 0
    rollbacks_deadlock: int = 0
    rollbacks_timeout: int = 0
    rollbacks_full: int = 0
    rollbacks_cancelled: int = 0
    lock_requests: int = 0
    admission_sheds: int = 0
    admission_timeouts: int = 0
    wall_s: float = 0.0
    worker_errors: List[str] = field(default_factory=list)

    @property
    def transactions(self) -> int:
        return (
            self.commits
            + self.rollbacks_deadlock
            + self.rollbacks_timeout
            + self.rollbacks_full
            + self.rollbacks_cancelled
        )

    @property
    def requests_per_s(self) -> float:
        return self.lock_requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def commits_per_s(self) -> float:
        return self.commits / self.wall_s if self.wall_s > 0 else 0.0

    def merge(self, other: "DriverReport") -> None:
        self.commits += other.commits
        self.rollbacks_deadlock += other.rollbacks_deadlock
        self.rollbacks_timeout += other.rollbacks_timeout
        self.rollbacks_full += other.rollbacks_full
        self.rollbacks_cancelled += other.rollbacks_cancelled
        self.lock_requests += other.lock_requests
        self.admission_sheds += other.admission_sheds
        self.admission_timeouts += other.admission_timeouts
        self.worker_errors.extend(other.worker_errors)

    def summary(self) -> Dict[str, float]:
        return {
            "threads": self.threads,
            "commits": self.commits,
            "transactions": self.transactions,
            "lock_requests": self.lock_requests,
            "rollbacks_deadlock": self.rollbacks_deadlock,
            "rollbacks_timeout": self.rollbacks_timeout,
            "rollbacks_full": self.rollbacks_full,
            "admission_sheds": self.admission_sheds,
            "wall_s": round(self.wall_s, 4),
            "requests_per_s": round(self.requests_per_s, 1),
            "commits_per_s": round(self.commits_per_s, 1),
        }


class LoadDriver:
    """Drive a :class:`ServiceStack` with closed-loop worker threads.

    Parameters
    ----------
    stack:
        A started service stack.
    mix:
        Transaction shape; defaults to a contention-heavy, think-free
        mix suitable for stress (real row counts, hot-set skew).
    threads / requests_per_thread / duration_s:
        ``threads`` workers each run until they have issued
        ``requests_per_thread`` lock requests (or ``duration_s``
        elapses, whichever first; either may be None for unbounded).
    seed:
        Base RNG seed; worker ``i`` uses ``seed + i`` so runs are
        reproducible per thread regardless of scheduling.
    request_timeout_s:
        Per-lock-request deadline passed to the service.
    """

    def __init__(
        self,
        stack: ServiceStack,
        *,
        mix: Optional[TransactionMix] = None,
        threads: int = 4,
        requests_per_thread: Optional[int] = 2_000,
        duration_s: Optional[float] = None,
        seed: int = 0,
        request_timeout_s: Optional[float] = 5.0,
        admission_timeout_s: float = 10.0,
    ) -> None:
        if threads <= 0:
            raise ServiceError(f"threads must be positive, got {threads}")
        if requests_per_thread is None and duration_s is None:
            raise ServiceError(
                "need requests_per_thread or duration_s (else workers never stop)"
            )
        self.stack = stack
        self.mix = mix or TransactionMix(
            locks_per_txn_mean=12.0,
            think_time_mean_s=0.0,
            work_time_per_lock_s=0.0,
            rows_per_table=50_000,
            hot_access_probability=0.25,
        )
        self.threads = threads
        self.requests_per_thread = requests_per_thread
        self.duration_s = duration_s
        self.seed = seed
        self.request_timeout_s = request_timeout_s
        self.admission_timeout_s = admission_timeout_s
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask workers to finish their current transaction and exit."""
        self._stop.set()

    def run(self) -> DriverReport:
        """Run the load to completion and return the merged report."""
        reports = [DriverReport() for _ in range(self.threads)]
        workers = [
            threading.Thread(
                target=self._worker,
                args=(i, reports[i]),
                name=f"load-{i}",
                daemon=True,
            )
            for i in range(self.threads)
        ]
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        deadline = (
            None if self.duration_s is None else started + self.duration_s
        )
        for worker in workers:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.perf_counter()) + 30.0
            )
            worker.join(remaining)
            if worker.is_alive():  # pragma: no cover - watchdog path
                self._stop.set()
                worker.join(30.0)
        total = DriverReport(
            threads=self.threads, wall_s=time.perf_counter() - started
        )
        for report in reports:
            total.merge(report)
        return total

    # -- the worker loop ---------------------------------------------------

    def _deadline_passed(self, started: float) -> bool:
        if self._stop.is_set():
            return True
        if self.duration_s is not None:
            return time.perf_counter() - started >= self.duration_s
        return False

    def _worker(self, index: int, report: DriverReport) -> None:
        rng = random.Random(self.seed + index)
        service = self.stack.service
        admission = self.stack.admission
        started = time.perf_counter()
        backoff = 0.001
        try:
            while not self._deadline_passed(started):
                if (
                    self.requests_per_thread is not None
                    and report.lock_requests >= self.requests_per_thread
                ):
                    return
                try:
                    admission.acquire(timeout_s=self.admission_timeout_s)
                except AdmissionRejectedError as exc:
                    report.admission_sheds += 1
                    # Exponential backoff from the controller's hint.
                    delay = max(exc.retry_after_s, backoff) * (
                        0.5 + rng.random()
                    )
                    backoff = min(backoff * 2, 0.05)
                    time.sleep(delay)
                    continue
                except AdmissionTimeoutError:
                    report.admission_timeouts += 1
                    continue
                except ServiceClosedError:
                    return
                backoff = 0.001
                try:
                    self._one_transaction(rng, service, report)
                except ServiceClosedError:
                    return
                finally:
                    admission.release()
        except Exception as exc:  # noqa: BLE001 - surfaced in the report
            report.worker_errors.append(
                f"worker {index}: {type(exc).__name__}: {exc}"
            )

    def _one_transaction(self, rng, service, report: DriverReport) -> None:
        accesses = self.mix.draw_transaction(rng)
        with service.session() as app_id:
            try:
                for access in accesses:
                    report.lock_requests += 1
                    service.lock_row(
                        app_id,
                        access.table_id,
                        access.row_id,
                        access.mode,
                        timeout_s=self.request_timeout_s,
                    )
                report.commits += 1
            except DeadlockError:
                report.rollbacks_deadlock += 1
            except LockTimeoutError:
                report.rollbacks_timeout += 1
            except LockListFullError:
                report.rollbacks_full += 1
            except RequestCancelledError:
                report.rollbacks_cancelled += 1
            # session() releases all locks: commit and rollback alike.
        think = self.mix.draw_think_time(rng)
        if think > 0:
            time.sleep(think)
