"""The shard memory ledger: one LOCKLIST budget over many lock tables.

The sharded service (:mod:`repro.service.sharded`) partitions the lock
space across N independent lock managers, each with its own
:class:`~repro.lockmgr.blocks.LockBlockChain`.  The paper's tuning
algorithm, however, arbitrates exactly *one* LOCKLIST against the rest
of database memory.  This module is the bridge:

* :class:`ShardMemoryLedger` is the reporting side of the protocol:
  every shard's demand (outstanding structures), free-list occupancy
  and cumulative synchronous borrows are readable in one place, and the
  global views the controller and the cross-shard deadlock detector
  need (aggregate escalation count, per-application slot totals) are
  computed here.
* :class:`AggregateLockChain` is the acting side: it duck-types the
  :class:`LockBlockChain` surface that
  :class:`~repro.core.controller.LockMemoryController` and
  :class:`~repro.core.maxlocks.AdaptiveMaxlocks` consume, summing the
  shard chains for every read.  A **grow** is distributed as per-shard
  128 KB block grants proportional to ledger demand (largest-remainder
  rounding, ties to the lowest shard index); a **shrink** scans the
  shards' entirely-free blocks, preferring the shard with the most
  free blocks (ties to the highest shard index -- the "tail" of the
  round-robin initial layout, mirroring the unsharded tail-first
  shrink protocol).

With one shard both classes degenerate to pass-throughs, which is what
makes the ``shards=1`` equivalence against the unsharded stack exact.

Locking: neither class takes locks.  Callers that mutate (the STMM
tuner, shutdown reclaim) hold **every** shard condition; callers that
only read for distribution decisions run under the controller's growth
lock plus one shard condition, where the transient understatement of a
concurrent shard's demand only skews a proportional split, never the
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence

from repro.errors import ServiceError
from repro.lockmgr.blocks import LockBlockChain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.service import LockService


@dataclass
class ShardOccupancy:
    """One shard's lock-memory picture at a point in time."""

    shard: int
    used_slots: int
    capacity_slots: int
    free_fraction: float
    entirely_free_blocks: int
    #: Cumulative 128 KB blocks this shard borrowed synchronously from
    #: overflow (the shard's share of the paper's LMO traffic).
    borrowed_blocks: int


class ShardMemoryLedger:
    """Global read-side of the shard memory protocol (see module doc)."""

    def __init__(self, shards: Sequence["LockService"]) -> None:
        if not shards:
            raise ServiceError("ledger needs at least one shard")
        self._shards = list(shards)
        self._borrowed_blocks = [0] * len(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    # -- reporting (shards -> ledger) --------------------------------------

    def record_sync_borrow(self, shard: int, blocks: int) -> None:
        """Account a synchronous-growth grant routed to ``shard``."""
        if blocks < 0:
            raise ValueError(f"blocks must be non-negative, got {blocks}")
        self._borrowed_blocks[shard] += blocks

    def borrowed_blocks(self, shard: int) -> int:
        return self._borrowed_blocks[shard]

    # -- global views (ledger -> controller / detector) --------------------

    def occupancy(self) -> List[ShardOccupancy]:
        """Per-shard demand and free-list occupancy, in shard order."""
        return [
            ShardOccupancy(
                shard=idx,
                used_slots=shard.chain.used_slots,
                capacity_slots=shard.chain.capacity_slots,
                free_fraction=shard.chain.free_fraction(),
                entirely_free_blocks=shard.chain.entirely_free_blocks(),
                borrowed_blocks=self._borrowed_blocks[idx],
            )
            for idx, shard in enumerate(self._shards)
        ]

    def demand_weights(self) -> List[int]:
        """Per-shard grow weights: outstanding structures, plus one.

        The +1 keeps an idle shard fundable (it still needs a minimal
        allocation to serve its first request without a synchronous
        borrow) and makes the weights total strictly positive.
        """
        return [shard.chain.used_slots + 1 for shard in self._shards]

    def grant_split(self, blocks: int) -> List[int]:
        """Split a grant of ``blocks`` across shards proportional to demand.

        Largest-remainder rounding; ties go to the lowest shard index,
        so the split is a pure function of the demand snapshot.
        """
        if blocks < 0:
            raise ValueError(f"blocks must be non-negative, got {blocks}")
        weights = self.demand_weights()
        total = sum(weights)
        shares = [blocks * weight / total for weight in weights]
        split = [int(share) for share in shares]
        remainder = blocks - sum(split)
        if remainder:
            by_fraction = sorted(
                range(len(split)),
                key=lambda i: (-(shares[i] - split[i]), i),
            )
            for i in by_fraction[:remainder]:
                split[i] += 1
        return split

    def app_slots(self, app_id: int) -> int:
        """Lock structures charged to ``app_id`` across every shard.

        The cross-shard deadlock detector's victim rule reads this, so
        a victim is judged by its *global* footprint, exactly as the
        single-manager detector judges it by its only footprint.
        """
        return sum(shard.manager.app_slots(app_id) for shard in self._shards)

    def total_escalations(self) -> int:
        """Cumulative escalations across shards (feeds the controller's
        escalation-recovery doubling rule)."""
        return sum(
            shard.manager.stats.escalations.count for shard in self._shards
        )

    def total_borrowed_blocks(self) -> int:
        """Cumulative synchronous borrows across every shard."""
        return sum(self._borrowed_blocks)


class AggregateLockChain:
    """The one global LOCKLIST the controller tunes: sum of shard chains.

    Duck-types the :class:`LockBlockChain` surface the tuning layer
    consumes (reads, ``add_blocks``, ``release_blocks``,
    ``check_invariants``); see the module docstring for the grow/shrink
    distribution rules.
    """

    def __init__(
        self, chains: Sequence[LockBlockChain], ledger: ShardMemoryLedger
    ) -> None:
        if not chains:
            raise ServiceError("aggregate chain needs at least one shard chain")
        if len(chains) != len(ledger):
            raise ServiceError(
                f"{len(chains)} chains but ledger tracks {len(ledger)} shards"
            )
        self._chains = list(chains)
        self._ledger = ledger

    # -- read surface (sums over shards) -----------------------------------

    @property
    def block_count(self) -> int:
        return sum(chain.block_count for chain in self._chains)

    @property
    def capacity_slots(self) -> int:
        return sum(chain.capacity_slots for chain in self._chains)

    @property
    def used_slots(self) -> int:
        return sum(chain.used_slots for chain in self._chains)

    @property
    def free_slots(self) -> int:
        return self.capacity_slots - self.used_slots

    @property
    def allocated_pages(self) -> int:
        return sum(chain.allocated_pages for chain in self._chains)

    def free_fraction(self) -> float:
        capacity = self.capacity_slots
        if capacity == 0:
            return 1.0
        return self.free_slots / capacity

    def entirely_free_blocks(self) -> int:
        return sum(chain.entirely_free_blocks() for chain in self._chains)

    # -- grow / shrink (the controller's physical hooks) -------------------

    def add_blocks(self, count: int) -> int:
        """Distribute ``count`` new blocks across shards by demand."""
        if count < 0:
            raise ValueError(f"block count must be non-negative, got {count}")
        if count == 0:
            return 0
        for chain, share in zip(self._chains, self._ledger.grant_split(count)):
            if share:
                chain.add_blocks(share)
        return count

    def release_blocks(self, count: int, partial: bool = False) -> int:
        """Free up to ``count`` entirely-empty blocks across shards.

        Keeps the unsharded semantics: with ``partial=False`` the
        request is all-or-nothing -- if the shards cannot jointly
        surrender ``count`` empty blocks, nothing is freed and 0 is
        returned.
        """
        if count < 0:
            raise ValueError(f"block count must be non-negative, got {count}")
        if count == 0:
            return 0
        free_per_shard = [chain.entirely_free_blocks() for chain in self._chains]
        if sum(free_per_shard) < count and not partial:
            return 0
        order = sorted(
            range(len(self._chains)),
            key=lambda i: (-free_per_shard[i], -i),
        )
        freed = 0
        for i in order:
            if freed >= count:
                break
            take = min(count - freed, free_per_shard[i])
            if take:
                freed += self._chains[i].release_blocks(take, partial=True)
        return freed

    def check_invariants(self) -> None:
        for chain in self._chains:
            chain.check_invariants()

    def __repr__(self) -> str:
        return (
            f"AggregateLockChain(shards={len(self._chains)}, "
            f"blocks={self.block_count}, "
            f"used={self.used_slots}/{self.capacity_slots})"
        )
