"""Demand-trace capture: record live lock demand for later replay.

The replay harness (:class:`repro.workloads.replay.LockDemandReplay`)
consumes ``(time_s, target_locks)`` traces with strictly increasing
times.  :class:`DemandTraceRecorder` produces exactly that format from a
*live* service -- sampling the block chain's used structure count on a
period -- closing the loop the paper implies: record a production lock
demand trajectory, then re-run the tuning algorithm against it in
simulation to study controller settings offline.

Traces round-trip through JSONL (one ``{"time": t, "target_locks": n}``
object per line) so captures can be saved, inspected and versioned.
"""

from __future__ import annotations

import json
import threading
from typing import IO, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, ServiceError
from repro.lockmgr.blocks import LockBlockChain
from repro.service.clock import Clock, MonotonicClock

Trace = List[Tuple[float, int]]


class DemandTraceRecorder:
    """Samples ``(clock.now(), chain.used_slots)`` into a replayable trace.

    Two modes:

    * **background** -- ``start()`` launches a sampling thread on
      ``period_s`` (wall-clock captures of a live service);
    * **manual** -- call :meth:`sample_now` wherever convenient (tests,
      or inside a simulation with a :class:`VirtualClock`).

    Samples with non-increasing timestamps are dropped rather than
    recorded, so :meth:`to_trace` always satisfies the replay format's
    strictly-increasing requirement by construction.
    """

    def __init__(
        self,
        chain: LockBlockChain,
        *,
        clock: Optional[Clock] = None,
        period_s: float = 0.05,
        max_samples: int = 1_000_000,
    ) -> None:
        if period_s <= 0:
            raise ServiceError(f"period_s must be positive, got {period_s}")
        if max_samples <= 0:
            raise ServiceError(f"max_samples must be positive, got {max_samples}")
        self.chain = chain
        self.clock = clock or MonotonicClock()
        self.period_s = period_s
        self.max_samples = max_samples
        self._samples: Trace = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Samples dropped because their timestamp did not advance.
        self.dropped = 0

    # -- sampling ----------------------------------------------------------

    def sample_now(self) -> bool:
        """Record one sample; returns False if it was dropped."""
        now = self.clock.now()
        used = self.chain.used_slots
        with self._lock:
            if self._samples and now <= self._samples[-1][0]:
                self.dropped += 1
                return False
            if len(self._samples) >= self.max_samples:
                self.dropped += 1
                return False
            self._samples.append((now, used))
            return True

    def start(self) -> "DemandTraceRecorder":
        """Launch the background sampling thread."""
        if self._thread is not None:
            raise ServiceError("recorder already started")
        self._thread = threading.Thread(
            target=self._run, name="demand-trace", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop background sampling (records one final sample)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        self.sample_now()

    def __enter__(self) -> "DemandTraceRecorder":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.period_s):
            self.sample_now()

    # -- export ------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def to_trace(self) -> Trace:
        """The captured ``(time_s, target_locks)`` trace (a copy)."""
        with self._lock:
            return list(self._samples)

    def write_jsonl(self, fp: IO[str]) -> int:
        """Write the trace as JSON lines; returns the sample count."""
        trace = self.to_trace()
        for time_s, target in trace:
            fp.write(
                json.dumps({"time": round(time_s, 6), "target_locks": target})
                + "\n"
            )
        return len(trace)

    def save(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as fp:
            return self.write_jsonl(fp)


def load_trace_jsonl(source: Union[str, IO[str]]) -> Trace:
    """Load a ``(time_s, target_locks)`` trace saved by the recorder.

    Accepts a path or an open text stream.  Validates the replay
    contract (strictly increasing times, non-negative targets) so a
    corrupt capture fails here, not deep inside a simulation.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fp:
            return load_trace_jsonl(fp)
    trace: Trace = []
    previous = float("-inf")
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            time_s = float(record["time"])
            target = int(record["target_locks"])
        except (ValueError, KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"bad trace record on line {lineno}: {line!r}"
            ) from exc
        if time_s <= previous:
            raise ConfigurationError(
                f"trace times must be strictly increasing "
                f"(line {lineno}: {time_s} after {previous})"
            )
        if target < 0:
            raise ConfigurationError(
                f"negative lock target on line {lineno}: {target}"
            )
        trace.append((time_s, target))
        previous = time_s
    if not trace:
        raise ConfigurationError("trace is empty")
    return trace


def downsample(trace: Sequence[Tuple[float, int]], max_points: int) -> Trace:
    """Thin a dense capture to at most ``max_points`` for fast replay.

    Keeps the first and last points and an even stride in between;
    preserves strict time monotonicity trivially (it only drops points).
    """
    if max_points < 2:
        raise ConfigurationError(f"max_points must be >= 2, got {max_points}")
    trace = list(trace)
    if len(trace) <= max_points:
        return trace
    stride = (len(trace) - 1) / (max_points - 1)
    picked = [trace[round(i * stride)] for i in range(max_points - 1)]
    picked.append(trace[-1])
    return picked
