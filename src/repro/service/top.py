"""``repro-service top``: a refreshing console view of the live service.

The ops plane (:mod:`repro.service.ops`) serves numbers; ``top`` makes
them glanceable.  It polls ``/metrics`` and ``/stmm`` on an interval
and redraws one console frame per poll:

* per-shard request throughput (rate between frames), p50/p99 request
  latency (interpolated from the cumulative histogram buckets),
  escalations and occupancy;
* the LOCKLIST posture: pages, free fraction against the tuner's
  [minFree, maxFree] band, MAXLOCKS;
* the tail of the STMM audit log -- the last few intervals' chosen
  actions in the machine-readable reason vocabulary.

Everything here is a *client* of the HTTP endpoints -- ``top`` holds no
reference to the stack and can watch a service in another process.  The
module also exposes the pieces the dashboard is built from
(:func:`parse_prometheus`, :func:`percentile_from_buckets`,
:func:`render_frame`) because they are useful on their own (CI smoke
checks, tests).
"""

from __future__ import annotations

import json
import re
import sys
import time
import urllib.request
from typing import Dict, List, Optional, Tuple

#: label-pairs key, as in repro.obs.registry (sorted (key, value) tuples).
LabelPairs = Tuple[Tuple[str, str], ...]
#: series name -> {label pairs -> value}
MetricsDump = Dict[str, Dict[LabelPairs, float]]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def parse_prometheus(text: str) -> MetricsDump:
    """Parse text exposition format back into ``{name: {labels: value}}``."""
    out: MetricsDump = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        raw = match.group("value")
        if raw == "+Inf":
            value = float("inf")
        elif raw == "-Inf":
            value = float("-inf")
        else:
            try:
                value = float(raw)
            except ValueError:
                continue
        labels: LabelPairs = tuple(
            sorted(
                (k, _unescape(v))
                for k, v in _LABEL_RE.findall(match.group("labels") or "")
            )
        )
        out.setdefault(match.group("name"), {})[labels] = value
    return out


def percentile_from_buckets(
    bounds_counts: List[Tuple[float, float]], q: float
) -> Optional[float]:
    """Interpolated quantile from cumulative ``(le, count)`` buckets.

    ``bounds_counts`` is the ``_bucket`` series of one histogram,
    any order; returns None for an empty histogram.  Within a bucket
    the mass is assumed uniform (the standard Prometheus estimate).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    buckets = sorted(bounds_counts)
    if not buckets or buckets[-1][1] <= 0:
        return None
    total = buckets[-1][1]
    rank = q * total
    prev_bound, prev_count = 0.0, 0.0
    for bound, count in buckets:
        if count >= rank:
            if bound == float("inf"):
                return prev_bound  # open-ended top bucket: best lower bound
            span = count - prev_count
            if span <= 0:
                return bound
            frac = (rank - prev_count) / span
            return prev_bound + frac * (bound - prev_bound)
        prev_bound, prev_count = bound, count
    return buckets[-1][0]


def _histogram_buckets(
    dump: MetricsDump, name: str, shard: Optional[str]
) -> List[Tuple[float, float]]:
    """The ``(le, cumulative count)`` pairs of one (possibly labeled)
    histogram."""
    series = dump.get(f"{name}_bucket", {})
    out: List[Tuple[float, float]] = []
    for labels, value in series.items():
        as_dict = dict(labels)
        if shard is not None and as_dict.get("shard") != shard:
            continue
        if shard is None and "shard" in as_dict:
            continue
        le = as_dict.get("le")
        if le is None:
            continue
        out.append((float("inf") if le == "+Inf" else float(le), value))
    return out


def _value(
    dump: MetricsDump, name: str, shard: Optional[str] = None
) -> Optional[float]:
    for labels, value in dump.get(name, {}).items():
        as_dict = dict(labels)
        if shard is None and "shard" not in as_dict:
            return value
        if shard is not None and as_dict.get("shard") == shard:
            return value
    return None


def _shard_ids(dump: MetricsDump) -> List[str]:
    shards = set()
    for series in dump.values():
        for labels in series:
            for key, value in labels:
                if key == "shard":
                    shards.add(value)
    return sorted(shards, key=lambda s: (len(s), s))


def fetch(url: str, timeout_s: float = 5.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return response.read().decode()


def fetch_state(base_url: str, timeout_s: float = 5.0) -> Tuple[MetricsDump, dict]:
    """One poll: parsed ``/metrics`` plus decoded ``/stmm``."""
    metrics = parse_prometheus(fetch(f"{base_url}/metrics", timeout_s))
    stmm = json.loads(fetch(f"{base_url}/stmm", timeout_s))
    return metrics, stmm


def _fmt_latency(seconds: Optional[float]) -> str:
    if seconds is None:
        return "    -"
    if seconds < 1e-3:
        return f"{seconds * 1e6:4.0f}u"
    if seconds < 1.0:
        return f"{seconds * 1e3:4.1f}m"
    return f"{seconds:4.2f}s"


def render_frame(
    metrics: MetricsDump,
    stmm: dict,
    *,
    prev_metrics: Optional[MetricsDump] = None,
    elapsed_s: float = 0.0,
    audit_tail: int = 5,
) -> str:
    """One dashboard frame as a string (no terminal control codes)."""
    lines: List[str] = []
    pages = stmm.get("locklist_pages", 0)
    free = stmm.get("locklist_free_fraction", 0.0)
    maxlocks = stmm.get("maxlocks_fraction", 0.0)
    frozen = stmm.get("frozen_reason")
    lines.append(
        f"LOCKLIST {pages} pages | free {free:.1%} | "
        f"MAXLOCKS {maxlocks:.1%} | overflow {stmm.get('overflow_pages', 0)}p"
        + (f" | FROZEN: {frozen}" if frozen else "")
    )
    lines.append(
        f"tuning intervals: {stmm.get('intervals', 0)} | "
        f"audit records: {stmm.get('audit_total', 0)}"
    )

    shards = _shard_ids(metrics)
    targets: List[Optional[str]] = list(shards) if shards else [None]
    lines.append("")
    lines.append(
        f"{'shard':>5} {'req/s':>9} {'requests':>10} {'p50':>6} {'p99':>6} "
        f"{'escal':>6} {'used':>8} {'free%':>6}"
    )
    for shard in targets:
        requests = _value(metrics, "service_requests_total", shard) or 0.0
        rate = ""
        if prev_metrics is not None and elapsed_s > 0:
            before = _value(prev_metrics, "service_requests_total", shard) or 0.0
            rate = f"{(requests - before) / elapsed_s:9.0f}"
        else:
            rate = f"{'-':>9}"
        buckets = _histogram_buckets(
            metrics, "service_request_latency_s", shard
        )
        p50 = percentile_from_buckets(buckets, 0.50) if buckets else None
        p99 = percentile_from_buckets(buckets, 0.99) if buckets else None
        escal = _value(metrics, "shard_escalations", shard)
        if escal is None:
            escal = _value(metrics, "service_escalations", None) or 0.0
        used = _value(metrics, "shard_used_slots", shard)
        if used is None:
            used = _value(metrics, "service_locklist_used_slots", None) or 0.0
        shard_free = _value(metrics, "shard_free_fraction", shard)
        if shard_free is None:
            shard_free = (
                _value(metrics, "service_locklist_free_fraction", None) or 0.0
            )
        lines.append(
            f"{shard if shard is not None else 'all':>5} {rate} "
            f"{requests:10.0f} {_fmt_latency(p50):>6} {_fmt_latency(p99):>6} "
            f"{escal:6.0f} {used:8.0f} {shard_free:6.1%}"
        )

    audit = stmm.get("audit", [])
    if audit:
        lines.append("")
        lines.append(f"last {min(audit_tail, len(audit))} tuning decisions:")
        for record in audit[-audit_tail:]:
            lines.append(
                f"  #{record.get('interval', '?'):>3} "
                f"{record.get('reason', '?'):28} "
                f"{record.get('current_pages', 0):5d} -> "
                f"{record.get('target_pages', 0):5d} pages "
                f"(free {record.get('free_fraction', 0.0):.0%}, "
                f"esc {record.get('escalations_in_interval', 0)})"
            )
    return "\n".join(lines)


def run_top(
    base_url: str,
    *,
    interval_s: float = 1.0,
    frames: Optional[int] = None,
    clear: bool = True,
    out=None,
) -> int:
    """Poll and redraw until interrupted (or for ``frames`` frames)."""
    out = out or sys.stdout
    prev: Optional[MetricsDump] = None
    prev_at: float = 0.0
    drawn = 0
    try:
        while frames is None or drawn < frames:
            try:
                metrics, stmm = fetch_state(base_url)
            except OSError as exc:
                print(f"top: {base_url} unreachable: {exc}", file=sys.stderr)
                return 1
            now = time.monotonic()
            frame = render_frame(
                metrics,
                stmm,
                prev_metrics=prev,
                elapsed_s=(now - prev_at) if prev is not None else 0.0,
            )
            if clear and drawn:
                out.write("\x1b[2J\x1b[H")
            out.write(f"repro-service top -- {base_url} -- {time.strftime('%H:%M:%S')}\n")
            out.write(frame)
            out.write("\n")
            out.flush()
            prev, prev_at = metrics, now
            drawn += 1
            if frames is not None and drawn >= frames:
                break
            time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0


__all__ = [
    "parse_prometheus",
    "percentile_from_buckets",
    "render_frame",
    "fetch_state",
    "run_top",
]
