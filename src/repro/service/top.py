"""``repro-service top``: a refreshing console view of the live service.

The ops plane (:mod:`repro.service.ops`) serves numbers; ``top`` makes
them glanceable.  It polls ``/metrics`` and ``/stmm`` on an interval
and redraws one console frame per poll:

* per-shard request throughput (rate between frames), p50/p99 request
  latency (interpolated from the cumulative histogram buckets),
  accumulated wait time from the wait-event profiler, escalations and
  occupancy;
* the LOCKLIST posture: pages, free fraction against the tuner's
  [minFree, maxFree] band, MAXLOCKS, and the incident count;
* the tail of the STMM audit log -- the last few intervals' chosen
  actions in the machine-readable reason vocabulary;
* when the routed client publishes per-worker wire-latency histograms,
  a per-worker latency panel; and when request tracing is sampled, the
  slowest end-to-end traces from ``/traces`` with their dominant hop
  and wire-tax fraction;
* when the whole-memory broker is enabled, the per-heap table (size,
  demand, marginal benefit per page) and the pressure posture.

Series that a given run does not publish (span sampling off: no latency
histogram; profiler off: no wait series) render as ``-`` rather than a
misleading ``0``.  ``--json`` swaps the dashboard for one JSON object
per frame built from the same :func:`shard_summary` rows.

Everything here is a *client* of the HTTP endpoints -- ``top`` holds no
reference to the stack and can watch a service in another process.  The
module also exposes the pieces the dashboard is built from
(:func:`parse_prometheus`, :func:`percentile_from_buckets`,
:func:`shard_summary`, :func:`render_frame`) because they are useful on
their own (CI smoke checks, tests).
"""

from __future__ import annotations

import json
import re
import sys
import time
import urllib.request
from typing import Dict, List, Optional, Tuple

#: label-pairs key, as in repro.obs.registry (sorted (key, value) tuples).
LabelPairs = Tuple[Tuple[str, str], ...]
#: series name -> {label pairs -> value}
MetricsDump = Dict[str, Dict[LabelPairs, float]]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def parse_prometheus(text: str) -> MetricsDump:
    """Parse text exposition format back into ``{name: {labels: value}}``."""
    out: MetricsDump = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        raw = match.group("value")
        if raw == "+Inf":
            value = float("inf")
        elif raw == "-Inf":
            value = float("-inf")
        else:
            try:
                value = float(raw)
            except ValueError:
                continue
        labels: LabelPairs = tuple(
            sorted(
                (k, _unescape(v))
                for k, v in _LABEL_RE.findall(match.group("labels") or "")
            )
        )
        out.setdefault(match.group("name"), {})[labels] = value
    return out


def percentile_from_buckets(
    bounds_counts: List[Tuple[float, float]], q: float
) -> Optional[float]:
    """Interpolated quantile from cumulative ``(le, count)`` buckets.

    ``bounds_counts`` is the ``_bucket`` series of one histogram,
    any order; returns None for an empty histogram.  Within a bucket
    the mass is assumed uniform (the standard Prometheus estimate).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    buckets = sorted(bounds_counts)
    if not buckets or buckets[-1][1] <= 0:
        return None
    total = buckets[-1][1]
    rank = q * total
    prev_bound, prev_count = 0.0, 0.0
    for bound, count in buckets:
        if count >= rank:
            if bound == float("inf"):
                return prev_bound  # open-ended top bucket: best lower bound
            span = count - prev_count
            if span <= 0:
                return bound
            frac = (rank - prev_count) / span
            return prev_bound + frac * (bound - prev_bound)
        prev_bound, prev_count = bound, count
    return buckets[-1][0]


def _histogram_buckets(
    dump: MetricsDump, name: str, shard: Optional[str]
) -> List[Tuple[float, float]]:
    """The ``(le, cumulative count)`` pairs of one (possibly labeled)
    histogram."""
    series = dump.get(f"{name}_bucket", {})
    out: List[Tuple[float, float]] = []
    for labels, value in series.items():
        as_dict = dict(labels)
        if shard is not None and as_dict.get("shard") != shard:
            continue
        if shard is None and "shard" in as_dict:
            continue
        le = as_dict.get("le")
        if le is None:
            continue
        out.append((float("inf") if le == "+Inf" else float(le), value))
    return out


def _value(
    dump: MetricsDump, name: str, shard: Optional[str] = None
) -> Optional[float]:
    for labels, value in dump.get(name, {}).items():
        as_dict = dict(labels)
        if shard is None and "shard" not in as_dict:
            return value
        if shard is not None and as_dict.get("shard") == shard:
            return value
    return None


def _shard_ids(dump: MetricsDump) -> List[str]:
    shards = set()
    for series in dump.values():
        for labels in series:
            for key, value in labels:
                if key == "shard":
                    shards.add(value)
    return sorted(shards, key=lambda s: (len(s), s))


def fetch(url: str, timeout_s: float = 5.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return response.read().decode()


def fetch_state(base_url: str, timeout_s: float = 5.0) -> Tuple[MetricsDump, dict]:
    """One poll: parsed ``/metrics`` plus decoded ``/stmm``."""
    metrics = parse_prometheus(fetch(f"{base_url}/metrics", timeout_s))
    stmm = json.loads(fetch(f"{base_url}/stmm", timeout_s))
    return metrics, stmm


def fetch_traces(base_url: str, timeout_s: float = 5.0) -> Optional[dict]:
    """The decoded ``/traces`` body (None against a pre-tracing server)."""
    try:
        return json.loads(fetch(f"{base_url}/traces", timeout_s))
    except (OSError, ValueError):
        return None


def _fmt_latency(seconds: Optional[float]) -> str:
    if seconds is None:
        return "    -"
    if seconds < 1e-3:
        return f"{seconds * 1e6:4.0f}u"
    if seconds < 1.0:
        return f"{seconds * 1e3:4.1f}m"
    return f"{seconds:4.2f}s"


def _fmt_count(value: Optional[float], width: int) -> str:
    if value is None:
        return f"{'-':>{width}}"
    return f"{value:{width}.0f}"


def _wait_seconds(dump: MetricsDump, shard: Optional[str]) -> Optional[float]:
    """Total profiler wait seconds for one shard (None: profiler off)."""
    series = dump.get("service_wait_seconds_sum")
    if not series:
        return None
    total: Optional[float] = None
    for labels, value in series.items():
        as_dict = dict(labels)
        if shard is None and "shard" in as_dict:
            continue
        if shard is not None and as_dict.get("shard") != shard:
            continue
        total = (total or 0.0) + value
    return total


def worker_wire_latency(metrics: MetricsDump) -> Dict[str, dict]:
    """Per-worker wire-latency rows from the routed client's histograms.

    Empty when the run had no routed client with telemetry (the series
    simply is not published), so callers can skip the panel.
    """
    series = metrics.get("net_client_request_latency_s_bucket", {})
    by_worker: Dict[str, List[Tuple[float, float]]] = {}
    for labels, value in series.items():
        as_dict = dict(labels)
        worker = as_dict.get("worker")
        le = as_dict.get("le")
        if worker is None or le is None:
            continue
        by_worker.setdefault(worker, []).append(
            (float("inf") if le == "+Inf" else float(le), value)
        )
    out: Dict[str, dict] = {}
    for worker in sorted(by_worker, key=lambda w: (len(w), w)):
        buckets = by_worker[worker]
        count = max(v for _, v in buckets)
        if count <= 0:
            continue
        out[worker] = {
            "count": count,
            "p50_s": percentile_from_buckets(buckets, 0.50),
            "p99_s": percentile_from_buckets(buckets, 0.99),
        }
    return out


def shard_summary(
    metrics: MetricsDump,
    shard: Optional[str],
    *,
    prev_metrics: Optional[MetricsDump] = None,
    elapsed_s: float = 0.0,
) -> dict:
    """One shard's dashboard row as raw values (None = not published).

    ``shard=None`` reads the unlabeled series of the unsharded stack.
    Series a run does not publish -- the latency histogram with span
    sampling off, the wait series with the profiler off -- come back as
    None, never a fake zero.
    """
    requests = _value(metrics, "service_requests_total", shard)
    rate: Optional[float] = None
    if prev_metrics is not None and elapsed_s > 0 and requests is not None:
        before = _value(prev_metrics, "service_requests_total", shard) or 0.0
        rate = (requests - before) / elapsed_s
    buckets = _histogram_buckets(metrics, "service_request_latency_s", shard)
    escal = _value(metrics, "shard_escalations", shard)
    if escal is None:
        escal = _value(metrics, "service_escalations", None)
    used = _value(metrics, "shard_used_slots", shard)
    if used is None:
        used = _value(metrics, "service_locklist_used_slots", None)
    shard_free = _value(metrics, "shard_free_fraction", shard)
    if shard_free is None:
        shard_free = _value(metrics, "service_locklist_free_fraction", None)
    return {
        "shard": shard,
        "requests": requests,
        "rate": rate,
        "p50_s": percentile_from_buckets(buckets, 0.50) if buckets else None,
        "p99_s": percentile_from_buckets(buckets, 0.99) if buckets else None,
        "wait_s": _wait_seconds(metrics, shard),
        "escalations": escal,
        "used_slots": used,
        "free_fraction": shard_free,
    }


def render_frame(
    metrics: MetricsDump,
    stmm: dict,
    *,
    prev_metrics: Optional[MetricsDump] = None,
    elapsed_s: float = 0.0,
    audit_tail: int = 5,
    traces: Optional[dict] = None,
) -> str:
    """One dashboard frame as a string (no terminal control codes)."""
    lines: List[str] = []
    pages = stmm.get("locklist_pages", 0)
    free = stmm.get("locklist_free_fraction", 0.0)
    maxlocks = stmm.get("maxlocks_fraction", 0.0)
    frozen = stmm.get("frozen_reason")
    lines.append(
        f"LOCKLIST {pages} pages | free {free:.1%} | "
        f"MAXLOCKS {maxlocks:.1%} | overflow {stmm.get('overflow_pages', 0)}p"
        + (f" | FROZEN: {frozen}" if frozen else "")
    )
    incidents = stmm.get("incident_total")
    lines.append(
        f"tuning intervals: {stmm.get('intervals', 0)} | "
        f"audit records: {stmm.get('audit_total', 0)} | "
        f"incidents: {incidents if incidents is not None else '-'}"
    )

    shards = _shard_ids(metrics)
    targets: List[Optional[str]] = list(shards) if shards else [None]
    lines.append("")
    lines.append(
        f"{'shard':>5} {'req/s':>9} {'requests':>10} {'p50':>6} {'p99':>6} "
        f"{'wait s':>8} {'escal':>6} {'used':>8} {'free%':>6}"
    )
    for shard in targets:
        row = shard_summary(
            metrics, shard, prev_metrics=prev_metrics, elapsed_s=elapsed_s
        )
        wait_s = row["wait_s"]
        wait_str = f"{wait_s:8.3f}" if wait_s is not None else f"{'-':>8}"
        free = row["free_fraction"]
        free_str = f"{free:6.1%}" if free is not None else f"{'-':>6}"
        lines.append(
            f"{shard if shard is not None else 'all':>5} "
            f"{_fmt_count(row['rate'], 9)} "
            f"{_fmt_count(row['requests'], 10)} "
            f"{_fmt_latency(row['p50_s']):>6} {_fmt_latency(row['p99_s']):>6} "
            f"{wait_str} "
            f"{_fmt_count(row['escalations'], 6)} "
            f"{_fmt_count(row['used_slots'], 8)} "
            f"{free_str}"
        )

    wire = worker_wire_latency(metrics)
    if wire:
        lines.append("")
        lines.append("wire latency (routed client, per worker):")
        lines.append(f"{'worker':>6} {'requests':>9} {'p50':>6} {'p99':>6}")
        for worker, row in wire.items():
            lines.append(
                f"{worker:>6} {_fmt_count(row['count'], 9)} "
                f"{_fmt_latency(row['p50_s']):>6} "
                f"{_fmt_latency(row['p99_s']):>6}"
            )

    if traces and traces.get("enabled") and traces.get("traces"):
        tax = (traces.get("summary") or {}).get("wire_tax", {})
        lines.append("")
        lines.append(
            f"request traces: {traces.get('total', 0)} sampled "
            f"(1/{traces.get('sample_every', 0)}) | "
            f"truncated {traces.get('truncated', 0)} | "
            f"wire tax {tax.get('fraction', 0.0):.0%}"
        )
        slowest = sorted(
            traces["traces"], key=lambda tr: -tr.get("total_s", 0.0)
        )[:5]
        lines.append(
            f"{'trace':>17} {'worker':>6} {'total':>6} {'net%':>5}  "
            f"slowest hop"
        )
        for tr in slowest:
            hops = tr.get("hops") or {}
            top_hop = max(hops, key=hops.get) if hops else "-"
            lines.append(
                f"{tr.get('trace_id', 0):>17x} "
                f"{tr.get('worker', '-')!s:>6} "
                f"{_fmt_latency(tr.get('total_s')):>6} "
                f"{tr.get('wire_tax', 0.0):>5.0%}  "
                f"{top_hop} ({_fmt_latency(hops.get(top_hop))})"
            )

    broker = stmm.get("broker")
    if broker:
        lines.append("")
        lines.append(
            f"broker: posture {broker.get('posture', '?')} | pressure "
            f"{broker.get('pressure', 0.0):.2f} | "
            f"{broker.get('trades', 0)} trades "
            f"({broker.get('pages_traded', 0)}p) | free "
            f"{broker.get('free_pages', 0)}p"
        )
        lines.append(
            f"{'heap':>10} {'pages':>7} {'demand':>7} {'benefit/p':>10} "
            f"{'rate':>9} {'tradeable':>9}"
        )
        for heap in broker.get("heaps", []):
            lines.append(
                f"{heap.get('heap', '?'):>10} "
                f"{heap.get('size_pages', 0):>7} "
                f"{heap.get('demand_pages', 0):>7} "
                f"{heap.get('benefit_per_page', 0.0):>10.2e} "
                f"{heap.get('rate', 0.0):>9.1f} "
                f"{'yes' if heap.get('tradeable') else 'no':>9}"
            )

    audit = stmm.get("audit", [])
    if audit:
        lines.append("")
        lines.append(f"last {min(audit_tail, len(audit))} tuning decisions:")
        for record in audit[-audit_tail:]:
            lines.append(
                f"  #{record.get('interval', '?'):>3} "
                f"{record.get('reason', '?'):28} "
                f"{record.get('current_pages', 0):5d} -> "
                f"{record.get('target_pages', 0):5d} pages "
                f"(free {record.get('free_fraction', 0.0):.0%}, "
                f"esc {record.get('escalations_in_interval', 0)})"
            )
    return "\n".join(lines)


def frame_dict(
    metrics: MetricsDump,
    stmm: dict,
    *,
    prev_metrics: Optional[MetricsDump] = None,
    elapsed_s: float = 0.0,
    traces: Optional[dict] = None,
) -> dict:
    """One machine-readable frame (the ``--json`` output)."""
    shards = _shard_ids(metrics)
    targets: List[Optional[str]] = list(shards) if shards else [None]
    trace_summary = None
    if traces is not None:
        trace_summary = {
            "enabled": traces.get("enabled", False),
            "sample_every": traces.get("sample_every", 0),
            "total": traces.get("total", 0),
            "truncated": traces.get("truncated", 0),
            "summary": traces.get("summary", {}),
        }
    return {
        "locklist_pages": stmm.get("locklist_pages"),
        "free_fraction": stmm.get("locklist_free_fraction"),
        "maxlocks_fraction": stmm.get("maxlocks_fraction"),
        "frozen_reason": stmm.get("frozen_reason"),
        "intervals": stmm.get("intervals"),
        "audit_total": stmm.get("audit_total"),
        "incident_total": stmm.get("incident_total"),
        "wait_classes": stmm.get("wait_classes"),
        "broker": stmm.get("broker"),
        "wire_latency": worker_wire_latency(metrics),
        "traces": trace_summary,
        "shards": [
            shard_summary(
                metrics, shard, prev_metrics=prev_metrics, elapsed_s=elapsed_s
            )
            for shard in targets
        ],
    }


def run_top(
    base_url: str,
    *,
    interval_s: float = 1.0,
    frames: Optional[int] = None,
    clear: bool = True,
    as_json: bool = False,
    out=None,
) -> int:
    """Poll and redraw until interrupted (or for ``frames`` frames)."""
    out = out or sys.stdout
    prev: Optional[MetricsDump] = None
    prev_at: float = 0.0
    drawn = 0
    try:
        while frames is None or drawn < frames:
            try:
                metrics, stmm = fetch_state(base_url)
            except OSError as exc:
                print(f"top: {base_url} unreachable: {exc}", file=sys.stderr)
                return 1
            traces = fetch_traces(base_url)
            now = time.monotonic()
            elapsed = (now - prev_at) if prev is not None else 0.0
            if as_json:
                out.write(
                    json.dumps(
                        frame_dict(
                            metrics,
                            stmm,
                            prev_metrics=prev,
                            elapsed_s=elapsed,
                            traces=traces,
                        ),
                        separators=(",", ":"),
                    )
                )
                out.write("\n")
            else:
                frame = render_frame(
                    metrics,
                    stmm,
                    prev_metrics=prev,
                    elapsed_s=elapsed,
                    traces=traces,
                )
                if clear and drawn:
                    out.write("\x1b[2J\x1b[H")
                out.write(
                    f"repro-service top -- {base_url} -- "
                    f"{time.strftime('%H:%M:%S')}\n"
                )
                out.write(frame)
                out.write("\n")
            out.flush()
            prev, prev_at = metrics, now
            drawn += 1
            if frames is not None and drawn >= frames:
                break
            time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0


__all__ = [
    "parse_prometheus",
    "percentile_from_buckets",
    "shard_summary",
    "worker_wire_latency",
    "frame_dict",
    "render_frame",
    "fetch_state",
    "fetch_traces",
    "run_top",
]
