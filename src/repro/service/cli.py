"""``repro-service``: demo server, threaded stress runner, trace capture.

Three subcommands:

``demo``
    Run the live service under a small closed loop for a few seconds
    and print what the tuner did -- the wall-clock analogue of the
    simulation examples.
``stress``
    The CI smoke: N threads x M lock requests each against a small
    initial LOCKLIST (so synchronous growth and escalation both fire),
    then assert byte-exact memory accounting at shutdown.  Exits
    non-zero on any invariant violation or worker error.
``capture``
    Run load while recording the ``(time, target_locks)`` demand trace
    to a JSONL file that ``repro.workloads.replay`` can consume.
``top``
    Poll a running service's ops endpoints (``--ops-port``) and render
    a refreshing console dashboard: per-shard throughput and latency,
    wait time and incidents, LOCKLIST posture, and the STMM audit tail
    (``--json`` emits one machine-readable object per frame).
``analyze``
    Offline analysis over a recorded ``--telemetry`` JSONL: wait-time
    breakdown by class, the top blockers, and tuner convergence.

Every load subcommand accepts ``--ops-port`` (serve ``/metrics`` /
``/healthz`` / ``/stmm`` while running), ``--span-sample N`` (sample
every Nth request's admission->grant->release span) and ``--telemetry
out.jsonl`` (export the run's registry, tuning decisions and audit
trail as a JSONL stream readable by ``repro.obs``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Union

from repro.analysis.waitprofile import analyze_run
from repro.core.params import TuningParameters
from repro.obs.events import load_runs
from repro.service.capture import DemandTraceRecorder
from repro.service.driver import DriverReport, LoadDriver
from repro.service.sharded import ShardedServiceConfig, ShardedServiceStack
from repro.service.stack import ServiceConfig, ServiceStack
from repro.service.telemetry import service_telemetry
from repro.service.top import run_top

#: Either stack shape; both expose the same reporting surface.
AnyStack = Union[ServiceStack, ShardedServiceStack]


def _add_load_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--threads", type=int, default=8, help="worker threads (default 8)"
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=2_000,
        help="lock requests per thread (default 2000)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="optional wall-clock cap in seconds",
    )
    parser.add_argument(
        "--locklist-pages",
        type=int,
        default=128,
        help="initial LOCKLIST pages (default 128 = 4 blocks)",
    )
    parser.add_argument(
        "--memory-pages",
        type=int,
        default=16_384,
        help="databaseMemory in 4 KB pages (default 16384 = 64 MB)",
    )
    parser.add_argument(
        "--tuner-interval",
        type=float,
        default=0.1,
        help="tuner daemon interval in seconds (default 0.1)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="lock-manager shards: 0 = unsharded stack (default); "
        ">= 1 uses the sharded stack (1 shard reproduces the "
        "unsharded accounting)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--ops-port",
        type=int,
        default=None,
        help="serve /metrics, /healthz and /stmm on this port while "
        "running (0 = ephemeral; the bound URL is printed)",
    )
    parser.add_argument(
        "--span-sample",
        type=int,
        default=0,
        help="sample every Nth request's admission->grant->release span "
        "(0 = off, the default)",
    )
    parser.add_argument(
        "--wait-profile",
        action="store_true",
        help="enable the wait-event profiler (wait-class histograms, "
        "blocker attribution, latch statistics; off by default)",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="OUT.JSONL",
        help="export the run's metrics, tuning decisions and STMM audit "
        "trail as JSONL",
    )


def _build_stack(args: argparse.Namespace) -> AnyStack:
    if args.shards > 0:
        return ShardedServiceStack(
            ShardedServiceConfig(
                total_memory_pages=args.memory_pages,
                initial_locklist_pages=args.locklist_pages,
                tuner_interval_s=args.tuner_interval,
                max_in_flight=max(4, args.threads),
                admission_queue_depth=4 * max(4, args.threads),
                params=TuningParameters(),
                shards=args.shards,
                ops_port=args.ops_port,
                span_sample_every=args.span_sample,
                wait_profile=args.wait_profile,
            )
        )
    config = ServiceConfig(
        total_memory_pages=args.memory_pages,
        initial_locklist_pages=args.locklist_pages,
        tuner_interval_s=args.tuner_interval,
        max_in_flight=max(4, args.threads),
        admission_queue_depth=4 * max(4, args.threads),
        params=TuningParameters(),
        ops_port=args.ops_port,
        span_sample_every=args.span_sample,
        wait_profile=args.wait_profile,
    )
    return ServiceStack(config)


def _announce_ops(stack: AnyStack) -> None:
    ops = getattr(stack, "ops", None)
    if ops is not None and ops.running:
        print(
            f"ops plane: {ops.url} (/metrics /healthz /stmm /incidents)",
            flush=True,
        )


def _export_telemetry(stack: AnyStack, args: argparse.Namespace) -> None:
    if getattr(args, "telemetry", None):
        label = f"service-{args.command}"
        count = service_telemetry(stack, label=label).write_jsonl(args.telemetry)
        print(f"telemetry: {count} records -> {args.telemetry}")


def _run_load(
    stack: AnyStack, args: argparse.Namespace
) -> DriverReport:
    driver = LoadDriver(
        stack,
        threads=args.threads,
        requests_per_thread=args.requests,
        duration_s=args.duration,
        seed=args.seed,
    )
    return driver.run()


def _print_report(stack: AnyStack, report: DriverReport) -> None:
    stats = stack.manager_stats
    print(f"threads:            {report.threads}")
    print(f"wall time:          {report.wall_s:.2f} s")
    print(f"lock requests:      {report.lock_requests}")
    print(f"requests/s:         {report.requests_per_s:,.0f}")
    print(f"commits:            {report.commits}")
    print(
        f"rollbacks:          {report.rollbacks_deadlock} deadlock, "
        f"{report.rollbacks_timeout} timeout, {report.rollbacks_full} full"
    )
    print(f"admission sheds:    {report.admission_sheds}")
    print(
        f"lock memory:        {stack.chain.allocated_pages} pages in "
        f"{stack.chain.block_count} blocks "
        f"(peak demand {stats.peak_used_slots} structures)"
    )
    print(
        f"tuning:             {stack.tuner.intervals_run} intervals, "
        f"{stats.sync_growth_blocks} blocks grown synchronously, "
        f"{stats.escalations.count} escalations"
    )
    _print_shard_breakdown(stack)


def _print_shard_breakdown(stack: AnyStack) -> None:
    """Per-shard stats for the sharded stack (imbalance at a glance)."""
    service = getattr(stack, "service", None)
    shards = getattr(service, "shards", None)
    if not shards or len(shards) < 2:
        return
    ledger = stack.ledger
    print("per-shard breakdown:")
    print(
        f"  {'shard':>5} {'requests':>10} {'granted':>10} {'borrows':>8} "
        f"{'escal':>6} {'blocks':>7} {'held slots':>11}"
    )
    for idx, shard in enumerate(shards):
        stats = shard.stats
        mstats = shard.manager.stats
        print(
            f"  {idx:>5} {stats.requests:>10} {stats.granted:>10} "
            f"{ledger.borrowed_blocks(idx):>8} "
            f"{mstats.escalations.count:>6} "
            f"{shard.chain.block_count:>7} "
            f"{shard.chain.used_slots:>11}"
        )


def _check_shutdown_accounting(stack: AnyStack) -> List[str]:
    """Exact accounting assertions after all sessions have closed."""
    failures: List[str] = []
    if stack.chain.used_slots != 0:
        failures.append(
            f"{stack.chain.used_slots} lock structures leaked after shutdown"
        )
    heap = stack.registry.heap("locklist").size_pages
    if heap != stack.chain.allocated_pages:
        failures.append(
            f"locklist heap {heap}p != chain {stack.chain.allocated_pages}p"
        )
    try:
        stack.check_invariants()
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        failures.append(f"invariant check failed: {exc}")
    if stack.tuner.crash is not None:
        failures.append(f"tuner crashed: {stack.tuner.crash!r}")
    detector = getattr(stack, "detector", None)
    if detector is not None and detector.crash is not None:
        failures.append(f"deadlock sweep crashed: {detector.crash!r}")
    return failures


def cmd_demo(args: argparse.Namespace) -> int:
    stack = _build_stack(args)
    print(
        f"live lock service: {args.memory_pages * 4 // 1024} MB database "
        f"memory, LOCKLIST starting at {args.locklist_pages} pages"
    )
    with stack:
        _announce_ops(stack)
        report = _run_load(stack, args)
    _print_report(stack, report)
    for record in stack.tuner.audit.tail(5):
        print(
            f"  tuner t={record.time:7.2f}s "
            f"{record.current_pages:5d} -> {record.target_pages:5d} pages "
            f"(free {record.free_fraction:.0%}, {record.reason})"
        )
    _export_telemetry(stack, args)
    return 0


def cmd_stress(args: argparse.Namespace) -> int:
    stack = _build_stack(args)
    with stack:
        _announce_ops(stack)
        report = _run_load(stack, args)
    _print_report(stack, report)
    _export_telemetry(stack, args)
    failures = list(report.worker_errors)
    expected = args.threads * args.requests
    if args.duration is None and report.lock_requests < expected:
        failures.append(
            f"only {report.lock_requests}/{expected} lock requests completed"
        )
    failures.extend(_check_shutdown_accounting(stack))
    if failures:
        print("\nSTRESS FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nstress OK: exact accounting verified at shutdown")
    return 0


def cmd_capture(args: argparse.Namespace) -> int:
    stack = _build_stack(args)
    recorder = DemandTraceRecorder(
        stack.chain, clock=stack.clock, period_s=args.period
    )
    with stack, recorder:
        _announce_ops(stack)
        report = _run_load(stack, args)
    count = recorder.save(args.out)
    _print_report(stack, report)
    _export_telemetry(stack, args)
    print(f"captured {count} demand samples -> {args.out}")
    if recorder.dropped:
        print(f"  ({recorder.dropped} same-timestamp samples dropped)")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    base_url = args.url or f"http://127.0.0.1:{args.port}"
    return run_top(
        base_url,
        interval_s=args.interval,
        frames=args.frames,
        clear=not args.no_clear,
        as_json=args.json,
    )


def cmd_analyze(args: argparse.Namespace) -> int:
    try:
        runs = load_runs(args.path)
    except (OSError, ValueError) as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 1
    if not runs:
        print(f"analyze: {args.path}: no telemetry runs found", file=sys.stderr)
        return 1
    reports = [analyze_run(run, top_n=args.top) for run in runs]
    if args.json:
        print(json.dumps([report.to_dict() for report in reports], indent=2))
        return 0
    for index, report in enumerate(reports):
        if index:
            print()
        print(report.render_text())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Live lock service with self-tuning lock memory.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="short demo run with tuner narration")
    _add_load_args(demo)
    demo.set_defaults(func=cmd_demo, requests=500, threads=4)

    stress = sub.add_parser(
        "stress", help="threaded stress run with exact-accounting checks"
    )
    _add_load_args(stress)
    stress.set_defaults(func=cmd_stress)

    capture = sub.add_parser(
        "capture", help="record a (time, target_locks) demand trace"
    )
    _add_load_args(capture)
    capture.add_argument(
        "--out", default="demand_trace.jsonl", help="output JSONL path"
    )
    capture.add_argument(
        "--period", type=float, default=0.02, help="sample period in seconds"
    )
    capture.set_defaults(func=cmd_capture)

    top = sub.add_parser(
        "top", help="live dashboard over a running service's ops plane"
    )
    top.add_argument(
        "--url", default=None, help="ops base URL (overrides --port)"
    )
    top.add_argument(
        "--port", type=int, default=9101, help="ops port on localhost"
    )
    top.add_argument(
        "--interval", type=float, default=1.0, help="refresh seconds"
    )
    top.add_argument(
        "--frames",
        type=int,
        default=None,
        help="stop after N frames (default: run until interrupted)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen",
    )
    top.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object per frame instead of the dashboard",
    )
    top.set_defaults(func=cmd_top)

    analyze = sub.add_parser(
        "analyze",
        help="offline wait-profile report over a recorded telemetry JSONL",
    )
    analyze.add_argument("path", help="telemetry JSONL (from --telemetry)")
    analyze.add_argument(
        "--top", type=int, default=5, help="blocker table size (default 5)"
    )
    analyze.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    analyze.set_defaults(func=cmd_analyze)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
