"""``repro-service``: demo server, threaded stress runner, trace capture.

Subcommands:

``demo``
    Run the live service under a small closed loop for a few seconds
    and print what the tuner did -- the wall-clock analogue of the
    simulation examples.
``stress``
    The CI smoke: N threads x M lock requests each against a small
    initial LOCKLIST (so synchronous growth and escalation both fire),
    then assert byte-exact memory accounting at shutdown.  Exits
    non-zero on any invariant violation or worker error.  ``--net``
    drives the same load over the wire protocol (a server plus client
    stack in this process); ``--net --workers N`` forks the
    multi-process worker pool and additionally asserts the arbiter's
    byte-exact cross-worker reconciliation.
``serve``
    Stand up a lock server and run until interrupted (or
    ``--duration``): a single in-process service over TCP or a Unix
    socket, or -- with ``--workers N`` -- the worker-pool runtime with
    one process per shard group and per-worker UDS endpoints.
``capture``
    Run load while recording the ``(time, target_locks)`` demand trace
    to a JSONL file that ``repro.workloads.replay`` can consume.
``top``
    Poll a running service's ops endpoints (``--ops-port``) and render
    a refreshing console dashboard: per-shard throughput and latency,
    wait time and incidents, LOCKLIST posture, and the STMM audit tail
    (``--json`` emits one machine-readable object per frame).  The
    target may be a full URL or a bare ``host:port``.
``analyze``
    Offline analysis over a recorded ``--telemetry`` JSONL: wait-time
    breakdown by class, the top blockers, and tuner convergence.  Given
    a ``host:port`` (or URL) instead of a file, fetches the live ops
    plane (``/healthz`` ``/stmm`` ``/incidents``) and summarizes it.
``matrix``
    The scenario matrix engine (``run`` / ``report`` / ``list``):
    expand a named grid of contention regimes, topologies, demand
    replays and chaos injections into per-scenario result folders and
    a verdict table (``pass`` / ``expected-degraded`` / ``fail``);
    exit 0 iff every scenario passed or degraded as documented.  See
    ``docs/SCENARIOS.md``.
``bench``
    Benchmark lanes; ``bench --matrix GRID`` runs the scenario matrix
    as a bench lane (same engine as ``matrix run``).

Every load subcommand accepts ``--ops-port`` (serve ``/metrics`` /
``/healthz`` / ``/stmm`` while running), ``--span-sample N`` (sample
every Nth request's admission->grant->release span) and ``--telemetry
out.jsonl`` (export the run's registry, tuning decisions and audit
trail as a JSONL stream readable by ``repro.obs``).  The networked
pool lanes (``--net --workers N``) additionally accept
``--trace-sample N``: sample every Nth wire request for an end-to-end
distributed trace (client encode -> net wait -> server dispatch/lock
wait/park/reply -> client decode), served on ``/traces`` and exported
as schema-v5 ``reqtrace`` telemetry records.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import sys
import tempfile
import time
from typing import List, Optional, Union

from repro.analysis.waitprofile import analyze_run
from repro.core.params import TuningParameters
from repro.obs.events import load_runs
from repro.service.capture import DemandTraceRecorder
from repro.service.driver import DriverReport, LoadDriver
from repro.service.sharded import ShardedServiceConfig, ShardedServiceStack
from repro.service.stack import ServiceConfig, ServiceStack
from repro.service.telemetry import service_telemetry
from repro.service.top import run_top
from repro.service.workers import WorkerPoolConfig, WorkerPoolStack

#: Either stack shape; both expose the same reporting surface.
AnyStack = Union[ServiceStack, ShardedServiceStack]


def _add_load_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--threads", type=int, default=8, help="worker threads (default 8)"
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=2_000,
        help="lock requests per thread (default 2000; 0 = unbounded, "
        "requires --duration)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="wall-clock cap in seconds (required with --requests 0)",
    )
    parser.add_argument(
        "--locklist-pages",
        type=int,
        default=128,
        help="initial LOCKLIST pages (default 128 = 4 blocks)",
    )
    parser.add_argument(
        "--memory-pages",
        type=int,
        default=16_384,
        help="databaseMemory in 4 KB pages (default 16384 = 64 MB)",
    )
    parser.add_argument(
        "--tuner-interval",
        type=float,
        default=0.1,
        help="tuner daemon interval in seconds (default 0.1)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="lock-manager shards: 0 = unsharded stack (default); "
        ">= 1 uses the sharded stack (1 shard reproduces the "
        "unsharded accounting)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--ops-port",
        type=int,
        default=None,
        help="serve /metrics, /healthz and /stmm on this port while "
        "running (0 = ephemeral; the bound URL is printed)",
    )
    parser.add_argument(
        "--span-sample",
        type=int,
        default=0,
        help="sample every Nth request's admission->grant->release span "
        "(0 = off, the default)",
    )
    parser.add_argument(
        "--wait-profile",
        action="store_true",
        help="enable the wait-event profiler (wait-class histograms, "
        "blocker attribution, latch statistics; off by default)",
    )
    parser.add_argument(
        "--broker",
        action="store_true",
        help="enable the whole-memory broker: register sortheap/"
        "hashjoin/pkgcache heaps, trade 128 KB blocks by marginal "
        "benefit, drive admission postures from memory pressure",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="OUT.JSONL",
        help="export the run's metrics, tuning decisions and STMM audit "
        "trail as JSONL",
    )


def _add_net_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--net",
        action="store_true",
        help="drive the load over the wire protocol (server + client "
        "stack in this process) instead of in-process calls",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="fork N worker processes behind the net stack (requires "
        "--net; 0 = single in-process service behind one socket)",
    )
    parser.add_argument(
        "--pool-size",
        type=int,
        default=1,
        help="client connections per endpoint (default 1)",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=0,
        metavar="N",
        help="sample every Nth network request for an end-to-end "
        "distributed trace (0 = off, the default; requires --net "
        "--workers; traces land on /traces and in --telemetry)",
    )


def _ops_url(target: str) -> str:
    """Normalize an ops-plane target: URL passes through, host:port
    (or a bare port) gains the scheme/host."""
    if "://" in target:
        return target.rstrip("/")
    if re.fullmatch(r"\d+", target):
        return f"http://127.0.0.1:{target}"
    return f"http://{target.rstrip('/')}"


def _is_remote_target(path: str) -> bool:
    """A ``host:port`` or URL rather than a telemetry file on disk."""
    if path.startswith(("http://", "https://")):
        return True
    return (
        re.fullmatch(r"[\w.\-]+:\d+", path) is not None
        and not os.path.exists(path)
    )


def _requests_per_thread(args: argparse.Namespace) -> Optional[int]:
    """``--requests 0`` means unbounded (duration-gated) load.

    The driver refuses the unbounded/uncapped combination itself, but
    catching it here turns a traceback into a usage error.
    """
    if args.requests > 0:
        return args.requests
    if args.duration is None:
        raise SystemExit(
            f"{sys.argv[0] if sys.argv else 'repro-service'}: "
            "--requests 0 (unbounded) requires --duration"
        )
    return None


def _build_stack(args: argparse.Namespace) -> AnyStack:
    broker = getattr(args, "broker", False)
    if args.shards > 0:
        return ShardedServiceStack(
            ShardedServiceConfig(
                total_memory_pages=args.memory_pages,
                initial_locklist_pages=args.locklist_pages,
                tuner_interval_s=args.tuner_interval,
                max_in_flight=max(4, args.threads),
                admission_queue_depth=4 * max(4, args.threads),
                params=TuningParameters(),
                shards=args.shards,
                ops_port=args.ops_port,
                span_sample_every=args.span_sample,
                wait_profile=args.wait_profile,
                broker=broker,
            )
        )
    config = ServiceConfig(
        total_memory_pages=args.memory_pages,
        initial_locklist_pages=args.locklist_pages,
        tuner_interval_s=args.tuner_interval,
        max_in_flight=max(4, args.threads),
        admission_queue_depth=4 * max(4, args.threads),
        params=TuningParameters(),
        ops_port=args.ops_port,
        span_sample_every=args.span_sample,
        wait_profile=args.wait_profile,
        broker=broker,
    )
    return ServiceStack(config)


def _announce_ops(stack: AnyStack) -> None:
    ops = getattr(stack, "ops", None)
    if ops is not None and ops.running:
        print(
            f"ops plane: {ops.url} "
            f"(/metrics /healthz /stmm /incidents /traces)",
            flush=True,
        )


def _export_telemetry(stack: AnyStack, args: argparse.Namespace) -> None:
    if getattr(args, "telemetry", None):
        label = f"service-{args.command}"
        count = service_telemetry(stack, label=label).write_jsonl(args.telemetry)
        print(f"telemetry: {count} records -> {args.telemetry}")


def _run_load(
    stack: AnyStack, args: argparse.Namespace
) -> DriverReport:
    driver = LoadDriver(
        stack,
        threads=args.threads,
        requests_per_thread=_requests_per_thread(args),
        duration_s=args.duration,
        seed=args.seed,
    )
    return driver.run()


def _print_report(stack: AnyStack, report: DriverReport) -> None:
    stats = stack.manager_stats
    print(f"threads:            {report.threads}")
    print(f"wall time:          {report.wall_s:.2f} s")
    print(f"lock requests:      {report.lock_requests}")
    print(f"requests/s:         {report.requests_per_s:,.0f}")
    print(f"commits:            {report.commits}")
    print(
        f"rollbacks:          {report.rollbacks_deadlock} deadlock, "
        f"{report.rollbacks_timeout} timeout, {report.rollbacks_full} full"
    )
    print(f"admission sheds:    {report.admission_sheds}")
    print(
        f"lock memory:        {stack.chain.allocated_pages} pages in "
        f"{stack.chain.block_count} blocks "
        f"(peak demand {stats.peak_used_slots} structures)"
    )
    print(
        f"tuning:             {stack.tuner.intervals_run} intervals, "
        f"{stats.sync_growth_blocks} blocks grown synchronously, "
        f"{stats.escalations.count} escalations"
    )
    broker = getattr(stack, "broker", None)
    if broker is not None:
        status = broker.status(audit_tail=0)
        print(
            f"broker:             {status['trades']} trades "
            f"({status['pages_traded']} pages), posture "
            f"{status['posture']}, pressure {status['pressure']:.2f}, "
            f"free {status['free_pages']} pages"
        )
        for heap in status["heaps"]:
            print(
                f"  {heap['heap']:<10} {heap['size_pages']:>6}p "
                f"demand {heap['demand_pages']:>6}p "
                f"benefit {heap['benefit_per_page']:.2e}/page"
            )
    _print_shard_breakdown(stack)


def _print_shard_breakdown(stack: AnyStack) -> None:
    """Per-shard stats for the sharded stack (imbalance at a glance)."""
    service = getattr(stack, "service", None)
    shards = getattr(service, "shards", None)
    if not shards or len(shards) < 2:
        return
    ledger = stack.ledger
    print("per-shard breakdown:")
    print(
        f"  {'shard':>5} {'requests':>10} {'granted':>10} {'borrows':>8} "
        f"{'escal':>6} {'blocks':>7} {'held slots':>11}"
    )
    for idx, shard in enumerate(shards):
        stats = shard.stats
        mstats = shard.manager.stats
        print(
            f"  {idx:>5} {stats.requests:>10} {stats.granted:>10} "
            f"{ledger.borrowed_blocks(idx):>8} "
            f"{mstats.escalations.count:>6} "
            f"{shard.chain.block_count:>7} "
            f"{shard.chain.used_slots:>11}"
        )


def _shed_failures(
    args: argparse.Namespace, report: DriverReport
) -> List[str]:
    """Admission sheds beyond the declared budget are failures.

    A stress run that degraded to the ``shed`` posture used to report
    success; the shed count now feeds the exit status.  ``--allow-sheds``
    (default 0) declares an expected shed budget for runs that probe
    overload on purpose.
    """
    allowed = getattr(args, "allow_sheds", 0) or 0
    if report.admission_sheds > allowed:
        return [
            f"{report.admission_sheds} admission sheds "
            f"(allowed {allowed}; raise --allow-sheds if overload "
            f"is intended)"
        ]
    return []


def _check_shutdown_accounting(stack: AnyStack) -> List[str]:
    """Exact accounting assertions after all sessions have closed."""
    failures: List[str] = []
    if stack.chain.used_slots != 0:
        failures.append(
            f"{stack.chain.used_slots} lock structures leaked after shutdown"
        )
    heap = stack.registry.heap("locklist").size_pages
    if heap != stack.chain.allocated_pages:
        failures.append(
            f"locklist heap {heap}p != chain {stack.chain.allocated_pages}p"
        )
    try:
        stack.check_invariants()
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        failures.append(f"invariant check failed: {exc}")
    if stack.tuner.crash is not None:
        failures.append(f"tuner crashed: {stack.tuner.crash!r}")
    detector = getattr(stack, "detector", None)
    if detector is not None and detector.crash is not None:
        failures.append(f"deadlock sweep crashed: {detector.crash!r}")
    return failures


def _build_pool(args: argparse.Namespace) -> WorkerPoolStack:
    return WorkerPoolStack(
        WorkerPoolConfig(
            total_memory_pages=args.memory_pages,
            initial_locklist_pages=args.locklist_pages,
            tuner_interval_s=args.tuner_interval,
            max_in_flight=max(4, args.threads),
            admission_queue_depth=4 * max(4, args.threads),
            params=TuningParameters(),
            workers=args.workers,
            ops_port=args.ops_port,
            trace_sample_every=getattr(args, "trace_sample", 0),
        )
    )


def _print_pool_report(pool: WorkerPoolStack, report: DriverReport) -> None:
    print(f"threads:            {report.threads}")
    print(f"wall time:          {report.wall_s:.2f} s")
    print(f"lock requests:      {report.lock_requests}")
    print(f"requests/s:         {report.requests_per_s:,.0f}")
    print(f"commits:            {report.commits}")
    print(
        f"rollbacks:          {report.rollbacks_deadlock} deadlock, "
        f"{report.rollbacks_timeout} timeout, {report.rollbacks_full} full"
    )
    print(
        f"lock memory:        {pool.chain.allocated_pages} pages in "
        f"{pool.chain.block_count} blocks over {pool.config.workers} "
        f"worker processes"
    )
    print(
        f"tuning:             {pool.tuner.intervals_run} intervals, "
        f"{pool.ledger.total_borrowed_blocks()} blocks borrowed "
        f"synchronously, {len(pool.detector.victims)} cross-worker "
        f"deadlock victims"
    )
    if pool.config.trace_sample_every > 0:
        payload = pool.ops_traces()
        tax = (payload.get("summary") or {}).get("wire_tax") or {}
        print(
            f"traces:             {payload['total']} sampled "
            f"(1/{pool.config.trace_sample_every}), "
            f"{payload['truncated']} truncated, "
            f"wire tax {tax.get('fraction', 0.0):.0%}"
        )
    rec = pool.reconciliation
    if rec is None:
        return
    print("per-worker reconciliation:")
    print(
        f"  {'worker':>6} {'state':>9} {'expected':>9} {'reported':>9} "
        f"{'borrowed':>9}"
    )
    for entry in rec.workers:
        reported = entry["reported_blocks"]
        print(
            f"  {entry['worker']:>6} {entry['state']:>9} "
            f"{entry['expected_blocks']:>9} "
            f"{reported if reported is not None else '-':>9} "
            f"{entry['borrowed_blocks']:>9}"
        )
    print(
        f"  total: {rec.reported_blocks}/{rec.expected_blocks} blocks "
        f"({rec.reported_pages}/{rec.expected_pages} pages) "
        f"{'OK' if rec.ok else 'MISMATCH'}"
    )


def _net_stress_pool(args: argparse.Namespace) -> int:
    pool = _build_pool(args)
    pool.start()
    try:
        _announce_ops(pool)
        with pool.client_stack(pool_size=args.pool_size) as client:
            driver = LoadDriver(
                client,
                threads=args.threads,
                requests_per_thread=_requests_per_thread(args),
                duration_s=args.duration,
                seed=args.seed,
            )
            report = driver.run()
    finally:
        pool.stop()
    _print_pool_report(pool, report)
    _export_telemetry(pool, args)
    failures = list(report.worker_errors)
    expected = args.threads * args.requests
    if args.duration is None and report.lock_requests < expected:
        failures.append(
            f"only {report.lock_requests}/{expected} lock requests completed"
        )
    failures.extend(_shed_failures(args, report))
    rec = pool.reconciliation
    if rec is None or not rec.ok:
        failures.append(f"worker reconciliation failed: {rec!r}")
    if pool.frozen_reason is not None:
        failures.append(f"pool froze: {pool.frozen_reason}")
    if pool.tuner.crash is not None:
        failures.append(f"arbiter crashed: {pool.tuner.crash!r}")
    if pool.detector.crash is not None:
        failures.append(f"deadlock sweep crashed: {pool.detector.crash!r}")
    try:
        pool.check_invariants()
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        failures.append(f"invariant check failed: {exc}")
    if failures:
        print("\nNET STRESS FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nnet stress OK: byte-exact reconciliation across workers")
    return 0


def _net_stress_single(args: argparse.Namespace) -> int:
    from repro.net.client import NetClientStack
    from repro.net.server import serve_service

    if args.shards > 0:
        print("stress: --net --shards is not supported; use --workers",
              file=sys.stderr)
        return 2
    stack = _build_stack(args)
    sock_dir = tempfile.mkdtemp(prefix="repro-net-")
    sock = os.path.join(sock_dir, "service.sock")
    with stack:
        _announce_ops(stack)
        server = serve_service(stack.service, path=sock)
        try:
            with NetClientStack(
                f"unix:{sock}",
                0,
                pool_size=args.pool_size,
                max_in_flight=max(4, args.threads),
                max_queue_depth=4 * max(4, args.threads),
            ) as client:
                driver = LoadDriver(
                    client,
                    threads=args.threads,
                    requests_per_thread=_requests_per_thread(args),
                    duration_s=args.duration,
                    seed=args.seed,
                )
                report = driver.run()
        finally:
            server.stop()
            shutil.rmtree(sock_dir, ignore_errors=True)
    _print_report(stack, report)
    failures = list(report.worker_errors)
    expected = args.threads * args.requests
    if args.duration is None and report.lock_requests < expected:
        failures.append(
            f"only {report.lock_requests}/{expected} lock requests completed"
        )
    failures.extend(_shed_failures(args, report))
    failures.extend(_check_shutdown_accounting(stack))
    if failures:
        print("\nNET STRESS FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nnet stress OK: exact accounting verified at shutdown")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    if args.workers > 0:
        pool = _build_pool(args)
        pool.start()
        try:
            _announce_ops(pool)
            for endpoint, _port in pool.endpoints:
                print(f"worker endpoint: {endpoint}", flush=True)
            print("serving (Ctrl-C to stop)", flush=True)
            deadline = (
                time.monotonic() + args.duration
                if args.duration is not None
                else None
            )
            while deadline is None or time.monotonic() < deadline:
                time.sleep(0.2)
        except KeyboardInterrupt:
            pass
        finally:
            pool.stop()
        rec = pool.reconciliation
        print(
            f"reconciliation: {rec.reported_blocks}/{rec.expected_blocks} "
            f"blocks {'OK' if rec.ok else 'MISMATCH'}"
        )
        return 0 if rec.ok else 1

    from repro.net.server import serve_service

    stack = _build_stack(args)
    with stack:
        _announce_ops(stack)
        server = serve_service(
            stack.service,
            host=args.host,
            port=args.port,
            path=args.socket,
            metrics=getattr(stack, "metrics", None),
        )
        try:
            if args.socket:
                print(f"serving on unix:{args.socket}", flush=True)
            else:
                host, port = server.address
                print(f"serving on {host}:{port}", flush=True)
            print("serving (Ctrl-C to stop)", flush=True)
            deadline = (
                time.monotonic() + args.duration
                if args.duration is not None
                else None
            )
            while deadline is None or time.monotonic() < deadline:
                time.sleep(0.2)
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
    failures = _check_shutdown_accounting(stack)
    if failures:
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("clean shutdown: exact accounting verified")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    stack = _build_stack(args)
    print(
        f"live lock service: {args.memory_pages * 4 // 1024} MB database "
        f"memory, LOCKLIST starting at {args.locklist_pages} pages"
    )
    with stack:
        _announce_ops(stack)
        report = _run_load(stack, args)
    _print_report(stack, report)
    for record in stack.tuner.audit.tail(5):
        print(
            f"  tuner t={record.time:7.2f}s "
            f"{record.current_pages:5d} -> {record.target_pages:5d} pages "
            f"(free {record.free_fraction:.0%}, {record.reason})"
        )
    _export_telemetry(stack, args)
    return 0


def cmd_stress(args: argparse.Namespace) -> int:
    if args.workers > 0 and not args.net:
        print("stress: --workers requires --net", file=sys.stderr)
        return 2
    if args.net:
        if args.workers > 0:
            return _net_stress_pool(args)
        return _net_stress_single(args)
    stack = _build_stack(args)
    with stack:
        _announce_ops(stack)
        report = _run_load(stack, args)
    _print_report(stack, report)
    _export_telemetry(stack, args)
    failures = list(report.worker_errors)
    expected = args.threads * args.requests
    if args.duration is None and report.lock_requests < expected:
        failures.append(
            f"only {report.lock_requests}/{expected} lock requests completed"
        )
    failures.extend(_shed_failures(args, report))
    failures.extend(_check_shutdown_accounting(stack))
    if failures:
        print("\nSTRESS FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nstress OK: exact accounting verified at shutdown")
    return 0


def cmd_capture(args: argparse.Namespace) -> int:
    stack = _build_stack(args)
    recorder = DemandTraceRecorder(
        stack.chain, clock=stack.clock, period_s=args.period
    )
    with stack, recorder:
        _announce_ops(stack)
        report = _run_load(stack, args)
    count = recorder.save(args.out)
    _print_report(stack, report)
    _export_telemetry(stack, args)
    print(f"captured {count} demand samples -> {args.out}")
    if recorder.dropped:
        print(f"  ({recorder.dropped} same-timestamp samples dropped)")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    base_url = (
        _ops_url(args.url) if args.url else f"http://127.0.0.1:{args.port}"
    )
    return run_top(
        base_url,
        interval_s=args.interval,
        frames=args.frames,
        clear=not args.no_clear,
        as_json=args.json,
    )


def _fetch_ops_json(url: str) -> dict:
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        # /healthz answers 503 with a JSON body when degraded.
        return json.loads(exc.read().decode("utf-8"))


def _analyze_remote(args: argparse.Namespace) -> int:
    """Summarize a *live* ops plane instead of a telemetry file."""
    base = _ops_url(args.path)
    try:
        health = _fetch_ops_json(f"{base}/healthz")
        stmm = _fetch_ops_json(f"{base}/stmm")
        incidents = _fetch_ops_json(f"{base}/incidents")
    except (OSError, ValueError) as exc:
        print(f"analyze: {base} unreachable: {exc}", file=sys.stderr)
        return 1
    ok = bool(health.get("ok"))
    if args.json:
        print(
            json.dumps(
                {
                    "target": base,
                    "health": health,
                    "stmm": stmm,
                    "incidents": incidents,
                },
                indent=2,
            )
        )
        return 0 if ok else 1
    print(f"live ops plane: {base}")
    print(
        f"health:    {'healthy' if ok else 'DEGRADED'} "
        f"({health.get('service', 'unknown')})"
    )
    if health.get("frozen_reason"):
        print(f"  frozen:  {health['frozen_reason']}")
    if "workers_alive" in health:
        print(
            f"  workers: {health['workers_alive']}/{health.get('workers')} "
            f"alive, {health.get('worker_crashes', 0)} crashes"
        )
    posture = stmm.get("posture", {})
    if posture:
        print("posture:")
        for key in sorted(posture):
            print(f"  {key}: {posture[key]}")
    broker = stmm.get("broker")
    if broker:
        print(
            f"broker:    posture {broker.get('posture', '?')}, pressure "
            f"{broker.get('pressure', 0.0):.2f}, "
            f"{broker.get('trades', 0)} trades "
            f"({broker.get('pages_traded', 0)} pages), free "
            f"{broker.get('free_pages', 0)} pages"
        )
        for heap in broker.get("heaps", []):
            print(
                f"  {heap.get('heap', '?'):<10} "
                f"{heap.get('size_pages', 0):>6}p "
                f"demand {heap.get('demand_pages', 0):>6}p "
                f"benefit {heap.get('benefit_per_page', 0.0):.2e}/page"
            )
    print(
        f"tuning:    {stmm.get('intervals', 0)} intervals "
        f"({stmm.get('audit_total', 0)} audit records)"
    )
    for record in stmm.get("audit", [])[-args.top:]:
        if {"time", "current_pages", "target_pages", "reason"} <= set(record):
            print(
                f"  t={record['time']:7.2f}s "
                f"{record['current_pages']:5d} -> "
                f"{record['target_pages']:5d} pages ({record['reason']})"
            )
        else:
            print(f"  {record}")
    counts = {
        kind: count
        for kind, count in incidents.get("counts", {}).items()
        if count
    }
    print(f"incidents: {incidents.get('total', 0)} total {counts or ''}")
    for record in incidents.get("incidents", [])[-args.top:]:
        print(
            f"  [{record.get('kind')}] t={record.get('time', 0.0):.2f}s "
            f"shard {record.get('shard')}: {record.get('detail')}"
        )
    return 0 if ok else 1


def _matrix_run(args: argparse.Namespace) -> int:
    """Expand a named grid, run every scenario, print the verdicts."""
    from repro.scenarios import build_grid, run_matrix

    baseline = None
    if getattr(args, "baseline", None):
        from repro.scenarios import load_matrix

        baseline = load_matrix(args.baseline)
    grid = build_grid(args.grid)
    echo = None if args.json else (lambda line: print(line, flush=True))
    report = run_matrix(
        grid, out_dir=args.out_dir, baseline=baseline, echo=echo
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print()
        print(report.render_table())
    return 0 if report.ok else 1


def cmd_matrix(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        build_grid,
        grid_names,
        load_matrix,
        render_verdict_table,
    )

    if args.action == "list":
        for name in grid_names():
            grid = build_grid(name)
            chaos = sum(1 for spec in grid.expand() if spec.chaos)
            print(
                f"{name}: {len(grid)} scenarios "
                f"({chaos} chaos)"
            )
        return 0
    if args.action == "report":
        try:
            matrix = load_matrix(args.path)
        except (OSError, ValueError) as exc:
            print(f"matrix report: {exc}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(matrix, indent=2, sort_keys=True))
        else:
            print(render_verdict_table(matrix))
        return 0 if matrix.get("ok") else 1
    return _matrix_run(args)


def cmd_bench(args: argparse.Namespace) -> int:
    """``bench --matrix GRID``: the matrix lane under its bench alias."""
    if not args.matrix:
        print("bench: --matrix GRID is required", file=sys.stderr)
        return 2
    args.grid = args.matrix
    return _matrix_run(args)


def cmd_analyze(args: argparse.Namespace) -> int:
    if _is_remote_target(args.path):
        return _analyze_remote(args)
    try:
        runs = load_runs(args.path)
    except (OSError, ValueError) as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 1
    if not runs:
        print(f"analyze: {args.path}: no telemetry runs found", file=sys.stderr)
        return 1
    reports = [analyze_run(run, top_n=args.top) for run in runs]
    if args.json:
        print(json.dumps([report.to_dict() for report in reports], indent=2))
        return 0
    for index, report in enumerate(reports):
        if index:
            print()
        print(report.render_text())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Live lock service with self-tuning lock memory.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="short demo run with tuner narration")
    _add_load_args(demo)
    demo.set_defaults(func=cmd_demo, requests=500, threads=4)

    stress = sub.add_parser(
        "stress", help="threaded stress run with exact-accounting checks"
    )
    _add_load_args(stress)
    _add_net_args(stress)
    stress.add_argument(
        "--allow-sheds",
        type=int,
        default=0,
        metavar="N",
        help="expected admission-shed budget; more than N sheds fails "
        "the run (default 0: any shed is a failure)",
    )
    stress.set_defaults(func=cmd_stress)

    serve = sub.add_parser(
        "serve",
        help="stand up a lock server (single service or --workers pool)",
    )
    _add_load_args(serve)
    _add_net_args(serve)
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind host (single service)"
    )
    serve.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="serve a Unix-domain socket instead of TCP (single service)",
    )
    serve.set_defaults(func=cmd_serve)

    capture = sub.add_parser(
        "capture", help="record a (time, target_locks) demand trace"
    )
    _add_load_args(capture)
    capture.add_argument(
        "--out", default="demand_trace.jsonl", help="output JSONL path"
    )
    capture.add_argument(
        "--period", type=float, default=0.02, help="sample period in seconds"
    )
    capture.set_defaults(func=cmd_capture)

    top = sub.add_parser(
        "top", help="live dashboard over a running service's ops plane"
    )
    top.add_argument(
        "--url",
        default=None,
        help="ops target: URL or host:port (overrides --port)",
    )
    top.add_argument(
        "--port", type=int, default=9101, help="ops port on localhost"
    )
    top.add_argument(
        "--interval", type=float, default=1.0, help="refresh seconds"
    )
    top.add_argument(
        "--frames",
        type=int,
        default=None,
        help="stop after N frames (default: run until interrupted)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen",
    )
    top.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object per frame instead of the dashboard",
    )
    top.set_defaults(func=cmd_top)

    analyze = sub.add_parser(
        "analyze",
        help="offline wait-profile report over a recorded telemetry JSONL",
    )
    analyze.add_argument(
        "path",
        help="telemetry JSONL (from --telemetry), or the host:port / URL "
        "of a live ops plane",
    )
    analyze.add_argument(
        "--top", type=int, default=5, help="blocker table size (default 5)"
    )
    analyze.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    analyze.set_defaults(func=cmd_analyze)

    matrix = sub.add_parser(
        "matrix",
        help="scenario matrix engine: expand a named grid, run every "
        "scenario, emit per-scenario verdicts",
    )
    matrix_sub = matrix.add_subparsers(dest="action", required=True)
    matrix_run = matrix_sub.add_parser(
        "run", help="run a named grid and print the verdict table"
    )
    matrix_run.add_argument(
        "--grid",
        default="mini",
        help="named grid to run (see 'matrix list'; default mini)",
    )
    matrix_run.add_argument(
        "--out-dir",
        default="matrix_results",
        help="per-scenario result folders land under OUT_DIR/<grid>/ "
        "(default matrix_results)",
    )
    matrix_run.add_argument(
        "--baseline",
        default=None,
        metavar="MATRIX.JSON",
        help="prior matrix.json; scenarios falling below its throughput "
        "envelope fail",
    )
    matrix_run.add_argument(
        "--json",
        action="store_true",
        help="emit the matrix report as JSON instead of the table",
    )
    matrix_run.set_defaults(func=cmd_matrix)
    matrix_report = matrix_sub.add_parser(
        "report", help="re-render a saved matrix.json as the verdict table"
    )
    matrix_report.add_argument("path", help="matrix.json written by 'run'")
    matrix_report.add_argument(
        "--json", action="store_true", help="emit the raw JSON instead"
    )
    matrix_report.set_defaults(func=cmd_matrix)
    matrix_list = matrix_sub.add_parser(
        "list", help="list the named grids and their scenario counts"
    )
    matrix_list.set_defaults(func=cmd_matrix)

    bench = sub.add_parser(
        "bench",
        help="benchmark lanes; --matrix GRID runs the scenario matrix",
    )
    bench.add_argument(
        "--matrix",
        default=None,
        metavar="GRID",
        help="run the named scenario grid as a bench lane",
    )
    bench.add_argument(
        "--out-dir",
        default="matrix_results",
        help="per-scenario result folders (default matrix_results)",
    )
    bench.add_argument(
        "--baseline",
        default=None,
        metavar="MATRIX.JSON",
        help="prior matrix.json throughput envelope",
    )
    bench.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    bench.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
