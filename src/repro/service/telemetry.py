"""Collect a finished service run into a :class:`RunTelemetry` stream.

The DES runner has had a ``--telemetry out.jsonl`` round trip since the
observability PR; this module gives the *live* stacks the same exit:
:func:`service_telemetry` gathers the shared metric registry (including
the per-shard labeled series), the controller's tuning decisions and
the tuner's audit trail into one :class:`~repro.obs.events.RunTelemetry`
that ``write_jsonl`` serializes and the standard ``repro.obs`` readers
load back.

Call it after :meth:`stop` (or inside the ``with stack:`` exit) so the
final counter values and the complete audit ring are captured.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from repro.obs.events import RunTelemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.sharded import ShardedServiceStack
    from repro.service.stack import ServiceStack

    AnyStack = Union[ServiceStack, ShardedServiceStack]


def service_telemetry(stack: "AnyStack", label: str = "service") -> RunTelemetry:
    """One telemetry object for a finished (or quiesced) service run.

    Works for both the unsharded and the sharded stack: both expose
    ``metrics`` (the shared registry), ``controller.decisions`` and
    ``tuner.audit``.  When the stack ran without telemetry the stream
    still carries the decisions and audit trail over an empty registry.
    """
    if getattr(stack, "publish_ops_metrics", None) is not None:
        # Final state of the point-in-time gauges (occupancy, sessions).
        stack.publish_ops_metrics()
    waits = []
    for profiler in getattr(stack, "wait_profilers", []) or []:
        waits.extend(profiler.to_dicts())
    waits.sort(key=lambda w: w["t"])
    traces = []
    for tracer in getattr(stack, "request_tracers", []) or []:
        traces.extend(tracer.to_dicts())
    traces.sort(key=lambda tr: tr["t"])
    incident_log = getattr(stack, "incidents", None)
    broker = getattr(stack, "broker", None)
    telemetry = RunTelemetry(
        label=label,
        decisions=list(stack.controller.decisions),
        registry=stack.metrics,
        audit=stack.tuner.audit.records(),
        waits=waits,
        incidents=[] if incident_log is None else incident_log.records(),
        broker=[] if broker is None else broker.audit.records(),
        traces=traces,
    )
    return telemetry


__all__ = ["service_telemetry"]
