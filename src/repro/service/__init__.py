"""repro.service: the lock manager as a live, thread-safe service.

Everything below runs the *same* lock manager and tuning controller the
discrete-event simulation uses, on wall-clock time under real thread
concurrency:

* :mod:`repro.service.clock` -- the virtual/wall time seam;
* :mod:`repro.service.wallenv` -- the DES environment surface on a
  condition variable;
* :mod:`repro.service.service` -- :class:`LockService`, the thread-safe
  facade (deadlines, cancellation, sessions);
* :mod:`repro.service.tuner` -- :class:`TunerDaemon`, STMM on a real
  interval with crash-to-frozen degradation;
* :mod:`repro.service.admission` -- bounded in-flight sessions with
  queue shedding;
* :mod:`repro.service.broker` -- the whole-memory broker: per-heap
  marginal-benefit estimators, benefit-driven block trading and
  memory-pressure admission postures;
* :mod:`repro.service.stack` -- one-call assembly of the whole stack;
* :mod:`repro.service.ledger` -- the shard memory ledger and the
  aggregate chain the controller tunes when sharded;
* :mod:`repro.service.sharded` -- per-shard lock tables with global
  STMM arbitration and cross-shard deadlock sweeps;
* :mod:`repro.service.driver` -- closed-loop multi-threaded load;
* :mod:`repro.service.capture` -- demand-trace capture for offline
  replay through :mod:`repro.workloads.replay`.
"""

from repro.service.admission import AdmissionController, AdmissionStats
from repro.service.broker import (
    BrokerConfig,
    MemoryBroker,
    PressureConfig,
    PressureMonitor,
    WorkloadProfile,
)
from repro.service.capture import DemandTraceRecorder, load_trace_jsonl
from repro.service.clock import Clock, ManualClock, MonotonicClock, VirtualClock
from repro.service.driver import DriverReport, LoadDriver
from repro.service.ledger import (
    AggregateLockChain,
    ShardMemoryLedger,
    ShardOccupancy,
)
from repro.service.service import LockService, ServiceStats
from repro.service.sharded import (
    ShardedDeadlockDetector,
    ShardedLockService,
    ShardedServiceConfig,
    ShardedServiceStack,
    shard_of,
)
from repro.service.stack import ServiceConfig, ServiceStack
from repro.service.tuner import TunerDaemon

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "AggregateLockChain",
    "BrokerConfig",
    "Clock",
    "DemandTraceRecorder",
    "DriverReport",
    "LoadDriver",
    "LockService",
    "ManualClock",
    "MemoryBroker",
    "MonotonicClock",
    "PressureConfig",
    "PressureMonitor",
    "ServiceConfig",
    "ServiceStack",
    "ServiceStats",
    "ShardMemoryLedger",
    "ShardOccupancy",
    "ShardedDeadlockDetector",
    "ShardedLockService",
    "ShardedServiceConfig",
    "ShardedServiceStack",
    "TunerDaemon",
    "VirtualClock",
    "WorkloadProfile",
    "load_trace_jsonl",
    "shard_of",
]
