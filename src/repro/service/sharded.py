"""Sharded lock service: per-shard lock tables, one global tuning loop.

The unsharded :class:`~repro.service.service.LockService` serializes
every request on a single mutex, so its throughput *falls* as threads
are added (BENCH_SERVICE.json: the hot latch).  This module partitions
the resource space across N independent lock managers:

* **Routing**: a request for table ``t`` (or any row of ``t``) goes to
  shard ``t % N``.  Row locks take their covering intent lock on the
  same table, so a single request never spans shards; uncontended
  requests on different shards never touch the same mutex.
* **Sessions** are global: :class:`ShardedLockService` owns the
  application-id space and lazily registers a session with a shard the
  first time a request routes there
  (:meth:`LockService.adopt_session`).  A per-session lock enforces the
  one-request-in-flight contract *globally* -- the cross-shard deadlock
  detector's merged wait-for graph is only sound if a session waits in
  at most one shard.
* **Memory** stays a single LOCKLIST: the paper's
  :class:`~repro.core.controller.LockMemoryController` tunes the
  :class:`~repro.service.ledger.AggregateLockChain` (the sum of the
  shard chains); grows are distributed as per-shard 128 KB block
  grants proportional to ledger demand, synchronous-growth borrows go
  to the requesting shard (recorded in the
  :class:`~repro.service.ledger.ShardMemoryLedger`) and stay bounded
  by the global LMOmax, and the adaptive MAXLOCKS fraction -- computed
  from aggregate usage -- is pushed to every shard on every resize.
* **Deadlocks**: each shard keeps immediate detection for its own
  cycles (a same-shard cycle therefore never persists), so any cycle
  in the merged graph necessarily spans shards;
  :class:`ShardedDeadlockDetector` sweeps for those on a wall-clock
  interval, choosing victims by *global* lock footprint from the
  ledger with the lowest-app-id tie-break.

Lock ordering protocol (deadlock-freedom across internal actors):

1. Shard conditions are only ever acquired one-at-a-time (request
   path) or all-ascending-by-index (:class:`_AllShardConds`: tuner,
   detector, close, invariant checks).
2. The stack's growth lock is acquired only *after* a shard condition
   (a sync-growing request thread) and never the other way around.
3. The growth-lock holder never waits for any shard condition.

A thread holding all shard conditions excludes every request thread,
so the heap-grown-but-chain-not-yet window inside synchronous growth
is unobservable to the tuner and ``check_consistency`` cannot
misfire.

With ``shards=1`` the routing, the ledger split and the aggregate
chain all degenerate to pass-throughs and the stack reproduces the
unsharded stack's accounting exactly (asserted by the property tests).
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.controller import LockMemoryController
from repro.core.maxlocks import AdaptiveMaxlocks
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    ServiceClosedError,
    ServiceError,
)
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.detector import (
    DetectorStats,
    build_wait_for_graph,
    find_cycles_in_graph,
    merge_wait_graphs,
)
from repro.lockmgr.manager import LockManagerStats
from repro.lockmgr.modes import LockMode
from repro.memory.stmm import Stmm
from repro.obs.incidents import IncidentLog, IncidentRecorder
from repro.obs.registry import MetricRegistry
from repro.obs.spans import RequestSpanSampler
from repro.obs.waits import WaitEventProfiler
from repro.service.admission import AdmissionController
from repro.service.clock import Clock, MonotonicClock
from repro.service.ledger import AggregateLockChain, ShardMemoryLedger
from repro.service.ops import OpsServer
from repro.service.service import LockService, ServiceStats, _USE_DEFAULT
from repro.service.stack import (
    ServiceConfig,
    build_broker,
    build_memory_registry,
    controller_params,
    wait_class_payload,
)
from repro.service.tuner import TunerDaemon
from repro.units import PAGES_PER_BLOCK, round_pages_to_blocks


def shard_of(table_id: int, shards: int) -> int:
    """The shard owning ``table_id`` and every row in it.

    Plain modulo over the integer table id: deterministic across
    processes (no reliance on ``hash()``, so PYTHONHASHSEED cannot
    change placement) and trivially computable by operators reading a
    trace.
    """
    return table_id % shards


@dataclass
class ShardedServiceConfig(ServiceConfig):
    """A :class:`ServiceConfig` plus the shard-layer knobs."""

    #: Number of lock-manager shards (1 = byte-equivalent to unsharded).
    shards: int = 4
    #: Wall-clock seconds between cross-shard deadlock sweeps.
    deadlock_interval_s: float = 0.25

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.deadlock_interval_s <= 0:
            raise ConfigurationError(
                f"deadlock_interval_s must be positive, "
                f"got {self.deadlock_interval_s}"
            )
        super().__post_init__()
        blocks = round_pages_to_blocks(self.initial_locklist_pages) // PAGES_PER_BLOCK
        if blocks < self.shards:
            raise ConfigurationError(
                f"initial locklist of {blocks} blocks cannot seed "
                f"{self.shards} shards with one block each"
            )


class _Session:
    """Global session registry entry.

    ``lock`` is acquired non-blocking around each request, enforcing
    one-in-flight per session across shards.  ``shard_ids`` is an
    immutable tuple replaced wholesale on adoption so concurrent
    readers (cancel from another thread) never see a mutating
    collection.
    """

    __slots__ = ("lock", "shard_ids")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.shard_ids: Tuple[int, ...] = ()


class _AllShardConds:
    """Acquire every shard condition, ascending by shard index.

    Duck-types the ``with service._cond:`` surface the
    :class:`TunerDaemon` uses, extended over N shards.  The underlying
    locks are RLocks, so a holder may re-enter any single shard's
    public API (freeze, close) without deadlocking itself.
    """

    def __init__(self, conds: Sequence[threading.Condition]) -> None:
        self._conds = list(conds)

    def __enter__(self) -> "_AllShardConds":
        for cond in self._conds:
            cond.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        for cond in reversed(self._conds):
            cond.release()


class ShardedLockService:
    """N :class:`LockService` shards behind one service facade.

    Exposes the same client surface as the unsharded service (session
    lifecycle, ``lock_row`` / ``lock_table`` / ``rollback`` / ``cancel``
    / ``release_read_lock``) plus the aggregate surfaces the tuning
    stack consumes (``chain``, ``_cond``, ``clock``, ``freeze_tuning``),
    so both :class:`~repro.service.driver.LoadDriver` and
    :class:`~repro.service.tuner.TunerDaemon` run unchanged against it.
    """

    def __init__(
        self,
        chains: Sequence[LockBlockChain],
        *,
        clock: Optional[Clock] = None,
        default_timeout_s: Optional[float] = None,
        metrics: Optional[MetricRegistry] = None,
        maxlocks_fraction: float = 0.98,
        lock_timeout_s: Optional[float] = None,
    ) -> None:
        if not chains:
            raise ServiceError("sharded service needs at least one chain")
        self.clock = clock or MonotonicClock()
        # Shards share the clock and the metric registry; each shard's
        # service.* instruments carry a shard=N label, so the registry
        # holds one distinct series per shard (sum for the aggregate).
        self.shards: List[LockService] = [
            LockService(
                chain,
                clock=self.clock,
                default_timeout_s=default_timeout_s,
                metrics=metrics,
                metric_labels=(
                    None if metrics is None else {"shard": str(idx)}
                ),
                maxlocks_fraction=maxlocks_fraction,
                lock_timeout_s=lock_timeout_s,
            )
            for idx, chain in enumerate(chains)
        ]
        self.num_shards = len(self.shards)
        self.ledger = ShardMemoryLedger(self.shards)
        self.chain = AggregateLockChain(
            [shard.chain for shard in self.shards], self.ledger
        )
        self._cond = _AllShardConds([shard._cond for shard in self.shards])
        #: Session-lifecycle counters; request counters live in the
        #: shards (see :meth:`aggregate_stats`).
        self.stats = ServiceStats()
        self._slock = threading.Lock()
        self._sessions: Dict[int, _Session] = {}
        self._app_ids = itertools.count(1)
        self._closed = False
        self.frozen_reason: Optional[str] = None
        #: Same contract as :attr:`LockService.borrow_return`: invoked
        #: once at :meth:`close` to return in-flight borrows to overflow.
        self.borrow_return = None

    # -- introspection -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def session_count(self) -> int:
        """Open sessions across the whole service (feeds minLockMemory)."""
        return len(self._sessions)

    def waiting_sessions(self) -> Set[int]:
        waiting: Set[int] = set()
        for shard in self.shards:
            waiting |= shard.waiting_sessions()
        return waiting

    def check_invariants(self) -> None:
        """Every shard's accounting, plus the adoption index."""
        with self._cond:
            for shard in self.shards:
                shard.check_invariants()
            for app_id, entry in list(self._sessions.items()):
                for idx in entry.shard_ids:
                    if app_id not in self.shards[idx]._sessions:
                        raise ServiceError(
                            f"session {app_id} routed to shard {idx} "
                            "but the shard never adopted it"
                        )

    def snapshot_report(self, max_resources: int = 20) -> str:
        sections = []
        for idx, shard in enumerate(self.shards):
            sections.append(f"-- shard {idx} --")
            sections.append(shard.snapshot_report(max_resources))
        return "\n".join(sections)

    def aggregate_stats(self) -> ServiceStats:
        """Point-in-time service counters summed over the shards.

        Session counters come from this facade (sessions are global and
        never counted by the shards -- adoption is deliberately
        invisible to shard stats); request counters sum.
        """
        total = ServiceStats(
            sessions_opened=self.stats.sessions_opened,
            sessions_closed=self.stats.sessions_closed,
            peak_sessions=self.stats.peak_sessions,
        )
        for shard in self.shards:
            total.requests += shard.stats.requests
            total.granted += shard.stats.granted
            total.timeouts += shard.stats.timeouts
            total.cancellations += shard.stats.cancellations
            total.failures += shard.stats.failures
        return total

    def manager_stats(self) -> LockManagerStats:
        """Merged lock-manager counters (snapshot, not a live view)."""
        return LockManagerStats.merged(
            [shard.manager.stats for shard in self.shards]
        )

    # -- session lifecycle -------------------------------------------------

    def open_session(self) -> int:
        with self._slock:
            if self._closed:
                raise ServiceClosedError("lock service is closed")
            app_id = next(self._app_ids)
            self._sessions[app_id] = _Session()
            self.stats.sessions_opened += 1
            if len(self._sessions) > self.stats.peak_sessions:
                self.stats.peak_sessions = len(self._sessions)
            return app_id

    def close_session(self, app_id: int) -> int:
        """Release the session's locks in every adopted shard."""
        entry = self._sessions.get(app_id)
        if entry is None:
            raise ServiceError(f"session {app_id} is not open")
        if not entry.lock.acquire(blocking=False):
            raise ServiceError(
                f"session {app_id} still has a request in flight"
            )
        # The lock is never released: the session is retiring, and
        # holding it fails any late request racing the close.
        freed = 0
        for idx in sorted(entry.shard_ids):
            freed += self.shards[idx].close_session(app_id)
        with self._slock:
            del self._sessions[app_id]
            self.stats.sessions_closed += 1
        return freed

    @contextmanager
    def session(self) -> Iterator[int]:
        app_id = self.open_session()
        try:
            yield app_id
        finally:
            self.close_session(app_id)

    # -- routing -----------------------------------------------------------

    def _route(self, app_id: int, table_id: int) -> Tuple[_Session, LockService]:
        entry = self._sessions.get(app_id)
        if entry is None:
            raise ServiceError(f"session {app_id} is not open")
        if not entry.lock.acquire(blocking=False):
            raise ServiceError(
                f"session {app_id} already has a request in flight"
            )
        try:
            idx = table_id % self.num_shards
            shard = self.shards[idx]
            if idx not in entry.shard_ids:
                shard.adopt_session(app_id)
                entry.shard_ids = entry.shard_ids + (idx,)
        except BaseException:
            entry.lock.release()
            raise
        return entry, shard

    # -- locking API -------------------------------------------------------

    def lock_row(
        self,
        app_id: int,
        table_id: int,
        row_id: int,
        mode: LockMode,
        timeout_s: object = _USE_DEFAULT,
    ) -> None:
        """Route to the owning shard; semantics of
        :meth:`LockService.lock_row`."""
        # Inlined _route plus the shard's uncontended fast path: the
        # facade has validated the session and holds its in-flight
        # lock, so the shard can skip its own registry re-checks.
        entry = self._sessions.get(app_id)
        if entry is None:
            raise ServiceError(f"session {app_id} is not open")
        if not entry.lock.acquire(blocking=False):
            raise ServiceError(
                f"session {app_id} already has a request in flight"
            )
        try:
            idx = table_id % self.num_shards
            shard = self.shards[idx]
            if idx not in entry.shard_ids:
                shard.adopt_session(app_id)
                entry.shard_ids = entry.shard_ids + (idx,)
            if not shard.lock_row_uncontended(
                app_id, table_id, row_id, mode, timeout_s
            ):
                shard.lock_row(app_id, table_id, row_id, mode, timeout_s)
        finally:
            entry.lock.release()

    def lock_table(
        self,
        app_id: int,
        table_id: int,
        mode: LockMode,
        timeout_s: object = _USE_DEFAULT,
    ) -> None:
        entry, shard = self._route(app_id, table_id)
        try:
            shard.lock_table(app_id, table_id, mode, timeout_s)
        finally:
            entry.lock.release()

    def rollback(self, app_id: int) -> int:
        """Release the session's locks everywhere, keeping the session."""
        entry = self._sessions.get(app_id)
        if entry is None:
            raise ServiceError(f"session {app_id} is not open")
        freed = 0
        for idx in sorted(entry.shard_ids):
            freed += self.shards[idx].rollback(app_id)
        return freed

    def release_read_lock(self, app_id: int, table_id: int, row_id: int) -> bool:
        entry = self._sessions.get(app_id)
        if entry is None:
            raise ServiceError(f"session {app_id} is not open")
        idx = table_id % self.num_shards
        if idx not in entry.shard_ids:
            return False  # never locked anything there
        return self.shards[idx].release_read_lock(app_id, table_id, row_id)

    def cancel(self, app_id: int, message: str = "cancelled") -> bool:
        """Withdraw a pending wait, wherever it is parked.

        A session waits in at most one shard (one-in-flight is global),
        so the first shard that confirms the cancel is the only one
        that ever will.
        """
        entry = self._sessions.get(app_id)
        if entry is None:
            return False
        for idx in sorted(entry.shard_ids):
            if self.shards[idx].cancel(app_id, message):
                return True
        return False

    # -- tuning hooks ------------------------------------------------------

    def refresh_all_maxlocks(self) -> None:
        """Push the (aggregate-derived) MAXLOCKS fraction to every shard.

        Wired as the controller's ``on_resize``; the caller (tuner pass
        or shutdown reclaim) holds every shard condition.
        """
        for shard in self.shards:
            shard.manager.refresh_maxlocks()

    def freeze_tuning(self, reason: str) -> None:
        """Degrade every shard to the static-LOCKLIST configuration."""
        with self._cond:
            if self.frozen_reason is not None:
                return
            self.frozen_reason = reason
            for shard in self.shards:
                shard.freeze_tuning(reason)

    # -- shutdown ----------------------------------------------------------

    def close(self) -> None:
        """Close every shard, then return in-flight borrows to overflow.

        Ordering matters exactly as in the unsharded close: cancelling
        the shards' pending waits first frees their structures, so the
        borrow-return hook sees every reclaimable block.
        """
        with self._slock:
            if self._closed:
                return
            self._closed = True
        with self._cond:
            for shard in self.shards:
                shard.close()
            if self.borrow_return is not None:
                self.borrow_return()

    def __repr__(self) -> str:
        return (
            f"ShardedLockService(shards={self.num_shards}, "
            f"sessions={len(self._sessions)}, chain={self.chain!r})"
        )


class ShardedDeadlockDetector:
    """Wall-clock sweep for cycles that span shards.

    Shard-local cycles cannot exist (each shard keeps the manager's
    immediate detection), so every cycle in the merged wait-for graph
    crosses a shard boundary.  The sweep holds all shard conditions,
    merges the per-shard graphs (:func:`merge_wait_graphs` -- which
    also audits the one-wait-per-session invariant), and victimizes by
    **global** lock footprint from the ledger, ties broken by lowest
    application id -- the same pure-function-of-membership contract as
    the single-manager detector.

    Degraded mode: if the sweep thread dies (``crash`` is set), tuning
    is *not* frozen -- lock memory management is unaffected -- but
    cross-shard cycles then persist until a participant's request
    deadline or LOCKTIMEOUT resolves them.  The CLI surfaces ``crash``
    at shutdown.
    """

    def __init__(
        self, service: ShardedLockService, *, interval_s: float = 0.25
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.service = service
        self.interval_s = interval_s
        self.stats = DetectorStats()
        self.crash: Optional[BaseException] = None
        #: Optional per-shard repro.obs.incidents.IncidentRecorder list;
        #: a victimized cycle is then captured with full forensics on
        #: the victim's shard.
        self.incidents: Optional[List[IncidentRecorder]] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            raise ServiceError("deadlock sweep already started")
        self._thread = threading.Thread(
            target=self._run, name="deadlock-sweep", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.check()
            except Exception as exc:  # degraded mode, see class docstring
                self.crash = exc
                return

    def check(self) -> int:
        """One cross-shard sweep; returns the number of victims."""
        service = self.service
        # Idle short-circuit, read WITHOUT the shard conditions: a
        # sweep that takes every condition stalls all request threads,
        # and at sub-second intervals almost every sweep finds nobody
        # waiting.  The dirty read can only delay detection: a cycle's
        # waiters stay in their shards' wait maps until a victim is
        # rolled back, so the next sweep (one interval later) sees
        # them -- the same bound DLCHKTIME already implies.
        if not any(shard.manager.has_waiters() for shard in service.shards):
            self.stats.checks += 1
            return 0
        with service._cond:
            self.stats.checks += 1
            # Per-shard graphs must be built against the GLOBAL waiting
            # set: a blocker idle in one shard may be the waiter whose
            # edge closes the cycle in another.
            waiting: Set[int] = set()
            for shard in service.shards:
                waiting |= shard.manager.waiting_apps()
            graphs = []
            owner: Dict[int, int] = {}
            for idx, shard in enumerate(service.shards):
                graph = build_wait_for_graph(shard.manager, waiting)
                for app_id in graph:
                    owner[app_id] = idx
                graphs.append(graph)
            merged = merge_wait_graphs(graphs)
            victims = 0
            for cycle in find_cycles_in_graph(merged):
                self.stats.cycles_found += 1
                victim = min(
                    cycle, key=lambda app: (service.ledger.app_slots(app), app)
                )
                shard = service.shards[owner[victim]]
                # Snapshot the contended resource before cancel_wait
                # removes the victim from the wait map.
                waiting_entry = shard.manager._waiting_on.get(victim)
                resource = (
                    waiting_entry[0].resource
                    if waiting_entry is not None
                    else ""
                )
                cancelled = shard.manager.cancel_wait(
                    victim,
                    DeadlockError(
                        f"cross-shard deadlock: app {victim} chosen as "
                        f"victim of cycle {cycle}"
                    ),
                )
                if cancelled:
                    self.stats.victims.append(victim)
                    shard.manager.stats.deadlocks += 1
                    victims += 1
                    if self.incidents is not None:
                        self.incidents[owner[victim]].record_deadlock(
                            shard.manager,
                            victim,
                            resource,
                            list(cycle),
                            f"cross-shard sweep: victim by smallest global "
                            f"footprint among cycle {sorted(cycle)}",
                        )
            return victims


class ShardedServiceStack:
    """A fully wired sharded service: shards below, one STMM loop above.

    Mirrors :class:`~repro.service.stack.ServiceStack` wiring exactly
    -- same memory registry layout, same controller, same adaptive
    MAXLOCKS, same STMM and tuner daemon -- with the aggregate chain
    standing in for the single chain and the per-shard growth
    providers funnelling synchronous borrows through one growth lock.
    """

    def __init__(
        self,
        config: Optional[ShardedServiceConfig] = None,
        *,
        clock: Optional[Clock] = None,
    ) -> None:
        cfg = config or ShardedServiceConfig()
        self.config = cfg
        self.clock = clock or MonotonicClock()
        self.metrics: Optional[MetricRegistry] = (
            MetricRegistry() if cfg.telemetry else None
        )
        self.registry = build_memory_registry(cfg)

        locklist_blocks = (
            round_pages_to_blocks(cfg.initial_locklist_pages) // PAGES_PER_BLOCK
        )
        # Round-robin initial split: early shards take the remainder.
        base, extra = divmod(locklist_blocks, cfg.shards)
        chains = [
            LockBlockChain(initial_blocks=base + (1 if i < extra else 0))
            for i in range(cfg.shards)
        ]
        self.service = ShardedLockService(
            chains,
            clock=self.clock,
            default_timeout_s=cfg.default_timeout_s,
            lock_timeout_s=cfg.lock_timeout_s,
            metrics=self.metrics,
        )
        self.ledger = self.service.ledger
        self.chain = self.service.chain

        self.controller = LockMemoryController(
            registry=self.registry,
            chain=self.chain,
            params=cfg.params,
            num_applications=self.service.session_count,
            escalation_count=self.ledger.total_escalations,
            clock=self.clock.now,
        )
        self.maxlocks = AdaptiveMaxlocks(
            params=cfg.params,
            allocated_pages=lambda: self.chain.allocated_pages,
            max_lock_memory_pages=self.controller.max_lock_memory_pages,
        )
        # Synchronous borrows from any shard funnel through one lock:
        # the registry is not thread-safe, and the ledger must see the
        # borrow attributed before another shard reads the split.
        self._growth_lock = threading.Lock()
        for idx, shard in enumerate(self.service.shards):
            manager = shard.manager
            manager.growth_provider = self._make_growth_provider(idx)
            manager.maxlocks_provider = self.maxlocks.fraction
            manager.refresh_period = cfg.params.refresh_period_requests
            manager.refresh_maxlocks()
        self.controller.on_resize = self.service.refresh_all_maxlocks
        self.service.borrow_return = self.controller.reclaim_transient_blocks

        stmm_cfg = cfg.stmm
        if cfg.broker and stmm_cfg.pmc_rebalance_fraction:
            # Mirror ServiceStack: PMC movement is the broker's job.
            stmm_cfg = dataclasses.replace(stmm_cfg, pmc_rebalance_fraction=0.0)
        self.stmm = Stmm(self.registry, stmm_cfg)
        self.stmm.register_deterministic_tuner(self.controller)
        self.tuner = TunerDaemon(
            self.service,
            self.stmm,
            interval_override_s=cfg.tuner_interval_s,
            metrics=self.metrics,
            controller=self.controller,
            audit_capacity=cfg.audit_capacity,
        )
        self.detector = ShardedDeadlockDetector(
            self.service, interval_s=cfg.deadlock_interval_s
        )
        self.admission = AdmissionController(
            cfg.max_in_flight,
            cfg.admission_queue_depth,
            clock=self.clock,
        )
        self.broker = None
        if cfg.broker:
            self.broker = build_broker(
                cfg,
                self.registry,
                self.admission,
                used_pages=self.controller.used_pages,
                escalations=self.ledger.total_escalations,
                metrics=self.metrics,
            )
            self.tuner.broker = self.broker
        if cfg.span_sample_every > 0 and self.metrics is not None:
            for idx, shard in enumerate(self.service.shards):
                shard.span_sampler = RequestSpanSampler(
                    cfg.span_sample_every,
                    self.clock.now,
                    registry=self.metrics,
                    labels={"shard": str(idx)},
                )
        # Incident forensics: one shared ring, one recorder per shard
        # (immediate in-shard deadlocks and escalations), plus the
        # cross-shard sweep's victim captures and the tuner's freeze.
        self.incidents = IncidentLog(capacity=cfg.incident_capacity)
        recorders = [
            IncidentRecorder(self.incidents, shard=idx, audit=self.tuner.audit)
            for idx in range(cfg.shards)
        ]
        for idx, shard in enumerate(self.service.shards):
            shard.manager.incidents = recorders[idx]
        self.detector.incidents = recorders
        self.tuner.incidents = recorders[0]
        #: One wait profiler per shard (``{"shard": N}``-labeled series
        #: for lock waits and latch stats) plus an unlabeled profiler
        #: for the stack-level admission gate.
        self.wait_profilers: List[WaitEventProfiler] = []
        if cfg.wait_profile:
            for idx, shard in enumerate(self.service.shards):
                profiler = WaitEventProfiler(
                    self.clock,
                    registry=self.metrics,
                    labels={"shard": str(idx)},
                    capacity=cfg.wait_ring_capacity,
                )
                shard.manager.wait_profiler = profiler
                shard.env.latch_profiler = profiler
                self.wait_profilers.append(profiler)
            admission_profiler = WaitEventProfiler(
                self.clock,
                registry=self.metrics,
                capacity=cfg.wait_ring_capacity,
            )
            self.admission.wait_profiler = admission_profiler
            self.wait_profilers.append(admission_profiler)
        self.ops: Optional[OpsServer] = None
        if cfg.ops_port is not None:
            assert self.metrics is not None  # enforced by the config
            self.ops = OpsServer(
                self.metrics,
                health=self.ops_health,
                stmm_status=self.ops_stmm,
                refresh=self.publish_ops_metrics,
                incidents=self.ops_incidents,
                port=cfg.ops_port,
            )
        self._started = False

    def _make_growth_provider(self, shard_idx: int):
        def grow(blocks_wanted: int) -> int:
            with self._growth_lock:
                granted = self.controller.sync_grow(blocks_wanted)
                if granted:
                    self.ledger.record_sync_borrow(shard_idx, granted)
                return granted

        return grow

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ShardedServiceStack":
        if self._started:
            raise ConfigurationError("service stack already started")
        self._started = True
        self.tuner.start()
        self.detector.start()
        if self.ops is not None:
            self.ops.start()
        return self

    def stop(self) -> None:
        if self.ops is not None:
            self.ops.stop()
        self.tuner.stop()
        self.detector.stop()
        self.admission.close()
        self.service.close()

    def __enter__(self) -> "ShardedServiceStack":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- reporting ---------------------------------------------------------

    @property
    def manager_stats(self) -> LockManagerStats:
        return self.service.manager_stats()

    # -- the ops plane -----------------------------------------------------

    def publish_ops_metrics(self) -> None:
        """Refresh the point-in-time gauges, per shard and aggregate.

        Called before every ``/metrics`` render; counters update on the
        hot paths, but occupancy/queue-depth readings are state, not
        events, and must be read at scrape time.
        """
        if self.metrics is None:
            return
        reg = self.metrics
        for occ in self.ledger.occupancy():
            labels = {"shard": str(occ.shard)}
            reg.gauge("shard.used_slots", labels=labels).set(
                float(occ.used_slots)
            )
            reg.gauge("shard.capacity_slots", labels=labels).set(
                float(occ.capacity_slots)
            )
            reg.gauge("shard.free_fraction", labels=labels).set(
                occ.free_fraction
            )
            reg.gauge("shard.borrowed_blocks", labels=labels).set(
                float(occ.borrowed_blocks)
            )
        for idx, shard in enumerate(self.service.shards):
            labels = {"shard": str(idx)}
            stats = shard.manager.stats
            reg.gauge("shard.escalations", labels=labels).set(
                float(stats.escalations.count)
            )
            reg.gauge("shard.waiters", labels=labels).set(
                float(len(shard.manager.waiting_apps()))
            )
        reg.gauge("service.locklist_pages").set(
            float(self.chain.allocated_pages)
        )
        reg.gauge("service.locklist_used_slots").set(
            float(self.chain.used_slots)
        )
        reg.gauge("service.locklist_free_fraction").set(
            self.chain.free_fraction()
        )
        reg.gauge("service.maxlocks_fraction").set(self.maxlocks.fraction())
        reg.gauge("service.sessions").set(float(self.service.session_count()))
        reg.gauge("service.escalations").set(
            float(self.ledger.total_escalations())
        )
        reg.gauge("service.admission.in_flight").set(
            float(self.admission.in_flight())
        )
        reg.gauge("service.admission.queue_depth").set(
            float(self.admission.queue_depth())
        )
        if self.broker is not None:
            self.broker.publish_metrics()
        for prof in self.wait_profilers:
            latch = prof.latch
            labels = prof.labels
            reg.gauge("latch.gets", labels=labels).set(float(latch.gets))
            reg.gauge("latch.misses", labels=labels).set(float(latch.misses))
            reg.gauge("latch.spins", labels=labels).set(float(latch.spins))
            reg.gauge("latch.sleeps", labels=labels).set(float(latch.sleeps))
            reg.gauge("latch.sleep_seconds", labels=labels).set(
                latch.sleep_time_s
            )

    def ops_health(self) -> dict:
        """The ``/healthz`` body; ``ok`` decides 200 vs 503."""
        tuner = self.tuner
        service = self.service
        return {
            "ok": not tuner.frozen and not service.closed,
            "service": "sharded-lock-service",
            "shards": service.num_shards,
            "closed": service.closed,
            "sessions": service.session_count(),
            "shard_status": [
                {"shard": idx, "open": not shard.closed}
                for idx, shard in enumerate(service.shards)
            ],
            "detector": {
                "alive": self.detector._thread is not None
                and self.detector._thread.is_alive(),
                "crash": (
                    None
                    if self.detector.crash is None
                    else str(self.detector.crash)
                ),
            },
            "tuner": {
                "alive": tuner.alive,
                "frozen": tuner.frozen,
                "intervals": tuner.intervals_run,
                "crash": None if tuner.crash is None else str(tuner.crash),
                "frozen_reason": service.frozen_reason,
            },
        }

    def ops_stmm(self) -> dict:
        """The ``/stmm`` body: audit trail + current memory posture."""
        spans: List[dict] = []
        for shard in self.service.shards:
            sampler = shard.span_sampler
            if sampler is not None:
                spans.extend(sampler.finished_dicts(limit=16))
        return {
            "audit": self.tuner.audit.to_dicts(),
            "audit_total": self.tuner.audit.total_recorded,
            "intervals": self.tuner.intervals_run,
            "locklist_pages": self.chain.allocated_pages,
            "locklist_free_fraction": self.chain.free_fraction(),
            "maxlocks_fraction": self.maxlocks.fraction(),
            "overflow_pages": self.registry.overflow_pages,
            "frozen_reason": self.service.frozen_reason,
            "params": controller_params(self.config, self.tuner),
            "incident_total": self.incidents.total_recorded,
            "wait_classes": wait_class_payload(self.wait_profilers),
            "spans": spans,
            "broker": (
                None if self.broker is None else self.broker.status()
            ),
        }

    def ops_incidents(self) -> dict:
        """The ``/incidents`` body: the forensics ring, oldest first."""
        return {
            "total": self.incidents.total_recorded,
            "counts": self.incidents.kind_counts(),
            "incidents": self.incidents.to_dicts(),
        }

    # -- consistency -------------------------------------------------------

    def check_invariants(self) -> None:
        """Aggregate accounting across every shard and the registry.

        Holds all shard conditions (via the service's own check) so a
        synchronous grow in flight on some shard cannot be observed
        half-applied.
        """
        self.service.check_invariants()
        with self.service._cond:
            self.controller.check_consistency()
            self.registry.overflow_pages

    def thread_count(self) -> int:
        """Live stack-owned threads (tuner + deadlock sweep)."""
        owned = {
            getattr(self.tuner, "_thread", None),
            getattr(self.detector, "_thread", None),
        }
        return sum(
            1 for t in threading.enumerate() if t in owned and t.is_alive()
        )
