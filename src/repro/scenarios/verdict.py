"""Machine-checkable per-scenario verdicts.

The verdict vocabulary (see ``docs/SCENARIOS.md``):

``pass``
    Every check held and the scenario did not expect degradation.
``expected-degraded``
    Every check held *and* the scenario declared it would degrade
    (chaos injections, exhaustion regimes): the documented degraded
    posture -- frozen static LOCKLIST, /healthz 503, shed admission --
    was reached, which is the success condition for those scenarios.
``fail``
    At least one check did not hold: accounting leaked, completeness
    broke, a declared degradation never materialized, or throughput
    fell out of the baseline envelope.

Checks are individually recorded so a failing matrix names the exact
assertion that broke, per scenario, in both text and JSON reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

PASS = "pass"
EXPECTED_DEGRADED = "expected-degraded"
FAIL = "fail"

#: Every status a verdict can carry, in display order.
STATUSES = (PASS, EXPECTED_DEGRADED, FAIL)


@dataclass(frozen=True)
class Check:
    """One named assertion evaluated against a finished scenario."""

    #: Short kebab-case name (``accounting-exact``, ``healthz-503``...).
    name: str
    #: Whether the assertion held.
    ok: bool
    #: Human-readable evidence (counts, reasons) either way.
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for result.json / matrix.json."""
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass
class ScenarioVerdict:
    """The machine-checkable outcome of one scenario run."""

    #: One of :data:`STATUSES`.
    status: str
    #: Every check evaluated, passing and failing alike.
    checks: List[Check] = field(default_factory=list)
    #: Whether the scenario declared it would degrade (chaos lane).
    expect_degraded: bool = False

    @property
    def ok(self) -> bool:
        """True unless the verdict is ``fail``."""
        return self.status != FAIL

    @property
    def failed_checks(self) -> List[Check]:
        """The checks that did not hold."""
        return [check for check in self.checks if not check.ok]

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for result.json / matrix.json."""
        return {
            "status": self.status,
            "expect_degraded": self.expect_degraded,
            "checks": [check.to_dict() for check in self.checks],
        }

    @classmethod
    def from_checks(
        cls, checks: List[Check], *, expect_degraded: bool = False
    ) -> "ScenarioVerdict":
        """Fold a check list into a verdict.

        All checks holding yields ``pass`` -- or ``expected-degraded``
        when the scenario declared degradation up front (for those, the
        degraded posture itself is one of the checks, so a chaos run
        that *failed to degrade* fails instead of passing quietly).
        """
        if any(not check.ok for check in checks):
            status = FAIL
        elif expect_degraded:
            status = EXPECTED_DEGRADED
        else:
            status = PASS
        return cls(
            status=status, checks=list(checks), expect_degraded=expect_degraded
        )


def check(name: str, ok: bool, detail: str = "") -> Check:
    """Sugar for building a :class:`Check` (keeps call sites short)."""
    return Check(name=name, ok=bool(ok), detail=detail)


def verdict_from_dict(record: Dict[str, Any]) -> ScenarioVerdict:
    """Rehydrate a verdict saved by :meth:`ScenarioVerdict.to_dict`."""
    checks = [
        Check(
            name=str(entry.get("name", "?")),
            ok=bool(entry.get("ok")),
            detail=str(entry.get("detail", "")),
        )
        for entry in record.get("checks", [])
    ]
    status = str(record.get("status", FAIL))
    if status not in STATUSES:
        status = FAIL
    return ScenarioVerdict(
        status=status,
        checks=checks,
        expect_degraded=bool(record.get("expect_degraded")),
    )


def summarize_statuses(statuses: List[str]) -> Dict[str, int]:
    """Count verdict statuses for the matrix footer (stable order)."""
    counts: Dict[str, int] = {status: 0 for status in STATUSES}
    for status in statuses:
        counts[status] = counts.get(status, 0) + 1
    return {status: count for status, count in counts.items() if count}


__all__ = [
    "PASS",
    "EXPECTED_DEGRADED",
    "FAIL",
    "STATUSES",
    "Check",
    "ScenarioVerdict",
    "check",
    "verdict_from_dict",
    "summarize_statuses",
]
