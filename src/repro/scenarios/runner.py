"""Execute scenario grids: batch runs, result folders, verdict tables.

Two scenario kinds share the verdict machinery:

``service``
    A closed-loop threaded load (:class:`repro.service.driver.
    LoadDriver`) against a live stack -- unsharded, sharded or the
    multi-process worker pool, per the scenario's ``shards``/``workers``
    toggles -- under a named contention regime from
    :data:`repro.workloads.contention.REGIMES`, optionally with a
    long-running DSS tenant pinning locks beside the OLTP load and/or
    one armed chaos injection (:mod:`repro.service.chaos`).
``replay``
    A deterministic DES run: a synthetic demand trace
    (:data:`repro.workloads.contention.TRACES`) replayed through
    :class:`repro.workloads.replay.LockDemandReplay` while a
    :class:`repro.service.capture.DemandTraceRecorder` on the virtual
    clock re-captures what the tuner saw.  Same seed in, byte-identical
    ``result.json`` out.

Each scenario lands in its own result folder (``NNN-slug-idprefix``)
holding ``result.json``; a matrix run adds ``matrix.json`` plus a
text/JSON verdict table where every scenario must come out ``pass`` or
``expected-degraded``.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.core.params import TuningParameters
from repro.scenarios.grid import ScenarioGrid, ScenarioSpec
from repro.scenarios.verdict import (
    FAIL,
    STATUSES,
    Check,
    ScenarioVerdict,
    check,
    summarize_statuses,
)

#: result.json / matrix.json schema version.
SCHEMA_VERSION = 1


@dataclass
class ScenarioResult:
    """One executed scenario: spec, verdict and recorded metrics."""

    spec: ScenarioSpec
    verdict: ScenarioVerdict
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Absolute result folder path when the run persisted one.
    folder: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """The result.json payload (deterministic for replay runs)."""
        return {
            "schema": SCHEMA_VERSION,
            "scenario": self.spec.to_dict(),
            "verdict": self.verdict.to_dict(),
            "metrics": self.metrics,
        }


# ---------------------------------------------------------------------------
# service scenarios
# ---------------------------------------------------------------------------

class _DssTenant:
    """A long-running DSS tenant: pins S locks beside the OLTP load.

    Models Figure 11's reporting query -- one session acquiring a large
    row-lock footprint on its own table and sitting on it while the
    OLTP threads churn, so the tuner must size for OLTP churn *plus* a
    standing DSS demand floor.
    """

    def __init__(self, service, locks: int, table_id: int = 9_000) -> None:
        self.service = service
        self.locks = locks
        self.table_id = table_id
        self.acquired = 0
        self.error: Optional[str] = None
        #: Set once the acquisition loop has finished (target reached or
        #: lock list full) -- i.e. the standing footprint is in place.
        self.saturated = threading.Event()
        self._release = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="dss-tenant", daemon=True
        )

    def start(self) -> "_DssTenant":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._release.set()
        self._thread.join(30.0)

    def wait_saturated(self, timeout_s: float = 30.0) -> bool:
        """Block until the footprint is fully pinned (or timeout).

        Scenarios that *assert on* the tenant's pressure (the overflow
        chaos lane) wait here before teardown so the outcome never
        races the OLTP driver finishing first.
        """
        return self.saturated.wait(timeout_s)

    def _run(self) -> None:
        from repro.lockmgr.manager import (
            DeadlockError,
            LockListFullError,
            LockTimeoutError,
        )
        from repro.lockmgr.modes import LockMode

        try:
            with self.service.session() as app_id:
                for row in range(self.locks):
                    if self._release.is_set():
                        break
                    try:
                        self.service.lock_row(
                            app_id,
                            self.table_id,
                            row,
                            LockMode.S,
                            timeout_s=5.0,
                        )
                        self.acquired += 1
                    except (DeadlockError, LockTimeoutError):
                        continue  # a row can be skipped; footprint matters
                    except LockListFullError:
                        break  # memory pressure: hold what we have
                self.saturated.set()
                self._release.wait()
                # session exit releases the whole footprint at once
        except Exception as exc:  # noqa: BLE001 - surfaced in metrics
            self.error = f"{type(exc).__name__}: {exc}"
        finally:
            self.saturated.set()  # never leave a waiter hanging


def _build_service_stack(params: Mapping[str, Any]):
    """A started-able stack per the scenario's shape toggles."""
    from repro.service.sharded import ShardedServiceConfig, ShardedServiceStack
    from repro.service.stack import ServiceConfig, ServiceStack

    threads = int(params.get("threads", 4))
    common = dict(
        total_memory_pages=int(params.get("memory_pages", 16_384)),
        initial_locklist_pages=int(params.get("locklist_pages", 128)),
        tuner_interval_s=float(params.get("tuner_interval_s", 0.05)),
        max_in_flight=max(4, threads),
        admission_queue_depth=4 * max(4, threads),
        params=TuningParameters(),
        broker=bool(params.get("broker", False)),
    )
    shards = int(params.get("shards", 0))
    if shards > 0:
        return ShardedServiceStack(
            ShardedServiceConfig(
                shards=shards,
                deadlock_interval_s=float(
                    params.get("deadlock_interval_s", 0.02)
                ),
                **common,
            )
        )
    return ServiceStack(ServiceConfig(**common))


def _build_pool(params: Mapping[str, Any]):
    """The multi-process worker pool for ``workers >= 1`` scenarios."""
    from repro.service.workers import WorkerPoolConfig, WorkerPoolStack

    threads = int(params.get("threads", 4))
    return WorkerPoolStack(
        WorkerPoolConfig(
            total_memory_pages=int(params.get("memory_pages", 16_384)),
            initial_locklist_pages=int(params.get("locklist_pages", 128)),
            tuner_interval_s=float(params.get("tuner_interval_s", 0.05)),
            max_in_flight=max(4, threads),
            admission_queue_depth=4 * max(4, threads),
            params=TuningParameters(),
            workers=int(params["workers"]),
            trace_sample_every=int(params.get("trace_sample_every", 0)),
        )
    )


def _chaos_thread(injection, stack, warm_requests: int) -> threading.Thread:
    """Arm ``injection`` to fire once the stack has served some load."""
    from repro.service.chaos import wait_until_warm

    def fire() -> None:
        wait_until_warm(stack, min_requests=warm_requests)
        injection.inject(stack)

    thread = threading.Thread(target=fire, name="chaos", daemon=True)
    thread.start()
    return thread


def _service_checks(
    spec: ScenarioSpec, report, skip: frozenset
) -> List[Check]:
    """The standard service-scenario checks, minus chaos exemptions."""
    params = spec.params
    checks: List[Check] = []
    expected = int(params.get("threads", 4)) * int(
        params.get("requests_per_thread", 200)
    )
    if "completeness" not in skip:
        checks.append(
            check(
                "completeness",
                report.lock_requests >= expected,
                f"{report.lock_requests}/{expected} lock requests",
            )
        )
    if "worker-errors" not in skip:
        checks.append(
            check(
                "worker-errors",
                not report.worker_errors,
                "; ".join(report.worker_errors[:3]) or "none",
            )
        )
    if "admission-sheds" not in skip:
        allowed = int(params.get("allow_sheds", 0))
        checks.append(
            check(
                "admission-sheds",
                report.admission_sheds <= allowed,
                f"{report.admission_sheds} sheds (allowed {allowed})",
            )
        )
    return checks


def _stack_accounting_checks(stack, skip: frozenset) -> List[Check]:
    """Exact-accounting and liveness checks for in-process stacks."""
    checks: List[Check] = []
    if "accounting-exact" not in skip:
        leaked = stack.chain.used_slots
        heap = stack.registry.heap("locklist").size_pages
        invariant_error = ""
        try:
            stack.check_invariants()
        except Exception as exc:  # noqa: BLE001 - folded into the verdict
            invariant_error = f"{type(exc).__name__}: {exc}"
        checks.append(
            check(
                "accounting-exact",
                leaked == 0
                and heap == stack.chain.allocated_pages
                and not invariant_error,
                f"leaked={leaked}, heap={heap}p vs chain="
                f"{stack.chain.allocated_pages}p"
                + (f", invariants: {invariant_error}" if invariant_error else ""),
            )
        )
    if "tuner-healthy" not in skip:
        detector = getattr(stack, "detector", None)
        detector_crash = getattr(detector, "crash", None)
        checks.append(
            check(
                "tuner-healthy",
                stack.tuner.crash is None
                and stack.service.frozen_reason is None
                and detector_crash is None,
                f"tuner crash={stack.tuner.crash!r}, "
                f"frozen={stack.service.frozen_reason!r}",
            )
        )
    return checks


def _pool_accounting_checks(pool, skip: frozenset) -> List[Check]:
    """Reconciliation and liveness checks for the worker pool."""
    checks: List[Check] = []
    if "pool-reconciliation" not in skip:
        rec = pool.reconciliation
        invariant_error = ""
        try:
            pool.check_invariants()
        except Exception as exc:  # noqa: BLE001 - folded into the verdict
            invariant_error = f"{type(exc).__name__}: {exc}"
        checks.append(
            check(
                "pool-reconciliation",
                rec is not None and rec.ok and not invariant_error,
                f"reconciliation={rec!r}"
                + (f", invariants: {invariant_error}" if invariant_error else ""),
            )
        )
    if "pool-healthy" not in skip:
        checks.append(
            check(
                "pool-healthy",
                pool.frozen_reason is None
                and pool.tuner.crash is None
                and pool.detector.crash is None,
                f"frozen={pool.frozen_reason!r}, "
                f"tuner crash={pool.tuner.crash!r}",
            )
        )
    return checks


def _trace_ring_summary(stack) -> Dict[str, Any]:
    """The run's distributed-trace posture for result.json.

    Counts only (no timings), so the record stays stable across hosts:
    how many requests were sampled, how many round trips finished, how
    many finished traces fell off the bounded rings, and how many the
    rings still held at shutdown.  All zeros with ``enabled: false``
    when the scenario ran untraced (the default -- grids opt in via a
    ``trace_sample_every`` param).
    """
    every = int(getattr(stack.config, "trace_sample_every", 0) or 0)
    summary = {
        "enabled": every > 0,
        "sample_every": every,
        "sampled": 0,
        "finished": 0,
        "truncated": 0,
        "held": 0,
    }
    for tracer in getattr(stack, "request_tracers", []) or []:
        counts = tracer.summary()
        summary["sampled"] += counts["started"]
        summary["finished"] += counts["finished"]
        summary["truncated"] += counts["truncated"]
        summary["held"] += len(tracer.to_dicts())
    return summary


def _service_metrics(stack, report, dss: Optional[_DssTenant]) -> Dict[str, Any]:
    metrics: Dict[str, Any] = dict(report.summary())
    stats = stack.manager_stats
    metrics.update(
        {
            "escalations": stats.escalations.count,
            "sync_growth_blocks": stats.sync_growth_blocks,
            "allocated_pages": stack.chain.allocated_pages,
            "block_count": stack.chain.block_count,
            "peak_used_slots": stats.peak_used_slots,
            "tuner_intervals": stack.tuner.intervals_run,
            "frozen_reason": stack.service.frozen_reason,
            "trace_ring": _trace_ring_summary(stack),
        }
    )
    if dss is not None:
        metrics["dss_locks_acquired"] = dss.acquired
        if dss.error:
            metrics["dss_error"] = dss.error
    return metrics


def _run_service_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Drive one threaded service scenario (any stack shape)."""
    from repro.service.chaos import build_chaos
    from repro.service.driver import LoadDriver
    from repro.workloads.contention import build_regime

    params = spec.params
    mix = build_regime(str(params.get("regime", "uniform")))
    injection = build_chaos(spec.chaos) if spec.chaos else None
    skip = injection.skip_checks if injection else frozenset()
    warm = int(params.get("chaos_warm_requests", 50))
    if int(params.get("workers", 0)) > 0:
        return _run_pool_scenario(spec, mix, injection, skip, warm)

    stack = _build_service_stack(params)
    dss: Optional[_DssTenant] = None
    chaos_runner: Optional[threading.Thread] = None
    with stack:
        dss_locks = int(params.get("dss_locks", 0))
        if dss_locks > 0:
            dss = _DssTenant(stack.service, dss_locks).start()
        if injection is not None:
            chaos_runner = _chaos_thread(injection, stack, warm)
        driver = LoadDriver(
            stack,
            mix=mix,
            threads=int(params.get("threads", 4)),
            requests_per_thread=int(params.get("requests_per_thread", 200)),
            seed=int(params.get("seed", 0)),
        )
        report = driver.run()
        if chaos_runner is not None:
            chaos_runner.join(60.0)
        if dss is not None:
            dss.wait_saturated(30.0)
            dss.stop()
    checks = _service_checks(spec, report, skip)
    checks.extend(_stack_accounting_checks(stack, skip))
    if injection is not None:
        checks.extend(injection.verify(stack, report))
    verdict = ScenarioVerdict.from_checks(
        checks,
        expect_degraded=injection.expect_degraded if injection else False,
    )
    return ScenarioResult(
        spec=spec, verdict=verdict, metrics=_service_metrics(stack, report, dss)
    )


def _run_pool_scenario(
    spec: ScenarioSpec, mix, injection, skip: frozenset, warm: int
) -> ScenarioResult:
    """The worker-pool flavor: load over the wire, chaos may SIGKILL."""
    from repro.service.driver import LoadDriver

    params = spec.params
    pool = _build_pool(params)
    chaos_runner: Optional[threading.Thread] = None
    with pool:
        if injection is not None:
            chaos_runner = _chaos_thread(injection, pool, warm)
        with pool.client_stack(pool_size=1) as client:
            driver = LoadDriver(
                client,
                mix=mix,
                threads=int(params.get("threads", 4)),
                requests_per_thread=int(
                    params.get("requests_per_thread", 200)
                ),
                seed=int(params.get("seed", 0)),
            )
            report = driver.run()
        if chaos_runner is not None:
            chaos_runner.join(60.0)
    checks = _service_checks(spec, report, skip)
    checks.extend(_pool_accounting_checks(pool, skip))
    if injection is not None:
        checks.extend(injection.verify(pool, report))
    verdict = ScenarioVerdict.from_checks(
        checks,
        expect_degraded=injection.expect_degraded if injection else False,
    )
    metrics: Dict[str, Any] = dict(report.summary())
    metrics.update(
        {
            "workers": pool.config.workers,
            "worker_crashes": pool.worker_crashes,
            "allocated_pages": pool.chain.allocated_pages,
            "tuner_intervals": pool.tuner.intervals_run,
            "frozen_reason": pool.frozen_reason,
            "trace_ring": _trace_ring_summary(pool),
        }
    )
    return ScenarioResult(spec=spec, verdict=verdict, metrics=metrics)


# ---------------------------------------------------------------------------
# replay scenarios
# ---------------------------------------------------------------------------

def _run_replay_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Deterministic DES replay of a synthetic demand trace."""
    from repro.engine.database import Database, DatabaseConfig
    from repro.service.capture import DemandTraceRecorder
    from repro.service.clock import VirtualClock
    from repro.workloads.contention import build_trace
    from repro.workloads.replay import LockDemandReplay

    params = spec.params
    trace = build_trace(
        str(params.get("trace", "diurnal")),
        **dict(params.get("trace_params", {})),
    )
    batch_size = int(params.get("batch_size", 256))
    db = Database(
        seed=int(params.get("seed", 0)),
        config=DatabaseConfig(
            total_memory_pages=int(params.get("memory_pages", 16_384)),
            initial_locklist_pages=int(params.get("locklist_pages", 128)),
        ),
    )
    recorder = DemandTraceRecorder(
        db.chain,
        clock=VirtualClock(db.env),
        period_s=float(params.get("sample_period_s", 0.5)),
    )
    replay = LockDemandReplay(db, trace, batch_size=batch_size)
    replay.start()

    def sampler():
        while True:
            yield db.env.timeout(recorder.period_s)
            recorder.sample_now()

    db.env.process(sampler())
    db.run(until=trace[-1][0] + 1.0)

    captured = recorder.to_trace()
    peak_target = max(target for _, target in trace)
    achieved_peak = max((used for _, used in captured), default=0)
    invariant_error = ""
    try:
        db.check_invariants()
    except Exception as exc:  # noqa: BLE001 - folded into the verdict
        invariant_error = f"{type(exc).__name__}: {exc}"

    max_shortfalls = int(params.get("max_shortfalls", 0))
    checks = [
        check(
            "replay-complete",
            replay.shortfalls <= max_shortfalls,
            f"{replay.shortfalls} shortfalls (allowed {max_shortfalls})",
        ),
        check(
            "peak-tracked",
            achieved_peak >= peak_target - batch_size,
            f"achieved {achieved_peak} of target peak {peak_target} "
            f"(batch {batch_size})",
        ),
        check(
            "accounting-exact",
            not invariant_error,
            invariant_error or "database invariants hold",
        ),
    ]
    verdict = ScenarioVerdict.from_checks(checks, expect_degraded=False)
    metrics = {
        "trace_points": len(trace),
        "peak_target": peak_target,
        "achieved_peak": achieved_peak,
        "samples": len(captured),
        "shortfalls": replay.shortfalls,
        "escalations": db.lock_manager.stats.escalations.count,
        "final_locklist_pages": db.chain.allocated_pages,
        "final_held_locks": replay.held_locks,
    }
    return ScenarioResult(spec=spec, verdict=verdict, metrics=metrics)


# ---------------------------------------------------------------------------
# dispatch, envelopes, persistence
# ---------------------------------------------------------------------------

def _apply_baseline_envelope(
    result: ScenarioResult, baseline: Optional[Mapping[str, Any]]
) -> None:
    """Fold the throughput-envelope check in when a baseline matches.

    ``baseline`` is a loaded matrix.json; a scenario is compared
    against the entry with its ID.  Without a baseline (or without a
    matching entry / metric) no check is added -- the envelope is an
    opt-in gate, not a default one.
    """
    if not baseline:
        return
    entries = {
        record["scenario"]["id"]: record
        for record in baseline.get("results", [])
        if "scenario" in record
    }
    entry = entries.get(result.spec.scenario_id)
    if entry is None:
        return
    base_rps = entry.get("metrics", {}).get("requests_per_s")
    ours = result.metrics.get("requests_per_s")
    if not base_rps or ours is None:
        return
    ratio = float(result.spec.params.get("envelope_ratio", 0.5))
    floor = base_rps * ratio
    result.verdict.checks.append(
        check(
            "throughput-envelope",
            ours >= floor,
            f"{ours:.0f} req/s vs baseline {base_rps:.0f} "
            f"(floor {floor:.0f} at ratio {ratio})",
        )
    )
    if ours < floor and result.verdict.status != FAIL:
        result.verdict.status = FAIL


def run_scenario(
    spec: ScenarioSpec,
    out_dir: Optional[str] = None,
    baseline: Optional[Mapping[str, Any]] = None,
) -> ScenarioResult:
    """Run one scenario; optionally persist its result folder.

    Unexpected exceptions become a failing ``run-crashed`` check
    rather than aborting the whole matrix.
    """
    try:
        if spec.kind == "replay":
            result = _run_replay_scenario(spec)
        elif spec.kind == "service":
            result = _run_service_scenario(spec)
        else:
            raise ValueError(f"unknown scenario kind {spec.kind!r}")
    except Exception as exc:  # noqa: BLE001 - recorded as a failure
        result = ScenarioResult(
            spec=spec,
            verdict=ScenarioVerdict.from_checks(
                [
                    check(
                        "run-crashed",
                        False,
                        f"{type(exc).__name__}: {exc}",
                    )
                ]
            ),
        )
    _apply_baseline_envelope(result, baseline)
    if out_dir is not None:
        folder = os.path.join(out_dir, spec.folder)
        os.makedirs(folder, exist_ok=True)
        path = os.path.join(folder, "result.json")
        with open(path, "w", encoding="utf-8") as fp:
            json.dump(result.to_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")
        result.folder = folder
    return result


@dataclass
class MatrixReport:
    """An executed grid: ordered results plus the verdict table."""

    grid: ScenarioGrid
    results: List[ScenarioResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every scenario passed or degraded as expected."""
        return all(result.verdict.ok for result in self.results)

    @property
    def status_counts(self) -> Dict[str, int]:
        return summarize_statuses(
            [result.verdict.status for result in self.results]
        )

    def to_dict(self) -> Dict[str, Any]:
        """The matrix.json payload (no wall timestamps: reproducible)."""
        return {
            "schema": SCHEMA_VERSION,
            "grid": self.grid.to_dict(),
            "status_counts": self.status_counts,
            "ok": self.ok,
            "results": [result.to_dict() for result in self.results],
        }

    def render_table(self) -> str:
        """The human verdict table (same data as the JSON form)."""
        return render_verdict_table(self.to_dict())


def render_verdict_table(matrix: Mapping[str, Any]) -> str:
    """Render a matrix.json payload as the text verdict table."""
    lines = []
    grid = matrix.get("grid", {})
    lines.append(
        f"scenario matrix: grid {grid.get('name', '?')!r}, "
        f"{len(matrix.get('results', []))} scenarios"
    )
    header = (
        f"  {'idx':>3} {'id':<12} {'kind':<7} {'scenario':<40} "
        f"{'status':<17} notes"
    )
    lines.append(header)
    for record in matrix.get("results", []):
        scenario = record.get("scenario", {})
        verdict = record.get("verdict", {})
        status = verdict.get("status", "?")
        failed = [
            entry["name"]
            for entry in verdict.get("checks", [])
            if not entry.get("ok")
        ]
        if failed:
            notes = "FAILED: " + ", ".join(failed)
        elif scenario.get("params", {}).get("chaos"):
            notes = f"chaos={scenario['params']['chaos']}"
        else:
            notes = ""
        lines.append(
            f"  {scenario.get('index', 0):>3} "
            f"{scenario.get('id', '?'):<12} "
            f"{scenario.get('kind', '?'):<7} "
            f"{scenario.get('slug', '?'):<40} "
            f"{status:<17} {notes}".rstrip()
        )
    counts = matrix.get("status_counts", {})
    # matrix.json is written sort_keys=True, so re-impose display order.
    ordered = sorted(
        counts.items(),
        key=lambda kv: STATUSES.index(kv[0]) if kv[0] in STATUSES else 99,
    )
    summary = ", ".join(f"{count} {status}" for status, count in ordered)
    lines.append(
        f"  => {summary or 'no scenarios'}"
        f" ({'OK' if matrix.get('ok') else 'FAILING'})"
    )
    return "\n".join(lines)


def run_matrix(
    grid: ScenarioGrid,
    out_dir: Optional[str] = None,
    baseline: Optional[Mapping[str, Any]] = None,
    echo: Optional[Callable[[str], None]] = None,
) -> MatrixReport:
    """Expand and run a whole grid; persist matrix.json under out_dir.

    ``echo`` (e.g. ``print``) receives one progress line per scenario.
    """
    grid_dir: Optional[str] = None
    if out_dir is not None:
        grid_dir = os.path.join(out_dir, grid.name)
        os.makedirs(grid_dir, exist_ok=True)
    report = MatrixReport(grid=grid)
    for spec in grid.expand():
        result = run_scenario(spec, out_dir=grid_dir, baseline=baseline)
        report.results.append(result)
        if echo is not None:
            echo(
                f"[{spec.index + 1}/{len(grid)}] {spec.folder}: "
                f"{result.verdict.status}"
            )
    if grid_dir is not None:
        path = os.path.join(grid_dir, "matrix.json")
        with open(path, "w", encoding="utf-8") as fp:
            json.dump(report.to_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")
    return report


def load_matrix(path: str) -> Dict[str, Any]:
    """Load a matrix.json written by :func:`run_matrix`."""
    with open(path, "r", encoding="utf-8") as fp:
        return json.load(fp)
