"""Scenario matrix engine: declarative grids, batch runs, verdicts.

The repo's multi-scenario grading harness (ISSUE 9): named config
grids expand -- deterministically, hash-seed-free -- into batches of
service-stress and demand-replay scenarios, each of which lands in its
own result folder with a machine-checkable verdict (``pass`` /
``expected-degraded`` / ``fail``).  See ``docs/SCENARIOS.md`` for the
grid syntax, the verdict vocabulary and the chaos lane.

* :mod:`repro.scenarios.grid` -- :class:`ScenarioGrid` expansion and
  deterministic scenario IDs,
* :mod:`repro.scenarios.verdict` -- checks and the verdict vocabulary,
* :mod:`repro.scenarios.runner` -- scenario execution, result folders,
  matrix reports and the verdict table,
* :mod:`repro.scenarios.grids` -- the named grids (``standard``,
  ``mini``).
"""

from repro.scenarios.grid import (
    ScenarioGrid,
    ScenarioSpec,
    canonical_json,
    make_slug,
    scenario_id,
)
from repro.scenarios.grids import GRIDS, build_grid, grid_names
from repro.scenarios.runner import (
    MatrixReport,
    ScenarioResult,
    load_matrix,
    render_verdict_table,
    run_matrix,
    run_scenario,
)
from repro.scenarios.verdict import (
    EXPECTED_DEGRADED,
    FAIL,
    PASS,
    STATUSES,
    Check,
    ScenarioVerdict,
    summarize_statuses,
    verdict_from_dict,
)

__all__ = [
    "ScenarioGrid",
    "ScenarioSpec",
    "canonical_json",
    "make_slug",
    "scenario_id",
    "GRIDS",
    "build_grid",
    "grid_names",
    "MatrixReport",
    "ScenarioResult",
    "load_matrix",
    "render_verdict_table",
    "run_matrix",
    "run_scenario",
    "EXPECTED_DEGRADED",
    "FAIL",
    "PASS",
    "STATUSES",
    "Check",
    "ScenarioVerdict",
    "summarize_statuses",
    "verdict_from_dict",
]
