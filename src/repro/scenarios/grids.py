"""The named scenario grids the CLI and CI run.

``standard``
    The full 16-scenario matrix: four Thomasian contention regimes
    (uniform / hot-page skew / write-heavy / update-heavy mode mixes)
    crossed with sharding on/off, plus a DSS-tenant-beside-OLTP
    scenario, a broker-arbitrated run, diurnal and flash-crowd demand
    replays, and the four-injection chaos lane (tuner crash, shard
    stall, worker SIGKILL, overflow exhaustion).
``mini``
    The 6-scenario CI smoke (``make matrix-smoke``): two regimes, a
    sharded mode-mix run, the DSS tenant, one replay and one chaos
    scenario -- every code path of the engine in well under a minute,
    with no timing gates.

Grids are data: JSON-serializable base/axes/extras, so scenario IDs
derived from them are stable across processes and hash seeds.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.scenarios.grid import ScenarioGrid


def standard_grid() -> ScenarioGrid:
    """The full contention-regime x topology matrix plus chaos lane."""
    base = {
        "kind": "service",
        "regime": "uniform",
        "threads": 4,
        "requests_per_thread": 400,
        "seed": 7,
        "memory_pages": 16_384,
        "locklist_pages": 128,
        "tuner_interval_s": 0.05,
        "shards": 0,
        "workers": 0,
        "broker": False,
        "dss_locks": 0,
        "chaos": None,
        "allow_sheds": 0,
    }
    axes = {
        "regime": ["uniform", "hot_page", "write_heavy", "update_heavy"],
        "shards": [0, 4],
    }
    extras = [
        {"label": "dss-beside-oltp", "regime": "hot_page", "dss_locks": 3_000},
        {"label": "broker-arbitrated", "broker": True, "memory_pages": 8_192},
        {
            "label": "replay-diurnal",
            "kind": "replay",
            "trace": "diurnal",
            "batch_size": 256,
            "seed": 7,
        },
        {
            "label": "replay-flash-crowd",
            "kind": "replay",
            "trace": "flash_crowd",
            "batch_size": 256,
            "seed": 7,
        },
        {
            "label": "chaos-tuner-crash",
            "chaos": "tuner-crash",
            "requests_per_thread": 600,
        },
        {"label": "chaos-shard-stall", "chaos": "shard-stall", "shards": 4},
        {
            # The DSS pin (20k locks) exceeds the hard lock-memory cap
            # (20% of 1024 pages = 7 blocks = 14,336 slots), so pressure
            # relief -- escalation or full rollback -- is guaranteed.
            "label": "chaos-overflow",
            "chaos": "overflow-exhaustion",
            "regime": "lock_hungry",
            "memory_pages": 1_024,
            "locklist_pages": 32,
            "dss_locks": 20_000,
        },
        {
            "label": "chaos-worker-sigkill",
            "chaos": "worker-sigkill",
            "workers": 2,
            "requests_per_thread": 300,
        },
    ]
    return ScenarioGrid("standard", base=base, axes=axes, extras=extras)


def mini_grid() -> ScenarioGrid:
    """The 6-scenario CI smoke grid (one chaos scenario included)."""
    base = {
        "kind": "service",
        "regime": "uniform",
        "threads": 3,
        "requests_per_thread": 150,
        "seed": 11,
        "memory_pages": 16_384,
        "locklist_pages": 128,
        "tuner_interval_s": 0.05,
        "shards": 0,
        "workers": 0,
        "broker": False,
        "dss_locks": 0,
        "chaos": None,
        "allow_sheds": 0,
    }
    axes = {"regime": ["uniform", "hot_page"]}
    extras = [
        {
            "label": "sharded-write-heavy",
            "regime": "write_heavy",
            "shards": 2,
        },
        {"label": "dss-beside-oltp", "regime": "hot_page", "dss_locks": 1_000},
        {
            "label": "replay-flash-crowd",
            "kind": "replay",
            "trace": "flash_crowd",
            "batch_size": 256,
            "seed": 11,
        },
        {
            "label": "chaos-tuner-crash",
            "chaos": "tuner-crash",
            "requests_per_thread": 250,
        },
    ]
    return ScenarioGrid("mini", base=base, axes=axes, extras=extras)


#: Named grid registry: name -> zero-arg factory.
GRIDS: Dict[str, Callable[[], ScenarioGrid]] = {
    "standard": standard_grid,
    "mini": mini_grid,
}


def grid_names() -> List[str]:
    """The available named grids, sorted."""
    return sorted(GRIDS)


def build_grid(name: str) -> ScenarioGrid:
    """Instantiate a named grid; unknown names raise."""
    try:
        factory = GRIDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario grid {name!r}; choose from {grid_names()}"
        ) from None
    return factory()
