"""Declarative scenario grids with deterministic, hash-seed-free IDs.

A :class:`ScenarioGrid` is a named cartesian product over workload
knobs plus explicit extra scenarios; :meth:`ScenarioGrid.expand` turns
it into an ordered list of :class:`ScenarioSpec` instances.  Two
properties are load-bearing:

* **Deterministic IDs.**  A scenario's identity is the SHA-256 of the
  canonical JSON of ``(grid name, params)`` -- sorted keys, compact
  separators -- so the same grid expands to byte-identical IDs in any
  process, under any ``PYTHONHASHSEED``, on any platform.  Result
  folders and baseline comparisons key on these IDs.
* **Collision-free folders.**  Each spec's result folder combines its
  grid index, a human-readable slug and an ID prefix; expansion
  refuses duplicate params outright, so folder names cannot collide.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError

#: Hex digits of the SHA-256 kept as the scenario ID.
ID_HEX_DIGITS = 12
#: ID digits embedded in result folder names (after index + slug).
FOLDER_ID_DIGITS = 8
#: Slug length bound (folder names must stay filesystem-friendly).
SLUG_MAX_CHARS = 48


def canonical_json(value: Any) -> str:
    """Canonical JSON: sorted keys, compact separators, ASCII only.

    The single serialization scenario IDs are derived from -- any
    change here changes every scenario ID, so treat it as frozen.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def scenario_id(grid_name: str, params: Mapping[str, Any]) -> str:
    """The deterministic ID of ``params`` within grid ``grid_name``."""
    payload = canonical_json({"grid": grid_name, "params": dict(params)})
    digest = hashlib.sha256(payload.encode("ascii")).hexdigest()
    return digest[:ID_HEX_DIGITS]


def _slug_fragment(value: Any) -> str:
    """A filesystem-safe fragment for one param value."""
    text = str(value).lower()
    text = re.sub(r"[^a-z0-9]+", "-", text).strip("-")
    return text or "x"


def make_slug(
    params: Mapping[str, Any], keys: Sequence[str]
) -> str:
    """Human-readable slug from the varying params (label wins)."""
    label = params.get("label")
    if label:
        slug = _slug_fragment(label)
    else:
        parts = [
            f"{_slug_fragment(key)}-{_slug_fragment(params[key])}"
            for key in keys
            if key in params
        ]
        slug = "-".join(parts) or "scenario"
    return slug[:SLUG_MAX_CHARS].rstrip("-")


@dataclass(frozen=True)
class ScenarioSpec:
    """One expanded scenario: a grid slot plus its full param set."""

    #: Name of the grid this scenario came from.
    grid: str
    #: Position within the expansion (also the folder prefix).
    index: int
    #: The complete parameter set the runner executes.
    params: Dict[str, Any] = field(compare=False)
    #: Deterministic identity (see :func:`scenario_id`).
    scenario_id: str = ""
    #: Human-readable fragment of the folder name.
    slug: str = "scenario"

    @property
    def folder(self) -> str:
        """Result folder name: ``NNN-slug-idprefix`` (collision-free)."""
        return (
            f"{self.index:03d}-{self.slug}-"
            f"{self.scenario_id[:FOLDER_ID_DIGITS]}"
        )

    @property
    def kind(self) -> str:
        """Scenario kind: ``service`` (threaded stack) or ``replay``."""
        return str(self.params.get("kind", "service"))

    @property
    def chaos(self) -> Optional[str]:
        """Name of the armed chaos injection, if any."""
        value = self.params.get("chaos")
        return str(value) if value else None

    def to_dict(self) -> Dict[str, Any]:
        """JSON form recorded into every result folder."""
        return {
            "grid": self.grid,
            "index": self.index,
            "id": self.scenario_id,
            "slug": self.slug,
            "folder": self.folder,
            "kind": self.kind,
            "params": dict(self.params),
        }


def _check_json_value(name: str, value: Any) -> None:
    """Grid values must round-trip through JSON (IDs depend on it)."""
    try:
        canonical_json(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"grid value {name}={value!r} is not JSON-serializable"
        ) from exc


class ScenarioGrid:
    """A named config grid: base params x axes, plus explicit extras.

    Parameters
    ----------
    name:
        Grid name; part of every scenario's identity.
    base:
        Params shared by every scenario (axes and extras override).
    axes:
        Mapping of param name to the list of values it sweeps; the
        expansion is the cartesian product in axis-insertion order
        (last axis varies fastest).
    extras:
        Explicit param overlays appended after the product -- chaos
        scenarios, replay scenarios, odd-shaped one-offs.  Give each a
        ``label`` for a readable folder slug.
    """

    def __init__(
        self,
        name: str,
        base: Optional[Mapping[str, Any]] = None,
        axes: Optional[Mapping[str, Sequence[Any]]] = None,
        extras: Optional[Iterable[Mapping[str, Any]]] = None,
    ) -> None:
        if not name or not re.fullmatch(r"[A-Za-z0-9._-]+", name):
            raise ConfigurationError(
                f"grid name must be a simple identifier, got {name!r}"
            )
        self.name = name
        self.base = dict(base or {})
        self.axes: Dict[str, List[Any]] = {
            key: list(values) for key, values in (axes or {}).items()
        }
        self.extras = [dict(extra) for extra in (extras or [])]
        for key, value in self.base.items():
            _check_json_value(key, value)
        for key, values in self.axes.items():
            if not values:
                raise ConfigurationError(f"axis {key!r} has no values")
            for value in values:
                _check_json_value(key, value)
        for extra in self.extras:
            for key, value in extra.items():
                _check_json_value(key, value)

    def __len__(self) -> int:
        product = 1
        for values in self.axes.values():
            product *= len(values)
        return product + len(self.extras)

    def expand(self) -> List[ScenarioSpec]:
        """The ordered scenario list; refuses duplicate param sets."""
        axis_names = list(self.axes)
        param_sets: List[Dict[str, Any]] = []
        for combo in itertools.product(
            *(self.axes[name] for name in axis_names)
        ):
            params = dict(self.base)
            params.update(zip(axis_names, combo))
            param_sets.append(params)
        for extra in self.extras:
            params = dict(self.base)
            params.update(extra)
            param_sets.append(params)

        specs: List[ScenarioSpec] = []
        seen: Dict[str, int] = {}
        for index, params in enumerate(param_sets):
            sid = scenario_id(self.name, params)
            if sid in seen:
                raise ConfigurationError(
                    f"grid {self.name!r}: scenarios {seen[sid]} and "
                    f"{index} have identical params ({sid})"
                )
            seen[sid] = index
            varying = axis_names if index < len(param_sets) - len(
                self.extras
            ) else list(params)
            specs.append(
                ScenarioSpec(
                    grid=self.name,
                    index=index,
                    params=params,
                    scenario_id=sid,
                    slug=make_slug(params, varying),
                )
            )
        return specs

    def to_dict(self) -> Dict[str, Any]:
        """JSON form (recorded in matrix.json for provenance)."""
        return {
            "name": self.name,
            "base": dict(self.base),
            "axes": {key: list(values) for key, values in self.axes.items()},
            "extras": [dict(extra) for extra in self.extras],
            "scenarios": len(self),
        }
