"""Terminal rendering of time series.

The benchmarks print the reproduced figures directly to the terminal;
these helpers draw a :class:`~repro.engine.metrics.TimeSeries` (or a
pair sharing the time axis, like the paper's combined throughput/lock
memory plots) as a compact ASCII chart.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.metrics import TimeSeries


def _resample(series: TimeSeries, width: int) -> List[Optional[float]]:
    """Average the series into ``width`` equal time buckets."""
    if len(series) == 0:
        return [None] * width
    t0, t1 = series.times[0], series.times[-1]
    span = max(t1 - t0, 1e-12)
    sums = [0.0] * width
    counts = [0] * width
    for t, v in series:
        bucket = min(width - 1, int((t - t0) / span * width))
        sums[bucket] += v
        counts[bucket] += 1
    return [sums[i] / counts[i] if counts[i] else None for i in range(width)]


def _scale(values: List[Optional[float]]) -> Tuple[float, float]:
    present = [v for v in values if v is not None]
    if not present:
        return 0.0, 1.0
    lo, hi = min(present), max(present)
    if hi == lo:
        hi = lo + 1.0
    return lo, hi


def render_series(
    series: TimeSeries,
    width: int = 72,
    height: int = 14,
    title: Optional[str] = None,
    glyph: str = "*",
) -> str:
    """Render one series as an ASCII chart."""
    values = _resample(series, width)
    lo, hi = _scale(values)
    grid = [[" "] * width for _ in range(height)]
    for x, v in enumerate(values):
        if v is None:
            continue
        y = int((v - lo) / (hi - lo) * (height - 1))
        grid[height - 1 - y][x] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:>12,.1f} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 13 + "|" + "".join(row) + "|")
    lines.append(f"{lo:>12,.1f} +" + "-" * width + "+")
    if len(series) > 0:
        lines.append(
            " " * 14
            + f"t = {series.times[0]:,.0f}s"
            + " " * max(1, width - 24)
            + f"t = {series.times[-1]:,.0f}s"
        )
    return "\n".join(lines)


def render_two_series(
    series_a: TimeSeries,
    series_b: TimeSeries,
    width: int = 72,
    height: int = 14,
    title: Optional[str] = None,
    glyph_a: str = "*",
    glyph_b: str = "o",
) -> str:
    """Render two series on one chart, each normalized to its own range.

    Mirrors the paper's dual-axis figures (e.g. Figure 9's throughput
    plus lock memory).  ``series_a`` uses ``glyph_a`` and its scale is
    printed on the left; ``series_b`` is normalized independently and
    annotated in the legend.
    """
    values_a = _resample(series_a, width)
    values_b = _resample(series_b, width)
    lo_a, hi_a = _scale(values_a)
    lo_b, hi_b = _scale(values_b)
    grid = [[" "] * width for _ in range(height)]
    for x, v in enumerate(values_b):
        if v is None:
            continue
        y = int((v - lo_b) / (hi_b - lo_b) * (height - 1))
        grid[height - 1 - y][x] = glyph_b
    for x, v in enumerate(values_a):  # draw A second so it wins overlaps
        if v is None:
            continue
        y = int((v - lo_a) / (hi_a - lo_a) * (height - 1))
        grid[height - 1 - y][x] = glyph_a
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"  {glyph_a} {series_a.name}: {lo_a:,.1f}..{hi_a:,.1f}   "
        f"{glyph_b} {series_b.name}: {lo_b:,.1f}..{hi_b:,.1f}"
    )
    lines.append(" " * 13 + "+" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 13 + "|" + "".join(row) + "|")
    lines.append(" " * 13 + "+" + "-" * width + "+")
    ref = series_a if len(series_a) else series_b
    if len(ref) > 0:
        lines.append(
            " " * 14
            + f"t = {ref.times[0]:,.0f}s"
            + " " * max(1, width - 24)
            + f"t = {ref.times[-1]:,.0f}s"
        )
    return "\n".join(lines)
