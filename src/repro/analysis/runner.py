"""Command-line experiment runner.

Run any paper experiment from the shell::

    python -m repro.analysis.runner list
    python -m repro.analysis.runner fig9
    python -m repro.analysis.runner fig12 --csv out.csv
    python -m repro.analysis.runner all --out-dir results/
    python -m repro.analysis.runner fig9 --telemetry out.jsonl --report

Each run prints the experiment's findings (and an ASCII chart where the
figure has a natural time series) and can export the full metric series
to CSV for external plotting.  ``--telemetry PATH`` enables full
observability (lock trace + histograms) on every database the
experiment builds and writes one JSONL stream per run to PATH;
``--report`` prints the per-run summary (wait-latency percentiles,
escalations, controller decision log).  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis import scenarios
from repro.analysis.ascii_chart import render_series, render_two_series
from repro.analysis.experiment import ExperimentResult
from repro.analysis.report import RunReport, format_findings

def _run_fig7_static_only():
    """The Figure 7 view: the static run without the adaptive twin."""
    return scenarios.run_fig7_fig8_static_escalation(
        include_adaptive_reference=False
    )


#: Experiment id -> (runner, chart spec).  The chart spec names the
#: series to draw: one name for a single-series chart, two for the
#: dual charts the paper uses, None for table-style experiments.
EXPERIMENTS: Dict[str, Tuple[Callable[[], ExperimentResult], Optional[Tuple[str, ...]]]] = {
    "fig3": (scenarios.run_fig3_lock_queuing, None),
    "fig4": (scenarios.run_fig4_oracle_itl, None),
    "fig6": (
        scenarios.run_fig6_worked_example,
        ("lock_pages_pct", "lock_used_pct"),
    ),
    "fig7": (_run_fig7_static_only, ("lock_used_slots",)),
    "fig8": (
        scenarios.run_fig7_fig8_static_escalation,
        ("commits",),
    ),
    "fig9": (scenarios.run_fig9_rampup, ("commits", "lock_pages")),
    "fig10": (scenarios.run_fig10_surge, ("commits", "lock_pages")),
    "fig11": (scenarios.run_fig11_dss_injection, ("commits", "lock_pages")),
    "fig12": (scenarios.run_fig12_reduction, ("lock_pages",)),
    "baselines": (scenarios.run_baseline_comparison, None),
    "two-consumers": (scenarios.run_two_heavy_consumers, None),
    "ablation-delta": (scenarios.run_ablation_delta_reduce, None),
    "ablation-band": (scenarios.run_ablation_free_band, None),
    "ablation-maxlocks": (scenarios.run_ablation_maxlocks, None),
}


def render_result(result: ExperimentResult, chart_spec) -> str:
    """Findings plus (when applicable) the figure's ASCII chart."""
    parts = []
    if chart_spec is not None:
        series = [result.metrics[name] for name in chart_spec]
        if len(series) == 1:
            parts.append(render_series(series[0], title=result.name))
        else:
            first = series[0]
            if first.name == "commits":
                first = first.rate().smooth(5)
            parts.append(
                render_two_series(first, series[1], title=result.name)
            )
    parts.append(format_findings(result.findings))
    if result.notes:
        parts.append("\n".join(f"note: {n}" for n in result.notes))
    return "\n\n".join(parts)


def run_one(
    name: str,
    csv_path: Optional[str] = None,
    do_validate: bool = False,
    telemetry_path: Optional[str] = None,
    do_report: bool = False,
    microbench_path: Optional[str] = None,
) -> ExperimentResult:
    """Run one experiment by id, print its report, optionally dump CSV.

    With ``telemetry_path`` every database the experiment builds runs
    fully observed (lock trace + latency histograms) and the combined
    JSONL stream -- one run per database, readable back with
    :func:`repro.obs.load_runs` -- lands at that path.  ``do_report``
    prints a :class:`~repro.analysis.report.RunReport` per run;
    ``microbench_path`` names a ``benchmarks/perf`` result file
    (BENCH_CORE.json) whose wall-clock summary is appended to each
    report, putting this build's real-time cost next to the simulated-
    time metrics.
    """
    if name not in EXPERIMENTS:
        raise SystemExit(
            f"unknown experiment {name!r}; choose from: "
            f"{', '.join(sorted(EXPERIMENTS))}"
        )
    runner, chart_spec = EXPERIMENTS[name]
    observed: List[Tuple[str, object]] = []

    def observer(label: str, db) -> None:
        db.enable_telemetry()
        observed.append((label, db))

    if telemetry_path or do_report:
        with scenarios.observe_databases(observer):
            result = runner()
    else:
        result = runner()
    print(render_result(result, chart_spec))
    if do_validate:
        from repro.analysis.validation import render_outcomes, validate

        print("\npaper-shape validation:")
        print(render_outcomes(validate(name, result)))
    if csv_path:
        result.metrics.write_csv(csv_path)
        print(f"\n[metrics csv: {csv_path}]")
    if telemetry_path or do_report:
        if not observed:
            print(
                f"\n[no telemetry: experiment {name!r} builds no database]"
            )
        telemetries = [db.telemetry(label=label) for label, db in observed]
        if telemetry_path and telemetries:
            total = 0
            for i, telemetry in enumerate(telemetries):
                total += telemetry.write_jsonl(telemetry_path, append=i > 0)
            print(
                f"\n[telemetry jsonl: {telemetry_path} "
                f"({len(telemetries)} run(s), {total} records)]"
            )
        if do_report:
            bench_data = None
            if microbench_path:
                import json

                with open(microbench_path) as handle:
                    bench_data = json.load(handle)
            for telemetry in telemetries:
                report_obj = RunReport.from_telemetry(telemetry)
                if bench_data is not None:
                    report_obj.attach_microbench(bench_data)
                print()
                print(report_obj.render())
    return result


def _run_for_parallel(name: str) -> Tuple[str, str]:
    """Worker for ``all --parallel``: run one experiment, return its report.

    Module-level so it pickles; experiments are independent simulations
    (each builds its own Environment and seeds its own RNG), so farming
    them out across processes cannot change any result.
    """
    runner, chart_spec = EXPERIMENTS[name]
    result = runner()
    return name, render_result(result, chart_spec)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.runner",
        description="Run the paper-reproduction experiments.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id, 'list' to enumerate, or 'all'",
    )
    parser.add_argument("--csv", help="write the metric series to this CSV file")
    parser.add_argument(
        "--out-dir",
        help="with 'all': write one <experiment>.txt report per experiment here",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="also evaluate the paper's expected-shape checks",
    )
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        help="record full telemetry on every database the experiment "
        "builds and write the JSONL stream here (single experiments only)",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print a per-run telemetry report (wait-latency percentiles, "
        "escalations, controller decisions)",
    )
    parser.add_argument(
        "--microbench",
        metavar="PATH",
        help="with --report: include the wall-clock summary from this "
        "benchmarks/perf result file (e.g. BENCH_CORE.json)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="with 'all': run experiments across N worker processes "
        "(results and reports are printed in name order either way)",
    )
    args = parser.parse_args(argv)

    if (args.telemetry or args.report) and args.experiment in ("all", "list"):
        parser.error("--telemetry/--report need a single experiment id")
    if args.microbench and not args.report:
        parser.error("--microbench requires --report")
    if args.parallel < 1:
        parser.error("--parallel must be >= 1")
    if args.parallel > 1 and args.experiment != "all":
        parser.error("--parallel only applies to 'all'")

    if args.experiment == "list":
        for name, (runner, _spec) in sorted(EXPERIMENTS.items()):
            doc = (runner.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{name:<18} {summary}")
        return 0

    if args.experiment == "all":
        out_dir = args.out_dir
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        names = sorted(EXPERIMENTS)
        if args.parallel > 1:
            import multiprocessing

            workers = min(args.parallel, len(names))
            with multiprocessing.Pool(processes=workers) as pool:
                # imap (not imap_unordered) keeps name order, so output
                # is byte-identical to the sequential path.
                reports = pool.imap(_run_for_parallel, names)
                for name, report in reports:
                    print(f"=== {name} ===")
                    print(report)
                    print()
                    if out_dir:
                        path = os.path.join(out_dir, f"{name}.txt")
                        with open(path, "w") as handle:
                            handle.write(report)
            return 0
        for name in names:
            print(f"=== {name} ===")
            _name, report = _run_for_parallel(name)
            print(report)
            print()
            if out_dir:
                with open(os.path.join(out_dir, f"{name}.txt"), "w") as handle:
                    handle.write(report)
        return 0

    run_one(
        args.experiment,
        csv_path=args.csv,
        do_validate=args.validate,
        telemetry_path=args.telemetry,
        do_report=args.report,
        microbench_path=args.microbench,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
