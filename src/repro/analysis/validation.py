"""Declarative validation of experiment results against the paper.

Each experiment's expected *shape* -- the qualitative facts the paper's
figure conveys -- is expressed as a list of :class:`Expectation` checks
on the experiment's findings.  The benchmarks assert the same facts
with pytest; this module makes them data, so the CLI runner can print a
PASS/FAIL scorecard (``python -m repro.analysis.runner fig9
--validate``) and EXPERIMENTS.md stays mechanically honest.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.analysis.experiment import ExperimentResult

_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}


@dataclass(frozen=True)
class Expectation:
    """One check: ``finding <op> value`` (with optional tolerance)."""

    finding: str
    op: str
    value: Any
    #: For "~=": relative tolerance on numeric equality.
    tolerance: float = 0.0
    #: The paper statement this check encodes.
    paper_claim: str = ""

    def evaluate(self, result: ExperimentResult) -> "CheckOutcome":
        try:
            actual = result.finding(self.finding)
        except KeyError as exc:
            return CheckOutcome(self, actual=None, passed=False,
                                error=str(exc))
        if self.op == "~=":
            if not isinstance(actual, (int, float)):
                return CheckOutcome(self, actual, False,
                                    error="not numeric")
            reference = float(self.value)
            if reference == 0:
                passed = abs(float(actual)) <= self.tolerance
            else:
                passed = (
                    abs(float(actual) - reference)
                    <= abs(reference) * self.tolerance
                )
            return CheckOutcome(self, actual, passed)
        if self.op not in _OPS:
            raise ValueError(f"unknown operator {self.op!r}")
        return CheckOutcome(self, actual, _OPS[self.op](actual, self.value))


@dataclass
class CheckOutcome:
    """Result of evaluating one expectation."""

    expectation: Expectation
    actual: Any
    passed: bool
    error: str = ""

    def __str__(self) -> str:
        e = self.expectation
        status = "PASS" if self.passed else "FAIL"
        comparison = f"{e.finding} {e.op} {e.value}"
        if e.op == "~=":
            comparison += f" (tol {e.tolerance:.0%})"
        suffix = f" -- {e.paper_claim}" if e.paper_claim else ""
        detail = self.error if self.error else f"actual={self.actual}"
        return f"[{status}] {comparison:<48s} {detail}{suffix}"


#: The paper's shape criteria, one list per experiment id.
PAPER_EXPECTATIONS: Dict[str, List[Expectation]] = {
    "fig3": [
        Expectation("shared_S_grant", "==", True,
                    paper_claim="compatible S requests share one grant"),
        Expectation("fifo_respected", "==", True,
                    paper_claim="later S queues behind the X (post method)"),
    ],
    "fig4": [
        Expectation("blocked_on_free_rows", ">", 0,
                    paper_claim="ITL exhaustion = de facto page locking"),
        Expectation("row_conflicts", "==", 0),
        Expectation("tunable_memory_pages", "==", 0,
                    paper_claim="no dynamic allocation of lock memory"),
    ],
    "fig6": [
        Expectation("t1_absorbed_without_sync_growth", "==", True,
                    paper_claim="surge within free half needs no sync growth"),
        Expectation("t3_used_sync_growth", "==", True,
                    paper_claim="267% surge partly from overflow"),
        Expectation("t4_overflow_restored_pct", "~=", 10.0, tolerance=0.05,
                    paper_claim="overflow reclaimed to its goal"),
        Expectation("per_interval_shrink_fraction", "~=", 0.05, tolerance=0.4,
                    paper_claim="delta_reduce = 5% per interval"),
    ],
    "fig7": [
        Expectation("static_escalations", ">", 0,
                    paper_claim="under-allocation leads to escalation"),
        Expectation("static_used_drop_after_escalation", ">", 0,
                    paper_claim="escalation reduces lock memory use"),
    ],
    "fig8": [
        Expectation("static_exclusive_escalations", ">", 0),
        Expectation("adaptive_escalations", "==", 0),
        Expectation("adaptive_vs_static_commit_ratio", ">", 1.5,
                    paper_claim="throughput drops practically to zero"),
    ],
    "fig9": [
        Expectation("escalations", "==", 0,
                    paper_claim="no escalations during the 0->130 ramp"),
        Expectation("growth_factor", "~=", 10.5, tolerance=0.25,
                    paper_claim="lock memory increased by 10.5x"),
    ],
    "fig10": [
        Expectation("growth_ratio", "~=", 2.0, tolerance=0.15,
                    paper_claim="just more than double its allocation"),
        Expectation("adaptation_delay_s", "<=", 60,
                    paper_claim="practically instantaneous"),
        Expectation("escalations", "==", 0),
    ],
    "fig11": [
        Expectation("growth_factor", ">=", 15.0,
                    paper_claim="grows by tens of times (60x in the paper)"),
        Expectation("peak_fraction_of_database_memory", "~=", 0.10,
                    tolerance=0.5,
                    paper_claim="peak near 10% of database memory"),
        Expectation("exclusive_escalations", "==", 0,
                    paper_claim="no exclusive escalations observed"),
        Expectation("query_completed", "==", True),
    ],
    "fig12": [
        Expectation("reduction_ratio", "~=", 0.5, tolerance=0.25,
                    paper_claim="settles at approximately half"),
        Expectation("mean_per_interval_reduction", "~=", 0.05, tolerance=0.6,
                    paper_claim="roughly 5% per STMM interval"),
        Expectation("escalations", "==", 0),
    ],
}


def validate(experiment_id: str, result: ExperimentResult) -> List[CheckOutcome]:
    """Evaluate the paper's expectations for one experiment."""
    expectations = PAPER_EXPECTATIONS.get(experiment_id)
    if expectations is None:
        raise KeyError(
            f"no paper expectations for {experiment_id!r}; known: "
            f"{sorted(PAPER_EXPECTATIONS)}"
        )
    return [expectation.evaluate(result) for expectation in expectations]


def render_outcomes(outcomes: List[CheckOutcome]) -> str:
    passed = sum(1 for o in outcomes if o.passed)
    lines = [str(o) for o in outcomes]
    lines.append(f"{passed}/{len(outcomes)} paper-shape checks passed")
    return "\n".join(lines)
