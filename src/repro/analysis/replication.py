"""Replicated experiment runs: mean, spread and confidence intervals.

A single seeded run demonstrates a shape; claims about *magnitudes*
(growth factors, commit counts) deserve replication.  This module runs
a scenario across several seeds and aggregates its numeric findings:

    from repro.analysis.replication import replicate
    from repro.analysis.scenarios import run_fig10_surge

    summary = replicate(lambda seed: run_fig10_surge(seed=seed),
                        seeds=range(5))
    print(summary.report())
    ratio = summary.stat("growth_ratio")
    assert ratio.mean == pytest.approx(2.0, abs=0.2)

Confidence intervals use the normal approximation (t-quantiles hard-
coded for the small n typical here), which is plenty for shape checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List

from repro.analysis.experiment import ExperimentResult

#: Two-sided 95% t-quantiles by degrees of freedom (1..30).
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


@dataclass
class FindingStat:
    """Aggregate of one numeric finding across replications."""

    name: str
    values: List[float]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n

    @property
    def stddev(self) -> float:
        """Sample standard deviation (0 for a single replication)."""
        if self.n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (self.n - 1)
        )

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    def ci95(self) -> float:
        """Half-width of the 95 % confidence interval on the mean."""
        if self.n < 2:
            return 0.0
        t = _T95.get(self.n - 1, 1.96)
        return t * self.stddev / math.sqrt(self.n)

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.mean:,.3f} +/- {self.ci95():,.3f} "
            f"(n={self.n}, range {self.minimum:,.3f}..{self.maximum:,.3f})"
        )


@dataclass
class ReplicationSummary:
    """All replications of one scenario."""

    scenario: str
    results: List[ExperimentResult]
    stats: Dict[str, FindingStat] = field(default_factory=dict)

    def stat(self, name: str) -> FindingStat:
        if name not in self.stats:
            raise KeyError(
                f"no numeric finding {name!r}; available: {sorted(self.stats)}"
            )
        return self.stats[name]

    def consistent(self, name: str, predicate: Callable[[float], bool]) -> bool:
        """True when ``predicate`` holds for the finding in *every* run."""
        return all(predicate(v) for v in self.stat(name).values)

    def report(self) -> str:
        lines = [f"[{self.scenario}] {len(self.results)} replications"]
        for name in sorted(self.stats):
            lines.append(f"  {self.stats[name]}")
        return "\n".join(lines)


def replicate(
    scenario: Callable[[int], ExperimentResult],
    seeds: Iterable[int],
) -> ReplicationSummary:
    """Run ``scenario(seed)`` for every seed and aggregate findings.

    Only numeric (int/float, non-bool) findings are aggregated; booleans
    and strings are retained per-run in ``results``.
    """
    results = [scenario(seed) for seed in seeds]
    if not results:
        raise ValueError("at least one seed is required")
    summary = ReplicationSummary(scenario=results[0].name, results=results)
    numeric_keys = [
        key
        for key, value in results[0].findings.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    ]
    for key in numeric_keys:
        values = []
        for result in results:
            value = result.findings.get(key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                values.append(float(value))
        if len(values) == len(results):
            summary.stats[key] = FindingStat(key, values)
    return summary
