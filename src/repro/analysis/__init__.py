"""Experiment harness: scenario builders, results and reporting.

* :mod:`repro.analysis.experiment` -- the :class:`ExperimentResult`
  container every scenario returns,
* :mod:`repro.analysis.scenarios` -- one canonical builder per paper
  figure (3, 6, 7/8, 9, 10, 11, 12) plus the baseline comparison and
  ablation scenarios; benchmarks, examples and integration tests all
  share these,
* :mod:`repro.analysis.ascii_chart` -- terminal rendering of the
  recorded time series so benchmark output *looks like* the figures,
* :mod:`repro.analysis.report` -- tabular formatting helpers and the
  per-run :class:`RunReport` telemetry summary,
* :mod:`repro.analysis.contention` -- contention aggregates over lock
  traces,
* :mod:`repro.analysis.waitprofile` -- the offline wait-profile /
  forensics report over a recorded telemetry stream
  (``repro-service analyze``).
"""

from repro.analysis.ascii_chart import render_series, render_two_series
from repro.analysis.contention import ContentionReport, resource_timeline
from repro.analysis.experiment import ExperimentResult
from repro.analysis.report import RunReport, format_findings, format_table
from repro.analysis.waitprofile import (
    BlockerEntry,
    WaitProfileReport,
    analyze_run,
)

__all__ = [
    "BlockerEntry",
    "WaitProfileReport",
    "analyze_run",
    "render_series",
    "render_two_series",
    "ContentionReport",
    "resource_timeline",
    "ExperimentResult",
    "RunReport",
    "format_findings",
    "format_table",
]
