"""Tabular formatting helpers for benchmark and example output."""

from __future__ import annotations

from typing import Any, Dict, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], indent: int = 2
) -> str:
    """Render a simple aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    pad = " " * indent
    lines = [
        pad + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        pad + "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append(pad + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_findings(findings: Dict[str, Any], indent: int = 2) -> str:
    """Render a findings dict as aligned key/value lines."""
    pad = " " * indent
    width = max((len(k) for k in findings), default=0)
    lines = []
    for key in sorted(findings):
        lines.append(f"{pad}{key.ljust(width)}  {_fmt(findings[key])}")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:,.2f}"
    return str(value)
