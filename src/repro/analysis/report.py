"""Tabular formatting helpers and the per-run telemetry report.

Besides the generic table/findings formatters this module holds
:class:`RunReport`: a compact end-of-run snapshot (throughput, lock-wait
percentiles, escalations, controller decision log, final memory state)
built from a :class:`~repro.obs.events.RunTelemetry`, renderable as
aligned text or JSON.  The runner prints one per run when invoked with
``--report``.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import RunTelemetry


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], indent: int = 2
) -> str:
    """Render a simple aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    pad = " " * indent
    lines = [
        pad + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        pad + "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append(pad + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_findings(findings: Dict[str, Any], indent: int = 2) -> str:
    """Render a findings dict as aligned key/value lines."""
    pad = " " * indent
    width = max((len(k) for k in findings), default=0)
    lines = []
    for key in sorted(findings):
        lines.append(f"{pad}{key.ljust(width)}  {_fmt(findings[key])}")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:,.2f}"
    return str(value)


class RunReport:
    """End-of-run summary of one telemetry stream.

    Build with :meth:`from_telemetry`; render with :meth:`render`
    (aligned text) or :meth:`as_json` (a plain dict, JSON-dumpable).
    Works identically on live telemetry and on streams reloaded from
    JSONL, so reports can be regenerated entirely offline.
    """

    #: Histogram instruments summarized in the latency section.
    LATENCY_METRICS = (
        "lock.wait.latency_s",
        "lock.sync_growth.latency_s",
        "lock.escalation.scan_slots",
    )
    #: Decision-log lines shown by :meth:`render` (JSON keeps all).
    MAX_RENDERED_DECISIONS = 10

    def __init__(self, telemetry: "RunTelemetry") -> None:
        self.telemetry = telemetry
        self.microbench: Dict[str, Any] = {}

    @classmethod
    def from_telemetry(cls, telemetry: "RunTelemetry") -> "RunReport":
        return cls(telemetry)

    def attach_microbench(self, bench_data: Dict[str, Any]) -> "RunReport":
        """Attach a ``benchmarks/perf`` result file (BENCH_CORE.json).

        Accepts the dict produced by ``python -m benchmarks.perf.run``
        and puts a per-bench wall-clock summary alongside the simulated-
        time metrics, so one report answers both "what did the run do"
        and "what does this build cost in real time".  Returns ``self``
        for chaining.
        """
        benches = bench_data.get("benches", bench_data)
        summary = {}
        for name in sorted(benches):
            bench = benches[name]
            summary[name] = {
                "unit": bench.get("unit", "ops"),
                "ops": bench.get("ops", 0),
                "ops_per_s_median": bench.get("ops_per_s", {}).get("median"),
                "wall_s_p50": bench.get("wall_s", {}).get("p50"),
                "wall_s_p95": bench.get("wall_s", {}).get("p95"),
            }
        self.microbench = summary
        return self

    # -- accessors ------------------------------------------------------------

    def _counter(self, name: str) -> float:
        instrument = self.telemetry.registry.get(name)
        return getattr(instrument, "value", 0.0)

    def _gauge(self, name: str) -> float:
        return self._counter(name)  # both expose .value

    @property
    def duration_s(self) -> float:
        return self._gauge("run.duration_s") or self.telemetry.end_time()

    @property
    def throughput_tps(self) -> float:
        duration = self.duration_s
        return self._gauge("run.commits") / duration if duration else 0.0

    def latency_summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-histogram count/mean/min/max/p50/p95/p99 summaries."""
        from repro.obs.registry import Histogram

        summaries = {}
        for name in self.LATENCY_METRICS:
            instrument = self.telemetry.registry.get(name)
            if isinstance(instrument, Histogram):
                summaries[name] = instrument.summary()
        return summaries

    # -- output ---------------------------------------------------------------

    def as_json(self) -> Dict[str, Any]:
        """The full report as one JSON-serializable dict."""
        from dataclasses import asdict

        tel = self.telemetry
        return {
            "label": tel.label,
            "duration_s": self.duration_s,
            "throughput": {
                "commits": self._gauge("run.commits"),
                "rollbacks": self._gauge("run.rollbacks"),
                "commits_per_s": self.throughput_tps,
            },
            "locking": {
                "requests": self._counter("lock.requests"),
                "immediate_grants": self._counter("lock.grants.immediate"),
                "waits": self._counter("lock.waits"),
                "deadlocks": self._counter("lock.deadlocks"),
                "timeouts": self._counter("lock.timeouts"),
                "lock_list_full_errors": self._counter("lock.list_full_errors"),
                "wait_time_total_s": self._gauge("lock.wait.time_total_s"),
            },
            "escalations": {
                "count": self._counter("lock.escalations"),
                "exclusive": self._counter("lock.escalations.exclusive"),
                "failed": self._counter("lock.escalations.failed"),
            },
            "memory": {
                "final_allocated_pages": self._gauge("lock.final.allocated_pages"),
                "final_used_slots": self._gauge("lock.final.used_slots"),
                "final_maxlocks_fraction": self._gauge(
                    "lock.final.maxlocks_fraction"
                ),
                "sync_growth_blocks": self._counter(
                    "lock.sync_growth.blocks_total"
                ),
            },
            "latencies": self.latency_summaries(),
            "trace_event_counts": tel.event_counts(),
            "decisions": [asdict(d) for d in tel.decisions],
            "microbench": self.microbench,
        }

    def render(self) -> str:
        """The report as aligned, sectioned text."""
        data = self.as_json()
        lines: List[str] = [f"run report: {data['label']}"]

        def section(title: str, pairs: Dict[str, Any]) -> None:
            lines.append(f"\n{title}:")
            lines.append(format_findings(pairs))

        section(
            "throughput",
            {
                "duration_s": data["duration_s"],
                "commits": data["throughput"]["commits"],
                "rollbacks": data["throughput"]["rollbacks"],
                "commits_per_s": data["throughput"]["commits_per_s"],
            },
        )
        section("locking", data["locking"])
        section("escalations", data["escalations"])
        section("memory", data["memory"])
        for name, summary in data["latencies"].items():
            if summary.get("count", 0) == 0:
                section(name, {"count": 0, "note": "no observations"})
                continue
            section(
                name,
                {
                    "count": summary["count"],
                    "mean": summary["mean"],
                    "min": summary["min"],
                    "max": summary["max"],
                    "p50": summary["p50"],
                    "p95": summary["p95"],
                    "p99": summary["p99"],
                },
            )
        if data["trace_event_counts"]:
            section("trace events", data["trace_event_counts"])
        if data["microbench"]:
            lines.append("\nmicrobench (wall-clock, this build):")
            lines.append(
                format_table(
                    ["bench", "unit", "ops/s p50", "wall p50 ms", "wall p95 ms"],
                    [
                        [
                            name,
                            bench["unit"],
                            round(bench["ops_per_s_median"] or 0, 1),
                            round((bench["wall_s_p50"] or 0) * 1e3, 1),
                            round((bench["wall_s_p95"] or 0) * 1e3, 1),
                        ]
                        for name, bench in data["microbench"].items()
                    ],
                )
            )
        decisions = data["decisions"]
        lines.append(f"\ncontroller decisions: {len(decisions)}")
        if decisions:
            shown = decisions[-self.MAX_RENDERED_DECISIONS:]
            if len(decisions) > len(shown):
                lines.append(f"  (last {len(shown)} of {len(decisions)})")
            lines.append(
                format_table(
                    ["t", "reason", "pages", "used", "free", "target"],
                    [
                        [
                            d["time"], d["reason"], d["current_pages"],
                            d["used_pages"], round(d["free_fraction"], 3),
                            d["target_pages"],
                        ]
                        for d in shown
                    ],
                )
            )
        return "\n".join(lines)

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.as_json(), handle, indent=2)
