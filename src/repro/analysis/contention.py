"""Contention analysis over lock traces.

Turns a :class:`~repro.lockmgr.tracing.LockTrace` into the reports a
DBA would pull from a real lock manager: the most contended resources,
per-application wait time, and escalation hot spots.  Used for workload
diagnosis in examples and for asserting contention *structure* in
tests (e.g. that the TPC-C district row really is the hot spot).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.report import format_table
from repro.lockmgr.tracing import LockTrace, TraceEvent


def resource_timeline(trace: LockTrace, resource: str) -> List[TraceEvent]:
    """Every retained event touching one resource, in time order.

    A thin wrapper over ``trace.query(resource=...)`` -- the drill-down
    a DBA runs after :meth:`ContentionReport.hottest_resources` names a
    hot row.
    """
    return list(trace.query(resource=resource))


@dataclass
class ResourceContention:
    """Aggregated contention on one resource."""

    resource: str
    waits: int = 0
    wait_time_s: float = 0.0
    deadlocks: int = 0
    timeouts: int = 0

    @property
    def mean_wait_s(self) -> float:
        return self.wait_time_s / self.waits if self.waits else 0.0


@dataclass
class AppContention:
    """Aggregated wait behaviour of one application."""

    app_id: int
    waits: int = 0
    wait_time_s: float = 0.0
    deadlocks: int = 0
    timeouts: int = 0
    escalations: int = 0


class ContentionReport:
    """Builds contention aggregates from a lock trace.

    Wait durations are derived by pairing each application's
    ``wait-begin`` with its next ``wait-end`` on the same resource;
    waits resolved by deadlock or timeout contribute their count (their
    duration is attributed when the trace recorded it).
    """

    def __init__(self) -> None:
        self.resources: Dict[str, ResourceContention] = {}
        self.apps: Dict[int, AppContention] = {}
        self.total_waits = 0
        self.total_wait_time_s = 0.0

    @classmethod
    def from_trace(cls, trace: LockTrace) -> "ContentionReport":
        report = cls()
        pending: Dict[tuple, float] = {}
        for event in trace:
            if event.kind == "wait-begin":
                pending[(event.app_id, event.resource)] = event.time
                report._resource(event.resource).waits += 1
                report._app(event.app_id).waits += 1
                report.total_waits += 1
            elif event.kind == "wait-end":
                started = pending.pop((event.app_id, event.resource), None)
                if started is not None:
                    duration = event.time - started
                    report._resource(event.resource).wait_time_s += duration
                    report._app(event.app_id).wait_time_s += duration
                    report.total_wait_time_s += duration
            elif event.kind == "deadlock":
                report._resource(event.resource).deadlocks += 1
                report._app(event.app_id).deadlocks += 1
                pending.pop((event.app_id, event.resource), None)
            elif event.kind == "timeout":
                report._resource(event.resource).timeouts += 1
                report._app(event.app_id).timeouts += 1
                pending.pop((event.app_id, event.resource), None)
            elif event.kind == "escalation":
                report._app(event.app_id).escalations += 1
        return report

    def _resource(self, resource: str) -> ResourceContention:
        if resource not in self.resources:
            self.resources[resource] = ResourceContention(resource)
        return self.resources[resource]

    def _app(self, app_id: int) -> AppContention:
        if app_id not in self.apps:
            self.apps[app_id] = AppContention(app_id)
        return self.apps[app_id]

    # -- queries ------------------------------------------------------------

    def hottest_resources(self, n: int = 10) -> List[ResourceContention]:
        """Resources ranked by accumulated wait time, then wait count."""
        ranked = sorted(
            self.resources.values(),
            key=lambda r: (-r.wait_time_s, -r.waits, r.resource),
        )
        return ranked[:n]

    def most_blocked_apps(self, n: int = 10) -> List[AppContention]:
        ranked = sorted(
            self.apps.values(),
            key=lambda a: (-a.wait_time_s, -a.waits, a.app_id),
        )
        return ranked[:n]

    def table_hotspots(self) -> Dict[str, float]:
        """Wait time aggregated per table (rows fold into their table)."""
        per_table: Dict[str, float] = defaultdict(float)
        for resource, contention in self.resources.items():
            table = resource.split(".")[0] if resource else "?"
            per_table[table] += contention.wait_time_s
        return dict(per_table)

    def render(self, n: int = 10) -> str:
        """Human-readable top-N report."""
        rows = [
            [r.resource, r.waits, f"{r.wait_time_s:.3f}",
             f"{r.mean_wait_s:.3f}", r.deadlocks, r.timeouts]
            for r in self.hottest_resources(n)
        ]
        header = (
            f"contention: {self.total_waits} waits, "
            f"{self.total_wait_time_s:.3f}s total wait time\n"
        )
        return header + format_table(
            ["resource", "waits", "wait_s", "mean_wait_s",
             "deadlocks", "timeouts"],
            rows,
        )
