"""The result container every experiment scenario returns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.engine.metrics import MetricsRecorder


@dataclass
class ExperimentResult:
    """Everything a scenario run produced.

    Attributes
    ----------
    name:
        Experiment identifier (``"fig9-rampup"`` etc.).
    metrics:
        The full time series recorded during the run.
    findings:
        The scalar facts the paper's figure conveys (growth factors,
        escalation counts, convergence times...).  Benchmarks print
        these; integration tests assert on them.
    notes:
        Free-form remarks accumulated during the run (substitutions,
        scaling decisions).
    """

    name: str
    metrics: MetricsRecorder
    findings: Dict[str, Any] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def finding(self, key: str) -> Any:
        """Look up one finding, with a helpful error when missing."""
        if key not in self.findings:
            raise KeyError(
                f"experiment {self.name!r} has no finding {key!r}; "
                f"available: {sorted(self.findings)}"
            )
        return self.findings[key]

    def series(self, name: str):
        """Shortcut to one recorded time series."""
        return self.metrics[name]

    def summary_lines(self) -> List[str]:
        """Human-readable findings, one per line."""
        lines = [f"[{self.name}]"]
        for key in sorted(self.findings):
            value = self.findings[key]
            if isinstance(value, float):
                lines.append(f"  {key:40s} {value:,.3f}")
            else:
                lines.append(f"  {key:40s} {value}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return lines

    def __str__(self) -> str:
        return "\n".join(self.summary_lines())
