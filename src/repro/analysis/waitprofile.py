"""Offline wait-profile analysis over a telemetry JSONL stream.

The consumer side of the wait-event profiler and incident forensics:
``repro-service stress --wait-profile --telemetry run.jsonl`` records a
run; :func:`analyze_run` turns the reloaded
:class:`~repro.obs.events.RunTelemetry` into a
:class:`WaitProfileReport` -- the offline pass the ROADMAP's
closed-loop controller-autotuning item consumes:

* **wait-time breakdown by class** -- primary source is the
  ``service.wait.seconds{class=...}`` histograms in the stream's
  registry snapshot (exact totals, summed across shard labels); when a
  stream carries no histograms (hand-built, or profiling off) the raw
  ``wait`` records stand in, flagged as ring-bounded;
* **top-N blockers** -- from the raw wait events' blocker attribution:
  per blocking application, how many lock waits it gated and how much
  blocked time it caused;
* **tuner convergence** -- from the audit trail: when the tuner last
  *acted* (the convergence time: everything after is ``noop``), the
  per-reason action counts, controller decision count and incident
  counts per kind.

``repro-service analyze run.jsonl`` renders the report as aligned text
(or ``--json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.report import format_table
from repro.obs.events import RunTelemetry
from repro.obs.incidents import INCIDENT_KINDS
from repro.obs.tracing import HOP_NAMES, hop_percentiles, wire_tax_summary
from repro.obs.waits import WAIT_CLASSES, WAIT_SECONDS_METRIC

#: The per-worker wire-latency histogram the routed client records.
WIRE_LATENCY_METRIC = "net.client.request_latency_s"


@dataclass
class BlockerEntry:
    """One blocking application's aggregate impact."""

    app_id: int
    waits_caused: int
    blocked_seconds: float
    max_depth: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app": self.app_id,
            "waits_caused": self.waits_caused,
            "blocked_seconds": self.blocked_seconds,
            "max_depth": self.max_depth,
        }


@dataclass
class WaitProfileReport:
    """The offline analysis of one recorded run."""

    label: str
    #: ``{class: {"count": int, "seconds": float}}`` for every class.
    wait_breakdown: Dict[str, Dict[str, float]]
    #: "histograms" (exact) or "ring" (bounded raw events) or "none".
    breakdown_source: str
    top_blockers: List[BlockerEntry]
    #: Time of the last non-noop audit action (None: tuner never acted).
    converged_at: Optional[float]
    #: Audit actions per reason (the closed audit vocabulary).
    audit_reasons: Dict[str, int]
    decision_count: int
    incident_counts: Dict[str, int]
    #: Raw wait events carried in the stream (ring-bounded at capture).
    raw_wait_events: int = 0
    #: Broker audit actions per reason (empty: run had no broker).
    broker_reasons: Dict[str, int] = field(default_factory=dict)
    #: Pages moved by ``trade-benefit`` records, per (from, to) pair
    #: rendered as ``"donor->receiver"``.
    broker_trades: Dict[str, int] = field(default_factory=dict)
    #: Final pressure posture the broker recorded (None: no broker, or
    #: the run never left ``normal``).
    broker_final_posture: Optional[str] = None
    #: Sampled end-to-end request traces carried in the stream.
    trace_count: int = 0
    #: ``{hop: {count, p50, p99, total_s}}`` over the trace hops.
    trace_hops: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: ``{net_s, lock_s, fraction}`` -- the aggregate wire tax.
    trace_wire_tax: Dict[str, float] = field(default_factory=dict)
    #: ``{worker: {count, p50, p99, total_s}}`` from the routed
    #: client's per-worker wire-latency histograms.
    wire_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "wait_breakdown": self.wait_breakdown,
            "breakdown_source": self.breakdown_source,
            "top_blockers": [b.to_dict() for b in self.top_blockers],
            "converged_at": self.converged_at,
            "audit_reasons": self.audit_reasons,
            "decision_count": self.decision_count,
            "incident_counts": self.incident_counts,
            "raw_wait_events": self.raw_wait_events,
            "broker_reasons": self.broker_reasons,
            "broker_trades": self.broker_trades,
            "broker_final_posture": self.broker_final_posture,
            "trace_count": self.trace_count,
            "trace_hops": self.trace_hops,
            "trace_wire_tax": self.trace_wire_tax,
            "wire_latency": self.wire_latency,
            "notes": self.notes,
        }

    def render_text(self) -> str:
        lines = [f"wait profile: {self.label}"]
        lines.append("")
        lines.append(f"wait-time breakdown (source: {self.breakdown_source}):")
        rows = []
        total_s = sum(v["seconds"] for v in self.wait_breakdown.values())
        for cls in WAIT_CLASSES:
            entry = self.wait_breakdown.get(cls)
            if entry is None or entry["count"] == 0:
                continue
            share = entry["seconds"] / total_s if total_s > 0 else 0.0
            rows.append(
                [
                    cls,
                    int(entry["count"]),
                    f"{entry['seconds']:.6f}",
                    f"{share:.1%}",
                ]
            )
        if rows:
            lines.append(
                format_table(["class", "count", "seconds", "share"], rows)
            )
        else:
            lines.append("  (no waits recorded)")
        lines.append("")
        lines.append("top blockers:")
        if self.top_blockers:
            lines.append(
                format_table(
                    ["app", "waits caused", "blocked s", "max depth"],
                    [
                        [
                            b.app_id,
                            b.waits_caused,
                            f"{b.blocked_seconds:.6f}",
                            b.max_depth,
                        ]
                        for b in self.top_blockers
                    ],
                )
            )
        else:
            lines.append("  (no attributed lock waits)")
        lines.append("")
        lines.append("tuner convergence:")
        if self.converged_at is not None:
            lines.append(f"  last action at t={self.converged_at:.3f}s")
        else:
            lines.append("  tuner never acted (no non-noop audit entry)")
        reasons = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(self.audit_reasons.items())
            if count
        )
        lines.append(f"  audit actions: {reasons or '(none)'}")
        lines.append(f"  controller decisions: {self.decision_count}")
        incidents = ", ".join(
            f"{kind}={count}"
            for kind, count in self.incident_counts.items()
            if count
        )
        lines.append(f"  incidents: {incidents or '(none)'}")
        if self.trace_count:
            lines.append("")
            lines.append("request traces:")
            tax = self.trace_wire_tax
            lines.append(
                f"  {self.trace_count} sampled end-to-end traces, "
                f"wire tax {tax.get('fraction', 0.0):.1%} "
                f"(net {tax.get('net_s', 0.0):.6f}s vs "
                f"lock {tax.get('lock_s', 0.0):.6f}s)"
            )
            rows = [
                [
                    hop,
                    int(entry["count"]),
                    f"{entry['p50']:.6f}",
                    f"{entry['p99']:.6f}",
                    f"{entry['total_s']:.6f}",
                ]
                for hop in HOP_NAMES
                if (entry := self.trace_hops.get(hop)) is not None
            ]
            if rows:
                lines.append(
                    format_table(
                        ["hop", "count", "p50 s", "p99 s", "total s"], rows
                    )
                )
        if self.wire_latency:
            lines.append("")
            lines.append("wire latency (per worker):")
            lines.append(
                format_table(
                    ["worker", "count", "p50 s", "p99 s", "total s"],
                    [
                        [
                            worker,
                            int(entry["count"]),
                            f"{entry['p50']:.6f}",
                            f"{entry['p99']:.6f}",
                            f"{entry['total_s']:.6f}",
                        ]
                        for worker, entry in sorted(self.wire_latency.items())
                    ],
                )
            )
        if self.broker_reasons:
            lines.append("")
            lines.append("memory broker:")
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.broker_reasons.items())
                if count
            )
            lines.append(f"  broker actions: {reasons}")
            for pair, pages in sorted(self.broker_trades.items()):
                lines.append(f"  traded {pair}: {pages} pages")
            if self.broker_final_posture is not None:
                lines.append(
                    f"  final posture: {self.broker_final_posture}"
                )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def analyze_run(telemetry: RunTelemetry, top_n: int = 5) -> WaitProfileReport:
    """Build the wait-profile report for one reloaded run."""
    breakdown, source, notes = _wait_breakdown(telemetry)
    broker_reasons, broker_trades, final_posture = _broker_summary(telemetry)
    traces = getattr(telemetry, "traces", []) or []
    return WaitProfileReport(
        label=telemetry.label,
        wait_breakdown=breakdown,
        breakdown_source=source,
        top_blockers=_top_blockers(telemetry, top_n),
        converged_at=_converged_at(telemetry),
        audit_reasons=_audit_reasons(telemetry),
        decision_count=len(telemetry.decisions),
        incident_counts=_incident_counts(telemetry),
        raw_wait_events=len(telemetry.waits),
        broker_reasons=broker_reasons,
        broker_trades=broker_trades,
        broker_final_posture=final_posture,
        trace_count=len(traces),
        trace_hops=hop_percentiles(traces) if traces else {},
        trace_wire_tax=wire_tax_summary(traces) if traces else {},
        wire_latency=_wire_latency(telemetry),
        notes=notes,
    )


def _wait_breakdown(telemetry: RunTelemetry):
    """Class totals from histograms, falling back to the raw ring."""
    breakdown = {cls: {"count": 0, "seconds": 0.0} for cls in WAIT_CLASSES}
    notes: List[str] = []
    found = False
    for hist in telemetry.registry.histograms():
        if hist.base_name != WAIT_SECONDS_METRIC:
            continue
        labels = dict(hist.labels)
        cls = labels.get("class")
        if cls is None or cls not in breakdown:
            continue
        breakdown[cls]["count"] += hist.count
        breakdown[cls]["seconds"] += hist.sum
        found = True
    if found:
        return breakdown, "histograms", notes
    if telemetry.waits:
        for wait in telemetry.waits:
            cls = wait.get("class")
            if cls in breakdown:
                breakdown[cls]["count"] += 1
                breakdown[cls]["seconds"] += float(wait.get("duration_s", 0.0))
        notes.append(
            "breakdown rebuilt from the bounded raw-event ring; "
            "totals may undercount long runs"
        )
        return breakdown, "ring", notes
    notes.append("stream carries no wait histograms or raw wait events")
    return breakdown, "none", notes


def _top_blockers(telemetry: RunTelemetry, top_n: int) -> List[BlockerEntry]:
    tally: Dict[int, BlockerEntry] = {}
    for wait in telemetry.waits:
        if not str(wait.get("class", "")).startswith("lock."):
            continue
        blocker = wait.get("blocker")
        if blocker is None:
            continue
        blocker = int(blocker)
        entry = tally.get(blocker)
        if entry is None:
            entry = tally[blocker] = BlockerEntry(blocker, 0, 0.0, 0)
        entry.waits_caused += 1
        entry.blocked_seconds += float(wait.get("duration_s", 0.0))
        entry.max_depth = max(entry.max_depth, int(wait.get("depth", 0)))
    worst = sorted(
        tally.values(), key=lambda b: (-b.blocked_seconds, b.app_id)
    )
    return worst[: max(0, top_n)]


def _converged_at(telemetry: RunTelemetry) -> Optional[float]:
    last_action = None
    for record in telemetry.audit:
        if record.reason != "noop":
            last_action = record.time
    return last_action


def _audit_reasons(telemetry: RunTelemetry) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for record in telemetry.audit:
        counts[record.reason] = counts.get(record.reason, 0) + 1
    return counts


def _broker_summary(telemetry: RunTelemetry):
    """Reason counts, per-pair trade volume and last posture from the
    broker records (all empty/None when the run had no broker)."""
    reasons: Dict[str, int] = {}
    trades: Dict[str, int] = {}
    posture: Optional[str] = None
    for record in getattr(telemetry, "broker", []) or []:
        reasons[record.reason] = reasons.get(record.reason, 0) + 1
        if record.reason == "trade-benefit":
            pair = f"{record.heap_from}->{record.heap_to}"
            trades[pair] = trades.get(pair, 0) + record.pages
        posture = record.posture
    return reasons, trades, posture


def _wire_latency(telemetry: RunTelemetry) -> Dict[str, Dict[str, float]]:
    """Per-worker wire-latency percentiles from the client histograms."""
    report: Dict[str, Dict[str, float]] = {}
    for hist in telemetry.registry.histograms():
        if hist.base_name != WIRE_LATENCY_METRIC or hist.count == 0:
            continue
        worker = dict(hist.labels).get("worker", "?")
        report[worker] = {
            "count": hist.count,
            "p50": hist.percentile(50),
            "p99": hist.percentile(99),
            "total_s": hist.sum,
        }
    return report


def _incident_counts(telemetry: RunTelemetry) -> Dict[str, int]:
    counts = {kind: 0 for kind in INCIDENT_KINDS}
    for incident in telemetry.incidents:
        counts[incident.kind] = counts.get(incident.kind, 0) + 1
    return counts


__all__ = ["BlockerEntry", "WaitProfileReport", "analyze_run"]
