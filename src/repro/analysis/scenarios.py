"""Canonical experiment scenarios: one per figure of the paper.

Every scenario returns an :class:`~repro.analysis.experiment.ExperimentResult`
whose ``findings`` carry the facts the corresponding paper figure
conveys.  Benchmarks print them, integration tests assert on them, and
the examples reuse them, so the reproduction is defined in exactly one
place.

Scaling note (recorded per-result in ``notes``): the paper ran on a
5.11 GB database server; the default :class:`DatabaseConfig` here is a
512 MB system with every *ratio* preserved (20 % maxLockMemory, 10 %
compiler view, 50-60 % free band, 5 % delta_reduce, 65 % C1).  Client
counts match the paper (130 / 50 / 30); scenario durations are
compressed where the paper ran for tens of minutes of steady state.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.experiment import ExperimentResult
from repro.baselines import (
    ItlConfig,
    OracleItlTable,
    SqlServer2005Policy,
    StaticLocklistPolicy,
)
from repro.core.controller import LockMemoryController
from repro.core.params import TuningParameters
from repro.core.policy import AdaptiveLockMemoryPolicy, TuningPolicy
from repro.engine.database import Database, DatabaseConfig
from repro.engine.des import Environment
from repro.engine.metrics import MetricsRecorder
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.manager import LockManager
from repro.lockmgr.modes import LockMode
from repro.memory.heaps import HeapCategory, MemoryHeap
from repro.memory.registry import DatabaseMemoryRegistry
from repro.memory.stmm import Stmm, StmmConfig
from repro.units import PAGES_PER_BLOCK
from repro.workloads.dss import ReportingQuery
from repro.workloads.oltp import OltpWorkload, heavy_mix, standard_mix
from repro.workloads.schedule import ClientSchedule


def _throughput(metrics: MetricsRecorder):
    """Commits-per-second series derived from the cumulative counter."""
    return metrics["commits"].rate().smooth(5)


# ---------------------------------------------------------------------------
# Database observers: external hooks into scenario-internal databases
# ---------------------------------------------------------------------------

#: Called with ``(label, database)`` right after a scenario constructs a
#: Database, before the simulation runs -- early enough to enable
#: telemetry or attach a tracer.
DatabaseObserver = Callable[[str, Database], None]

_database_observers: List[DatabaseObserver] = []


def add_database_observer(observer: DatabaseObserver) -> None:
    """Register a hook over every Database any scenario builds."""
    _database_observers.append(observer)


def remove_database_observer(observer: DatabaseObserver) -> None:
    _database_observers.remove(observer)


@contextmanager
def observe_databases(observer: DatabaseObserver) -> Iterator[None]:
    """Scoped registration, the runner's preferred form::

        with observe_databases(lambda label, db: db.enable_telemetry()):
            run_fig9_rampup()
    """
    add_database_observer(observer)
    try:
        yield
    finally:
        remove_database_observer(observer)


def _new_db(label: str, **kwargs) -> Database:
    """Construct a scenario Database and announce it to observers.

    Every scenario builds its databases through this factory so that
    ``runner --telemetry`` can reach runs it never constructs itself.
    """
    db = Database(**kwargs)
    for observer in list(_database_observers):
        observer(label, db)
    return db


# ---------------------------------------------------------------------------
# Figure 3: lock queuing (the S, S, X, S convoy)
# ---------------------------------------------------------------------------

def run_fig3_lock_queuing() -> ExperimentResult:
    """Four applications lock one row: S, S, then X, then S.

    Expected shape (paper Figure 3): the two share requests share one
    grant; the X request queues; the later S request queues *behind*
    the X (FIFO post discipline) instead of jumping the queue.
    """
    env = Environment()
    chain = LockBlockChain(initial_blocks=1)
    manager = LockManager(env, chain)
    metrics = MetricsRecorder()
    grant_order: List[int] = []

    def app(app_id: int, mode: LockMode, delay: float, hold: float):
        yield env.timeout(delay)
        yield from manager.lock_row(app_id, table_id=0, row_id=7, mode=mode)
        grant_order.append(app_id)
        yield env.timeout(hold)
        manager.release_all(app_id)

    env.process(app(1, LockMode.S, delay=0.0, hold=10.0))
    env.process(app(2, LockMode.S, delay=1.0, hold=10.0))
    env.process(app(3, LockMode.X, delay=2.0, hold=5.0))
    env.process(app(4, LockMode.S, delay=3.0, hold=1.0))
    env.run(until=4.0)
    queue_modes = [
        w.mode.name
        for obj in manager._objects.values()
        if obj.resource.is_row
        for w in obj.waiters
    ]
    shared_grant = grant_order == [1, 2]
    env.run(until=40.0)
    manager.check_invariants()
    result = ExperimentResult("fig3-lock-queuing", metrics)
    result.findings.update(
        {
            "shared_S_grant": shared_grant,
            "queue_while_held": "->".join(queue_modes),
            "final_grant_order": "->".join(str(a) for a in grant_order),
            "fifo_respected": grant_order == [1, 2, 3, 4],
        }
    )
    return result


# ---------------------------------------------------------------------------
# Figure 4: the Oracle ITL page model
# ---------------------------------------------------------------------------

def run_fig4_oracle_itl(
    concurrent_txns: int = 10, config: Optional[ItlConfig] = None
) -> ExperimentResult:
    """Distinct-row writers on one page under Oracle's ITL model.

    Expected shape (paper section 2.3): once the page's ITL slots are
    exhausted and its free space is consumed, additional transactions
    block *even though the rows they want are free* -- de facto page
    locking.  The DB2 in-memory model has no such limit; its cost is
    lock memory, which the tuner manages.
    """
    cfg = config or ItlConfig(
        rows_per_page=100,
        initial_itl_slots=2,
        max_itl_slots=4,
        page_free_bytes=2 * 24,  # room to extend by exactly two slots
    )
    table = OracleItlTable(num_pages=4, config=cfg)
    granted = 0
    for txn in range(concurrent_txns):
        if table.lock_row(txn_id=txn, page_id=0, row_offset=txn):
            granted += 1
    blocked = concurrent_txns - granted
    overhead_before_commit = table.disk_overhead_bytes()
    stale = table.stale_lock_bytes()
    for txn in range(concurrent_txns):
        table.commit(txn)
    metrics = MetricsRecorder()
    result = ExperimentResult("fig4-oracle-itl", metrics)
    result.findings.update(
        {
            "concurrent_txns": concurrent_txns,
            "granted_before_itl_exhaustion": granted,
            "blocked_on_free_rows": blocked,
            "itl_waits": table.itl_waits,
            "row_conflicts": table.row_conflicts,
            "disk_overhead_bytes": overhead_before_commit,
            "disk_overhead_after_commit_bytes": table.disk_overhead_bytes(),
            "stale_lock_bytes_if_flushed": stale,
            "tunable_memory_pages": table.tunable_memory_pages(),
        }
    )
    result.notes.append(
        "ITL space is never reclaimed: overhead identical before/after commit"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 6: the worked example of combined sync + async tuning
# ---------------------------------------------------------------------------

def run_fig6_worked_example(total_pages: int = 131_072) -> ExperimentResult:
    """Script the T0..Tn timeline of section 4 against the controller.

    The lock *usage* trajectory is driven directly (as percentages of
    databaseMemory, matching the figure): steady 2 %, surge to 3 %
    (absorbed by free space), surge to 8 % (synchronous growth from
    overflow), then slump back to 2 % followed by the slow delta_reduce
    relaxation.
    """
    params = TuningParameters()
    registry = DatabaseMemoryRegistry(
        total_pages, overflow_goal_pages=total_pages // 10
    )
    registry.register(
        MemoryHeap("bufferpool", HeapCategory.PMC, size_pages=int(total_pages * 0.55),
                   min_pages=total_pages // 10,
                   benefit=lambda heap: 100.0 / heap.size_pages))
    registry.register(
        MemoryHeap("sort", HeapCategory.PMC, size_pages=int(total_pages * 0.20),
                   min_pages=256, benefit=lambda heap: 10.0 / heap.size_pages))
    lock_pages_t0 = (total_pages * 4 // 100 // PAGES_PER_BLOCK) * PAGES_PER_BLOCK
    registry.register(
        MemoryHeap("locklist", HeapCategory.FMC, size_pages=lock_pages_t0))
    chain = LockBlockChain(initial_blocks=lock_pages_t0 // PAGES_PER_BLOCK)
    controller = LockMemoryController(registry, chain, params=params)
    stmm = Stmm(registry, StmmConfig(interval_s=30.0))
    stmm.register_deterministic_tuner(controller)

    slots: List = []

    def set_used_percent(percent: float) -> None:
        """Drive chain usage to ``percent`` of databaseMemory."""
        locks_per_page = 4096 // params.locksize_bytes
        target_slots = int(total_pages * percent / 100.0) * locks_per_page
        while len(slots) < target_slots:
            if chain.free_slots == 0:
                granted = controller.sync_grow(1)
                if granted == 0:
                    raise RuntimeError("worked example ran out of overflow")
                chain.add_blocks(granted)
            slots.append(chain.allocate_slot())
        while len(slots) > target_slots:
            chain.free_slot(slots.pop())

    metrics = MetricsRecorder()

    def snap(label: str, time: float) -> None:
        metrics.record_many(
            time,
            {
                "lock_pages_pct": 100.0 * chain.allocated_pages / total_pages,
                "lock_used_pct": 100.0 * controller.used_pages() / total_pages,
                "overflow_pct": 100.0 * registry.overflow_pages / total_pages,
                "bufferpool_pct": 100.0
                * registry.heap("bufferpool").size_pages
                / total_pages,
            },
        )

    timeline: List[Tuple[str, float]] = []
    set_used_percent(2.0)
    snap("T0", 0.0)
    timeline.append(("T0 steady: 4% allocated, 2% used", chain.allocated_pages))

    set_used_percent(3.0)  # T1: surge absorbed by free space
    t1_sync = controller.lmo_pages
    snap("T1", 10.0)
    stmm.tune(30.0)  # T2: async growth to restore minFree
    snap("T2", 30.0)
    t2_alloc = chain.allocated_pages

    set_used_percent(8.0)  # T3: 267% surge, partly synchronous
    t3_sync = controller.lmo_pages
    t3_overflow = registry.overflow_pages
    snap("T3", 40.0)
    stmm.tune(60.0)  # T4: reconcile overflow, meet minFree
    snap("T4", 60.0)
    t4_overflow = registry.overflow_pages

    set_used_percent(2.0)  # T5: slump
    snap("T5", 70.0)
    t5_alloc = chain.allocated_pages
    shrink_trail: List[int] = [t5_alloc]
    t = 90.0
    for _ in range(40):  # T6..Tn: slow relaxation
        stmm.tune(t)
        snap("Tn", t)
        if chain.allocated_pages == shrink_trail[-1]:
            break  # reached the maxFreeLockMemory-free goal state
        shrink_trail.append(chain.allocated_pages)
        t += 30.0
    controller.check_consistency()

    result = ExperimentResult("fig6-worked-example", metrics)
    result.findings.update(
        {
            "t1_absorbed_without_sync_growth": t1_sync == 0,
            "t2_alloc_pct": 100.0 * t2_alloc / total_pages,
            "t3_used_sync_growth": t3_sync > 0,
            "t3_overflow_reduced_pct": 100.0 * t3_overflow / total_pages,
            "t4_overflow_restored_pct": 100.0 * t4_overflow / total_pages,
            "t5_alloc_pct": 100.0 * t5_alloc / total_pages,
            "shrink_intervals": len(shrink_trail) - 1,
            "final_alloc_pct": 100.0 * chain.allocated_pages / total_pages,
            "per_interval_shrink_fraction": (
                (shrink_trail[0] - shrink_trail[1]) / shrink_trail[0]
                if len(shrink_trail) >= 2
                else 0.0
            ),
        }
    )
    return result


# ---------------------------------------------------------------------------
# Figures 7 and 8: the static under-allocation catastrophe
# ---------------------------------------------------------------------------

def run_fig7_fig8_static_escalation(
    seed: int = 7,
    clients: int = 130,
    locklist_pages: int = 96,
    duration_s: float = 180.0,
    include_adaptive_reference: bool = True,
) -> ExperimentResult:
    """0.4 MB static lock memory under a 130-client OLTP ramp.

    Expected shape: lock requests rise with the ramp until escalation
    fires; escalation *reduces lock memory use* (Figure 7) while
    collapsing concurrency and throughput (Figure 8).  The adaptive
    reference run on the identical workload shows no escalations and
    healthy throughput.
    """
    def build(policy: TuningPolicy, label: str) -> Database:
        cfg = DatabaseConfig(initial_locklist_pages=128)
        db = _new_db(label, seed=seed, config=cfg, policy=policy)
        workload = OltpWorkload(
            db, ClientSchedule.ramp(1, clients, start=0.0, duration=30.0),
            mix=heavy_mix(),
        )
        workload.start()
        db.run(until=duration_s)
        return db

    static_db = build(
        StaticLocklistPolicy(locklist_pages=locklist_pages, maxlocks_fraction=0.10),
        "fig7-static",
    )
    stats = static_db.lock_manager.stats
    used = static_db.metrics["lock_used_slots"]
    tput = _throughput(static_db.metrics)
    result = ExperimentResult("fig7-fig8-static-escalation", static_db.metrics)
    result.findings.update(
        {
            "static_escalations": stats.escalations.count,
            "static_exclusive_escalations": stats.escalations.exclusive_count,
            "static_lock_errors": stats.lock_list_full_errors,
            "static_deadlocks": stats.deadlocks,
            "static_peak_used_slots": used.max(),
            "static_final_used_slots": used.last,
            "static_used_drop_after_escalation": used.max() - used.last,
            "static_peak_tput": tput.max(),
            "static_late_tput": tput.at(duration_s - 5),
            "static_commits": static_db.commits,
        }
    )
    if include_adaptive_reference:
        adaptive_db = build(AdaptiveLockMemoryPolicy(), "fig7-adaptive")
        a_stats = adaptive_db.lock_manager.stats
        a_tput = _throughput(adaptive_db.metrics)
        result.findings.update(
            {
                "adaptive_escalations": a_stats.escalations.count,
                "adaptive_commits": adaptive_db.commits,
                "adaptive_late_tput": a_tput.at(duration_s - 5),
                "adaptive_vs_static_commit_ratio": (
                    adaptive_db.commits / max(1, static_db.commits)
                ),
            }
        )
    result.notes.append(
        f"static LOCKLIST {locklist_pages} pages "
        f"({locklist_pages * 4 / 1024:.2f} MB) vs paper's 0.4 MB"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 9: rapid adaptation to a steady-state OLTP ramp
# ---------------------------------------------------------------------------

def run_fig9_rampup(
    seed: int = 9,
    clients: int = 130,
    initial_locklist_pages: int = 96,
    ramp_duration_s: float = 60.0,
    duration_s: float = 300.0,
) -> ExperimentResult:
    """Self-tuning from a minimal configuration under a 1-to-130 ramp.

    Expected shape: throughput climbs with the ramp, lock memory adapts
    immediately to a stable level roughly 10x its minimal starting
    point, and **no lock escalations occur** (the paper reports a 10.5x
    increase with zero escalations).
    """
    cfg = DatabaseConfig(initial_locklist_pages=initial_locklist_pages)
    db = _new_db("fig9", seed=seed, config=cfg, policy=AdaptiveLockMemoryPolicy())
    workload = OltpWorkload(
        db, ClientSchedule.ramp(1, clients, start=0.0, duration=ramp_duration_s)
    )
    workload.start()
    db.run(until=duration_s)
    pages = db.metrics["lock_pages"]
    tput = _throughput(db.metrics)
    final = pages.last
    convergence = pages.crossing_time(final, rising=True)
    result = ExperimentResult("fig9-rampup", db.metrics)
    result.findings.update(
        {
            "initial_lock_pages": pages.at(0),
            "final_lock_pages": final,
            "growth_factor": final / pages.at(0),
            "escalations": db.lock_manager.stats.escalations.count,
            "sync_growth_blocks": db.lock_manager.stats.sync_growth_blocks,
            "convergence_time_s": convergence,
            "steady_tput": tput.at(duration_s - 5),
            "commits": db.commits,
        }
    )
    return result


# ---------------------------------------------------------------------------
# Figure 10: the 50 -> 130 client surge
# ---------------------------------------------------------------------------

def run_fig10_surge(
    seed: int = 1,
    before_clients: int = 50,
    after_clients: int = 130,
    switch_at_s: float = 120.0,
    duration_s: float = 300.0,
) -> ExperimentResult:
    """Steady OLTP surged 2.6x in client count.

    Expected shape: lock memory increases "to just more than double its
    previous allocation" practically instantaneously at the switch, and
    no escalations occur throughout.
    """
    db = _new_db("fig10", seed=seed, policy=AdaptiveLockMemoryPolicy())
    workload = OltpWorkload(
        db, ClientSchedule.step(before_clients, after_clients, at=switch_at_s)
    )
    workload.start()
    db.run(until=duration_s)
    pages = db.metrics["lock_pages"]
    before = pages.at(switch_at_s - 5)
    after = pages.last
    # Adaptation delay: time from the switch until the new allocation.
    reached = pages.window(switch_at_s, duration_s).crossing_time(after, rising=True)
    tput = _throughput(db.metrics)
    result = ExperimentResult("fig10-surge", db.metrics)
    result.findings.update(
        {
            "lock_pages_before": before,
            "lock_pages_after": after,
            "growth_ratio": after / before,
            "adaptation_delay_s": (reached - switch_at_s) if reached else None,
            "escalations": db.lock_manager.stats.escalations.count,
            "tput_before": tput.at(switch_at_s - 10),
            "tput_after": tput.at(duration_s - 10),
        }
    )
    return result


# ---------------------------------------------------------------------------
# Figure 11: DSS reporting query injected into steady OLTP
# ---------------------------------------------------------------------------

def run_fig11_dss_injection(
    seed: int = 3,
    oltp_clients: int = 30,
    dss_rows: int = 500_000,
    inject_at_s: float = 90.0,
    acquisition_duration_s: float = 40.0,
    hold_duration_s: float = 30.0,
    duration_s: float = 330.0,
    maxlocks_policy: str = "adaptive",
) -> ExperimentResult:
    """A single reporting query with massive row locking joins OLTP.

    Expected shape: lock memory grows by tens of times within seconds
    of the injection (the paper reports 60x over 25 s, peaking near
    10 % of database memory), with **no exclusive escalations**; OLTP
    throughput dips from resource competition but keeps running.  The
    adaptive lockPercentPerApplication is what lets one application
    dominate lock memory -- re-run with ``maxlocks_policy="fixed10"``
    (the old DB2 default) and the query escalates.
    """
    cfg = DatabaseConfig(
        bufferpool_fraction=0.50,
        sort_fraction=0.10,
        hashjoin_fraction=0.05,
        pkgcache_fraction=0.03,
        overflow_goal_fraction=0.15,
    )
    if maxlocks_policy == "adaptive":
        policy: TuningPolicy = AdaptiveLockMemoryPolicy()
    elif maxlocks_policy == "fixed10":
        policy = AdaptiveLockMemoryPolicy(fixed_maxlocks_fraction=0.10)
    else:
        raise ValueError(f"unknown maxlocks_policy {maxlocks_policy!r}")
    db = _new_db(f"fig11-{maxlocks_policy}", seed=seed, config=cfg, policy=policy)
    workload = OltpWorkload(db, ClientSchedule.constant(oltp_clients))
    workload.start()
    query = ReportingQuery(
        db,
        start_time_s=inject_at_s,
        row_count=dss_rows,
        acquisition_duration_s=acquisition_duration_s,
        hold_duration_s=hold_duration_s,
    )
    query.start()
    db.run(until=duration_s)
    pages = db.metrics["lock_pages"]
    base = pages.at(inject_at_s - 5)
    peak = pages.max()
    peak_time = pages.crossing_time(peak, rising=True)
    tput = _throughput(db.metrics)
    stats = db.lock_manager.stats
    result = ExperimentResult("fig11-dss-injection", db.metrics)
    result.findings.update(
        {
            "base_lock_pages": base,
            "peak_lock_pages": peak,
            "growth_factor": peak / base,
            "peak_fraction_of_database_memory": peak / db.registry.total_pages,
            "time_to_peak_s": (peak_time - inject_at_s) if peak_time else None,
            "escalations": stats.escalations.count,
            "exclusive_escalations": stats.escalations.exclusive_count,
            "query_completed": query.result.completed if query.result else False,
            "query_rows_locked": query.result.rows_locked if query.result else 0,
            "min_maxlocks_percent": db.metrics["maxlocks_percent"].min(),
            "oltp_tput_before": tput.at(inject_at_s - 10),
            "oltp_tput_during": tput.at(inject_at_s + acquisition_duration_s),
            # Resource competition (section 5.3): the lock-memory spike
            # is funded by shrinking other consumers, the bufferpool
            # foremost -- the simulated analogue of the paper's observed
            # CPU / disk-bandwidth competition.
            "bufferpool_pages_taken": (
                db.metrics["bufferpool_pages"].at(inject_at_s - 5)
                - db.metrics["bufferpool_pages"].min()
            ),
            "maxlocks_policy": maxlocks_policy,
        }
    )
    result.notes.append(
        f"scaled: {dss_rows} DSS row locks against 512 MB databaseMemory "
        "(paper: ~60x growth to ~500 MB against 5.11 GB)"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 12: gradual lock memory reduction
# ---------------------------------------------------------------------------

def run_fig12_reduction(
    seed: int = 5,
    before_clients: int = 130,
    after_clients: int = 30,
    drop_at_s: float = 180.0,
    duration_s: float = 620.0,
) -> ExperimentResult:
    """Client population drops 76.9 %; lock memory relaxes slowly.

    Expected shape: after the drop the allocation decays by roughly
    delta_reduce (5 %) per 30 s tuning interval for about ten intervals
    and settles near half its previous steady state, with no escalations.
    """
    db = _new_db("fig12", seed=seed, policy=AdaptiveLockMemoryPolicy())
    workload = OltpWorkload(
        db, ClientSchedule.step(before_clients, after_clients, at=drop_at_s)
    )
    workload.start()
    db.run(until=duration_s)
    pages = db.metrics["lock_pages"]
    steady = pages.at(drop_at_s - 5)
    final = pages.last
    # Count the shrink intervals and the mean per-interval reduction.
    interval = db.config.stmm.interval_s
    t = drop_at_s
    trail: List[float] = []
    while t <= duration_s:
        trail.append(pages.at(t))
        t += interval
    shrink_steps = [
        (trail[i] - trail[i + 1]) / trail[i]
        for i in range(len(trail) - 1)
        if trail[i + 1] < trail[i]
    ]
    result = ExperimentResult("fig12-reduction", db.metrics)
    result.findings.update(
        {
            "steady_lock_pages": steady,
            "final_lock_pages": final,
            "reduction_ratio": final / steady,
            "shrink_intervals": len(shrink_steps),
            "mean_per_interval_reduction": (
                sum(shrink_steps) / len(shrink_steps) if shrink_steps else 0.0
            ),
            "escalations": db.lock_manager.stats.escalations.count,
            "client_drop_percent": 100.0 * (before_clients - after_clients)
            / before_clients,
        }
    )
    return result


# ---------------------------------------------------------------------------
# Extra experiments: baseline comparison and ablations
# ---------------------------------------------------------------------------

def run_baseline_comparison(
    seed: int = 11,
    clients: int = 40,
    dss_rows: int = 120_000,
    duration_s: float = 240.0,
) -> ExperimentResult:
    """The same surge + DSS workload under every tuning policy.

    Expected shape: the adaptive policy avoids escalation entirely; the
    static under-provisioned policy escalates; the SQL Server 2005
    policy escalates on the reporting query via its unconditional
    5000-locks-per-application trigger (the paper: "a single reporting
    query can easily result in lock escalation").  Memory behaviour
    also separates the policies: the adaptive policy's allocation
    relaxes after the query (delta_reduce), while the SQL Server model
    never returns lock memory to the pool.
    """
    policies: Dict[str, TuningPolicy] = {
        "db2-adaptive": AdaptiveLockMemoryPolicy(),
        "static-2MB-10pct": StaticLocklistPolicy(
            locklist_pages=512, maxlocks_fraction=0.10
        ),
        "sqlserver-2005": SqlServer2005Policy(),
    }
    metrics = MetricsRecorder()
    result = ExperimentResult("baseline-comparison", metrics)
    rows = []
    for name, policy in policies.items():
        cfg = DatabaseConfig(overflow_goal_fraction=0.10)
        db = _new_db(f"baseline-{name}", seed=seed, config=cfg, policy=policy)
        workload = OltpWorkload(
            db, ClientSchedule.step(clients // 2, clients, at=60.0)
        )
        workload.start()
        query = ReportingQuery(
            db, start_time_s=120.0, row_count=dss_rows,
            acquisition_duration_s=20.0, hold_duration_s=20.0,
        )
        query.start()
        db.run(until=duration_s)
        stats = db.lock_manager.stats
        rows.append(
            {
                "policy": name,
                "escalations": stats.escalations.count,
                "exclusive": stats.escalations.exclusive_count,
                "errors": stats.lock_list_full_errors,
                "commits": db.commits,
                "peak_lock_pages": db.metrics["lock_pages"].max(),
                "final_lock_pages": db.metrics["lock_pages"].last,
                "query_completed": query.result.completed if query.result else False,
            }
        )
        for key, value in rows[-1].items():
            if key != "policy":
                result.findings[f"{name}:{key}"] = value
    result.findings["policies"] = [r["policy"] for r in rows]
    best = max(rows, key=lambda r: r["commits"])
    result.findings["highest_throughput_policy"] = best["policy"]
    return result


def run_ablation_delta_reduce(
    deltas: Sequence[float] = (0.01, 0.05, 0.10, 0.25),
    seed: int = 13,
    drop_at_s: float = 120.0,
    duration_s: float = 480.0,
) -> ExperimentResult:
    """Sweep the shrink rate on the Figure 12 step-down scenario.

    Trade-off the paper's 5 % choice sits on: a small delta_reduce wastes
    memory for longer after a peak (slow relaxation); a large one
    de-stabilizes the allocation (and can immediately have to re-grow).
    """
    metrics = MetricsRecorder()
    result = ExperimentResult("ablation-delta-reduce", metrics)
    for delta in deltas:
        params = TuningParameters(delta_reduce=delta)
        db = _new_db(
            f"delta-{delta:.2f}", seed=seed, policy=AdaptiveLockMemoryPolicy(params)
        )
        workload = OltpWorkload(db, ClientSchedule.step(130, 30, at=drop_at_s))
        workload.start()
        db.run(until=duration_s)
        pages = db.metrics["lock_pages"]
        steady = pages.at(drop_at_s - 5)
        final = pages.last
        # The settled level every delta eventually reaches is the
        # 30-client minLockMemory floor; measuring waste against the
        # run's own final value would flatter slow shrink rates that
        # have not finished decaying inside the window.
        floor = params.min_lock_memory_pages(30)
        # Memory held above that floor after the drop (page-seconds):
        waste = 0.0
        window = pages.window(drop_at_s, duration_s)
        for i in range(1, len(window)):
            dt = window.times[i] - window.times[i - 1]
            waste += max(0.0, window.values[i - 1] - floor) * dt
        half_time = window.crossing_time((steady + floor) / 2.0, rising=False)
        key = f"delta={delta:.2f}"
        result.findings[f"{key}:final_pages"] = final
        result.findings[f"{key}:excess_page_seconds"] = waste
        result.findings[f"{key}:time_to_halfway_s"] = (
            (half_time - drop_at_s) if half_time is not None else None
        )
        result.findings[f"{key}:escalations"] = (
            db.lock_manager.stats.escalations.count
        )
    return result


def run_ablation_free_band(
    bands: Sequence[Tuple[float, float]] = ((0.50, 0.60), (0.20, 0.30), (0.75, 0.85)),
    seed: int = 17,
    duration_s: float = 240.0,
) -> ExperimentResult:
    """Sweep the minFree/maxFree band on the Figure 10 surge scenario.

    The paper keeps 50-60 % free so one interval can absorb a 100 %
    demand growth without synchronous allocation.  A narrow low band
    leaves little headroom (more synchronous growth, escalation risk);
    a high band wastes memory (allocated far above used).
    """
    metrics = MetricsRecorder()
    result = ExperimentResult("ablation-free-band", metrics)
    for min_free, max_free in bands:
        params = TuningParameters(
            min_free_fraction=min_free, max_free_fraction=max_free
        )
        db = _new_db(
            f"band-{min_free:.2f}-{max_free:.2f}",
            seed=seed, policy=AdaptiveLockMemoryPolicy(params),
        )
        workload = OltpWorkload(db, ClientSchedule.step(50, 130, at=90.0))
        workload.start()
        db.run(until=duration_s)
        pages = db.metrics["lock_pages"]
        used = db.metrics["lock_used_pages"]
        overhead = pages.mean() / max(1.0, used.mean())
        key = f"band={min_free:.2f}-{max_free:.2f}"
        result.findings[f"{key}:sync_growth_blocks"] = (
            db.lock_manager.stats.sync_growth_blocks
        )
        result.findings[f"{key}:escalations"] = (
            db.lock_manager.stats.escalations.count
        )
        result.findings[f"{key}:allocated_to_used_ratio"] = overhead
        result.findings[f"{key}:final_pages"] = pages.last
    return result


def run_two_heavy_consumers(
    seed: int = 37,
    dss_rows: int = 700_000,
    duration_s: float = 300.0,
) -> ExperimentResult:
    """Two simultaneous heavy lock consumers (section 5.3's discussion).

    The paper predicts: "Had two or more heavy lock consumers ... been
    simultaneously introduced the adaptive algorithm for
    lockPercentPerApplication would have attenuated the percentage of
    total lock memory that each query would be allowed to consume as
    global lock memory began to approach maxLockMemory".

    Expected shape: a single query of this size runs entirely on row
    locks (memory far from the maximum); the same two queries together
    push the allocation toward maxLockMemory, the MAXLOCKS curve
    attenuates hard, and the queries escalate (to S table locks) instead
    of exhausting global lock memory -- the system stays "well behaved".
    """
    cfg = DatabaseConfig(
        bufferpool_fraction=0.45,
        sort_fraction=0.10,
        hashjoin_fraction=0.05,
        pkgcache_fraction=0.03,
        overflow_goal_fraction=0.20,
    )

    def run(num_queries: int):
        db = _new_db(
            f"heavy-consumers-{num_queries}",
            seed=seed, config=cfg, policy=AdaptiveLockMemoryPolicy(),
        )
        queries = [
            ReportingQuery(
                db, start_time_s=10.0, row_count=dss_rows,
                table_id=1_000 + i,
                acquisition_duration_s=40.0, hold_duration_s=20.0,
            )
            for i in range(num_queries)
        ]
        for query in queries:
            query.start()
        db.run(until=duration_s)
        return db, queries

    solo_db, solo_queries = run(1)
    duo_db, duo_queries = run(2)

    metrics = MetricsRecorder()
    result = ExperimentResult("two-heavy-consumers", metrics)
    result.findings.update(
        {
            "solo_escalations": solo_db.lock_manager.stats.escalations.count,
            "solo_min_maxlocks_percent": solo_db.metrics["maxlocks_percent"].min(),
            "solo_completed": all(
                q.result and q.result.completed for q in solo_queries
            ),
            "duo_escalations": duo_db.lock_manager.stats.escalations.count,
            "duo_exclusive_escalations": (
                duo_db.lock_manager.stats.escalations.exclusive_count
            ),
            "duo_min_maxlocks_percent": duo_db.metrics["maxlocks_percent"].min(),
            "duo_completed": all(
                q.result and q.result.completed for q in duo_queries
            ),
            "duo_peak_lock_pages": duo_db.metrics["lock_pages"].max(),
            "max_lock_memory_pages": (
                duo_db.policy.controller.max_lock_memory_pages()
            ),
        }
    )
    result.notes.append(
        f"each query locks {dss_rows} rows; one fits comfortably, two "
        "together approach maxLockMemory"
    )
    return result


def run_ablation_maxlocks(
    seed: int = 19,
    oltp_clients: int = 20,
    dss_rows: int = 150_000,
    duration_s: float = 260.0,
) -> ExperimentResult:
    """Adaptive lockPercentPerApplication vs the old fixed 10 % default.

    Expected shape (section 5.3 discussion): with the adaptive curve a
    single DSS query may dominate lock memory and completes without
    escalation; with a fixed 10 % MAXLOCKS the very same query trips
    the per-application limit and escalates, "grinding the OLTP
    workload to a halt" in the paper's words.
    """
    metrics = MetricsRecorder()
    result = ExperimentResult("ablation-maxlocks", metrics)
    for label, policy_kind in (("adaptive", "adaptive"), ("fixed10", "fixed10")):
        sub = run_fig11_dss_injection(
            seed=seed,
            oltp_clients=oltp_clients,
            dss_rows=dss_rows,
            inject_at_s=60.0,
            acquisition_duration_s=25.0,
            hold_duration_s=20.0,
            duration_s=duration_s,
            maxlocks_policy=policy_kind,
        )
        for key in (
            "growth_factor",
            "escalations",
            "exclusive_escalations",
            "query_completed",
            "min_maxlocks_percent",
        ):
            result.findings[f"{label}:{key}"] = sub.findings[key]
    return result
