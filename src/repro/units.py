"""Memory units and conversion helpers shared across the library.

The paper accounts lock memory the way DB2 does:

* the LOCKLIST configuration parameter is expressed in 4 KB pages,
* lock memory is physically allocated in 128 KB blocks (32 pages each),
* each 128 KB block stores "approximately 2000" lock structures.

We fix ``LOCK_SIZE_BYTES = 64`` which yields exactly 2048 lock structures
per block, matching the paper's approximation.  All memory bookkeeping in
the library is done in 4 KB pages (integers); helper functions convert
between bytes, pages, blocks and lock-structure counts.
"""

from __future__ import annotations

PAGE_SIZE_BYTES = 4 * 1024
"""Size of one memory page (DB2 LOCKLIST is counted in 4 KB pages)."""

BLOCK_SIZE_BYTES = 128 * 1024
"""Lock memory is allocated in 128 KB blocks (paper section 2.2)."""

PAGES_PER_BLOCK = BLOCK_SIZE_BYTES // PAGE_SIZE_BYTES
"""32 pages of LOCKLIST memory per 128 KB allocation."""

LOCK_SIZE_BYTES = 64
"""Size of a single lock structure.

128 KB / 64 B = 2048 locks per block -- the paper says each block holds
"approximately 2000 locks".
"""

LOCKS_PER_BLOCK = BLOCK_SIZE_BYTES // LOCK_SIZE_BYTES

MB = 1024 * 1024
KB = 1024


def bytes_to_pages(num_bytes: int) -> int:
    """Convert a byte count to whole pages, rounding up."""
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    return -(-num_bytes // PAGE_SIZE_BYTES)


def pages_to_bytes(pages: int) -> int:
    """Convert a page count to bytes."""
    if pages < 0:
        raise ValueError(f"page count must be non-negative, got {pages}")
    return pages * PAGE_SIZE_BYTES


def pages_to_blocks(pages: int) -> int:
    """Convert a page count to whole 128 KB blocks, rounding up."""
    if pages < 0:
        raise ValueError(f"page count must be non-negative, got {pages}")
    return -(-pages // PAGES_PER_BLOCK)


def blocks_to_pages(blocks: int) -> int:
    """Convert a 128 KB block count to pages."""
    if blocks < 0:
        raise ValueError(f"block count must be non-negative, got {blocks}")
    return blocks * PAGES_PER_BLOCK


def blocks_to_bytes(blocks: int) -> int:
    """Convert a 128 KB block count to bytes."""
    return blocks * BLOCK_SIZE_BYTES


def locks_to_blocks(locks: int) -> int:
    """Number of whole blocks needed to store ``locks`` lock structures."""
    if locks < 0:
        raise ValueError(f"lock count must be non-negative, got {locks}")
    return -(-locks // LOCKS_PER_BLOCK)


def blocks_to_locks(blocks: int) -> int:
    """Lock-structure capacity of ``blocks`` 128 KB blocks."""
    if blocks < 0:
        raise ValueError(f"block count must be non-negative, got {blocks}")
    return blocks * LOCKS_PER_BLOCK


def round_pages_to_blocks(pages: int) -> int:
    """Round a page count up to an integral number of blocks, in pages.

    The paper requires that "all increments and decrements to the lock
    memory will be performed in integral units of lock memory blocks"
    (section 3.2).
    """
    return blocks_to_pages(pages_to_blocks(pages))


def fmt_bytes(num_bytes: float) -> str:
    """Human-readable rendering of a byte count (e.g. ``'8.0MB'``)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_pages(pages: int) -> str:
    """Human-readable rendering of a page count (pages plus bytes)."""
    return f"{pages}p ({fmt_bytes(pages_to_bytes(pages))})"
