"""Lock objects: granted holders plus a FIFO convoy of waiters.

One :class:`LockObject` exists per actively locked resource.  Its state
mirrors Figure 3 of the paper: compatible applications share the grant
(e.g. two share-mode readers), while incompatible requests form a chain
serviced strictly in request order -- "the previously described memory
chaining method uses a post method so that requesters are serviced in
the order in which they request locks" (section 2.3, contrasting with
Oracle's sleep/wake/check polling).

Conversions (an application strengthening a mode it already holds) take
precedence over new requests: a conversion that cannot be granted
immediately is queued ahead of all non-converting waiters, which is the
standard treatment and prevents new arrivals from starving upgraders.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.errors import LockManagerError
from repro.lockmgr.blocks import LockBlock
from repro.lockmgr.modes import LockMode, compatible, supremum
from repro.lockmgr.resources import ResourceId


class HeldLock:
    """One application's grant on a resource (one lock structure).

    A slotted plain class, not a dataclass: tens of thousands are
    created per simulated second, so instance dicts are worth avoiding.
    """

    __slots__ = ("app_id", "mode", "count", "block")

    def __init__(
        self,
        app_id: int,
        mode: LockMode,
        count: int = 1,
        block: Optional[LockBlock] = None,
    ) -> None:
        self.app_id = app_id
        self.mode = mode
        #: Re-entrant acquisition count; releases are all-at-once
        #: (strict two-phase locking) so this is informational.
        self.count = count
        #: The 128 KB block the structure was allocated from.
        self.block = block

    def __repr__(self) -> str:
        return (
            f"HeldLock(app={self.app_id}, mode={self.mode.name}, "
            f"count={self.count})"
        )


class Waiter:
    """A queued lock request (slotted: see :class:`HeldLock`)."""

    __slots__ = ("app_id", "mode", "event", "block", "converting", "enqueued_at")

    def __init__(
        self,
        app_id: int,
        mode: LockMode,
        event: Any,
        block: Optional[LockBlock] = None,
        converting: bool = False,
        enqueued_at: float = 0.0,
    ) -> None:
        self.app_id = app_id
        self.mode = mode
        #: DES event the requester is suspended on; succeeds on grant.
        self.event = event
        #: Slot backing the request structure (None for conversions,
        #: which reuse the already-held structure).
        self.block = block
        self.converting = converting
        self.enqueued_at = enqueued_at

    def __repr__(self) -> str:
        kind = "convert" if self.converting else "request"
        return f"Waiter(app={self.app_id}, mode={self.mode.name}, {kind})"


class LockObject:
    """Lock state for one resource.

    Holder modes are additionally aggregated into ``mode_counts`` (one
    counter per lock mode) so compatibility checks cost O(#modes), not
    O(#holders) -- popular share-locked rows can have dozens of holders.
    All grant/upgrade/removal mutations must go through the methods here
    so the counters stay consistent.
    """

    __slots__ = ("resource", "granted", "waiters", "mode_counts")

    def __init__(self, resource: ResourceId) -> None:
        self.resource = resource
        self.granted: Dict[int, HeldLock] = {}
        self.waiters: Deque[Waiter] = deque()
        self.mode_counts = [0] * len(LockMode)

    @property
    def is_idle(self) -> bool:
        """True when nobody holds or waits for this resource."""
        return not self.granted and not self.waiters

    def holder_mode(self, app_id: int) -> Optional[LockMode]:
        """Mode ``app_id`` currently holds, or None."""
        held = self.granted.get(app_id)
        return held.mode if held else None

    def others_compatible(self, app_id: int, mode: LockMode) -> bool:
        """True when ``mode`` is compatible with every *other* holder."""
        mask = mode._compat_mask  # type: ignore[attr-defined]
        own = self.granted.get(app_id)
        own_idx = own.mode._idx if own is not None else -1  # type: ignore[attr-defined]
        for idx, count in enumerate(self.mode_counts):
            if count and not (mask & (1 << idx)):
                # An incompatible mode is held; tolerable only when the
                # requester itself is its sole holder.
                if idx == own_idx and count == 1:
                    continue
                return False
        return True

    # -- counted mutations ------------------------------------------------

    def add_grant(self, app_id: int, mode: LockMode, block=None) -> HeldLock:
        """Record a fresh grant (caller verified compatibility)."""
        if app_id in self.granted:
            raise LockManagerError(f"app {app_id} already holds {self.resource}")
        held = HeldLock(app_id, mode, count=1, block=block)
        self.granted[app_id] = held
        self.mode_counts[mode._idx] += 1  # type: ignore[attr-defined]
        return held

    def upgrade_grant(self, app_id: int, mode: LockMode) -> HeldLock:
        """Strengthen an existing grant to sup(held, requested)."""
        held = self.granted.get(app_id)
        if held is None:
            raise LockManagerError(
                f"app {app_id} holds nothing on {self.resource} to upgrade"
            )
        new_mode = supremum(held.mode, mode)
        if new_mode is not held.mode:
            self.mode_counts[held.mode._idx] -= 1  # type: ignore[attr-defined]
            self.mode_counts[new_mode._idx] += 1  # type: ignore[attr-defined]
            held.mode = new_mode
        held.count += 1
        return held

    def remove_grant(self, app_id: int) -> HeldLock:
        """Drop a holder entirely (release path)."""
        held = self.granted.pop(app_id, None)
        if held is None:
            raise LockManagerError(f"app {app_id} does not hold {self.resource}")
        self.mode_counts[held.mode._idx] -= 1  # type: ignore[attr-defined]
        return held

    def grant_now(self, waiter: Waiter) -> None:
        """Move ``waiter`` into the granted set (caller checked compat)."""
        if waiter.converting:
            if waiter.app_id not in self.granted:
                raise LockManagerError(
                    f"conversion grant for {waiter.app_id} on {self.resource} "
                    "but nothing is held"
                )
            self.upgrade_grant(waiter.app_id, waiter.mode)
        else:
            self.add_grant(waiter.app_id, waiter.mode, block=waiter.block)

    def enqueue(self, waiter: Waiter) -> None:
        """Queue a waiter; conversions go ahead of non-conversions."""
        if waiter.converting:
            insert_at = 0
            for i, queued in enumerate(self.waiters):
                if queued.converting:
                    insert_at = i + 1
                else:
                    break
            self.waiters.insert(insert_at, waiter)
        else:
            self.waiters.append(waiter)

    def remove_waiter(self, app_id: int) -> List[Waiter]:
        """Remove (and return) every queued waiter of ``app_id``."""
        removed = [w for w in self.waiters if w.app_id == app_id]
        if removed:
            self.waiters = deque(w for w in self.waiters if w.app_id != app_id)
        return removed

    def pump(self) -> List[Waiter]:
        """Grant queued waiters in FIFO order while compatible.

        Stops at the first waiter that cannot be granted (strict FIFO:
        later compatible waiters must not overtake it).  Returns the
        waiters granted; the manager fires their events and updates its
        accounting.
        """
        granted: List[Waiter] = []
        while self.waiters:
            waiter = self.waiters[0]
            if not self.others_compatible(waiter.app_id, waiter.mode):
                break
            self.waiters.popleft()
            self.grant_now(waiter)
            granted.append(waiter)
        return granted

    def blockers_of(self, waiter: Waiter) -> List[int]:
        """Applications that must act before ``waiter`` can be granted.

        Used for deadlock detection: incompatible holders plus every
        waiter queued ahead (strict FIFO means they gate the grant).
        """
        blockers = [
            holder
            for holder, held in self.granted.items()
            if holder != waiter.app_id and not compatible(held.mode, waiter.mode)
        ]
        for queued in self.waiters:
            if queued is waiter:
                break
            if queued.app_id != waiter.app_id:
                blockers.append(queued.app_id)
        return blockers

    def check_invariants(self) -> None:
        """Verify the mode counters match the granted set (tests)."""
        expected = [0] * len(LockMode)
        for held in self.granted.values():
            expected[held.mode._idx] += 1  # type: ignore[attr-defined]
        if expected != self.mode_counts:
            raise LockManagerError(
                f"mode counters {self.mode_counts} != granted modes {expected} "
                f"on {self.resource}"
            )

    def __repr__(self) -> str:
        holders = ", ".join(
            f"{app}:{held.mode.name}" for app, held in sorted(self.granted.items())
        )
        queue = ", ".join(f"{w.app_id}:{w.mode.name}" for w in self.waiters)
        return f"LockObject({self.resource}, granted=[{holders}], queue=[{queue}])"
