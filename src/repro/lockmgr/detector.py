"""Periodic deadlock detection (DB2's DLCHKTIME model).

The lock manager's default is *immediate* detection: a request that
would close a wait-for cycle fails on the spot.  Real DB2 instead runs
a deadlock detector every DLCHKTIME milliseconds (default 10 s): cycles
exist until the next check, at which point a victim is chosen and
rolled back.  This module provides that mode:

* :class:`DeadlockDetector` scans the manager's wait-for graph on a
  fixed interval,
* each cycle's victim is the participant holding the fewest lock
  structures (a proxy for DB2's least-log-space victim rule),
* the victim's pending request fails with
  :class:`~repro.errors.DeadlockError`, delivered asynchronously
  through its wait event.

Attach with::

    detector = DeadlockDetector(manager, interval_s=10.0)
    env.process(detector.run(env))

which switches the manager to periodic mode (immediate checks off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.errors import DeadlockError
from repro.lockmgr.manager import LockManager


@dataclass
class DetectorStats:
    """Counters for one detector instance."""

    checks: int = 0
    cycles_found: int = 0
    victims: List[int] = field(default_factory=list)


class DeadlockDetector:
    """Scans the wait-for graph every ``interval_s`` simulated seconds."""

    def __init__(self, manager: LockManager, interval_s: float = 10.0) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.manager = manager
        self.interval_s = interval_s
        self.stats = DetectorStats()
        manager.deadlock_detection = "periodic"

    # -- graph construction --------------------------------------------------

    def wait_for_graph(self) -> Dict[int, Set[int]]:
        """Current edges: waiting app -> apps gating its request."""
        graph: Dict[int, Set[int]] = {}
        for app_id, (obj, waiter) in self.manager._waiting_on.items():
            graph[app_id] = set(obj.blockers_of(waiter))
        return graph

    def find_cycles(self) -> List[List[int]]:
        """Disjoint wait-for cycles, each as a list of app ids.

        Only waiting applications can appear in a cycle (non-waiting
        blockers have no outgoing edges).  Uses iterative DFS with an
        on-stack marker; each detected cycle's nodes are removed from
        further consideration so the returned cycles are disjoint.
        """
        graph = self.wait_for_graph()
        cycles: List[List[int]] = []
        consumed: Set[int] = set()

        for root in sorted(graph):
            if root in consumed:
                continue
            # iterative DFS tracking the current path
            path: List[int] = []
            on_path: Set[int] = set()
            visited: Set[int] = set()
            stack: List[tuple] = [(root, iter(sorted(graph.get(root, ()))))]
            path.append(root)
            on_path.add(root)
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if child in consumed or child not in graph:
                        continue  # not waiting: cannot be on a cycle
                    if child in on_path:
                        # found a cycle: the path suffix from child
                        start = path.index(child)
                        cycle = path[start:]
                        cycles.append(cycle)
                        consumed.update(cycle)
                        stack.clear()
                        advanced = True
                        break
                    if child not in visited:
                        visited.add(child)
                        path.append(child)
                        on_path.add(child)
                        stack.append((child, iter(sorted(graph.get(child, ())))))
                        advanced = True
                        break
                if not stack:
                    break
                if not advanced:
                    stack.pop()
                    done = path.pop()
                    on_path.discard(done)
        return cycles

    # -- victim selection and resolution ------------------------------------

    def choose_victim(self, cycle: List[int]) -> int:
        """The cycle participant holding the fewest lock structures."""
        return min(cycle, key=lambda app: (self.manager.app_slots(app), app))

    def check(self) -> int:
        """One detection pass; returns the number of victims rolled back."""
        self.stats.checks += 1
        victims = 0
        for cycle in self.find_cycles():
            self.stats.cycles_found += 1
            victim = self.choose_victim(cycle)
            cancelled = self.manager.cancel_wait(
                victim,
                DeadlockError(
                    f"deadlock detector: app {victim} chosen as victim of "
                    f"cycle {cycle}"
                ),
            )
            if cancelled:
                self.stats.victims.append(victim)
                self.manager.stats.deadlocks += 1
                victims += 1
        return victims

    def run(self, env):
        """DES process: check every ``interval_s`` forever."""
        while True:
            yield env.timeout(self.interval_s)
            self.check()
