"""Periodic deadlock detection (DB2's DLCHKTIME model).

The lock manager's default is *immediate* detection: a request that
would close a wait-for cycle fails on the spot.  Real DB2 instead runs
a deadlock detector every DLCHKTIME milliseconds (default 10 s): cycles
exist until the next check, at which point a victim is chosen and
rolled back.  This module provides that mode:

* :class:`DeadlockDetector` scans the manager's wait-for graph on a
  fixed interval,
* each cycle's victim is the participant holding the fewest lock
  structures (a proxy for DB2's least-log-space victim rule),
* the victim's pending request fails with
  :class:`~repro.errors.DeadlockError`, delivered asynchronously
  through its wait event.

Attach with::

    detector = DeadlockDetector(manager, interval_s=10.0)
    env.process(detector.run(env))

which switches the manager to periodic mode (immediate checks off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

from repro.errors import DeadlockError
from repro.lockmgr.manager import LockManager


@dataclass
class DetectorStats:
    """Counters for one detector instance."""

    checks: int = 0
    cycles_found: int = 0
    victims: List[int] = field(default_factory=list)


class DeadlockDetector:
    """Scans the wait-for graph every ``interval_s`` simulated seconds."""

    def __init__(self, manager: LockManager, interval_s: float = 10.0) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.manager = manager
        self.interval_s = interval_s
        self.stats = DetectorStats()
        manager.deadlock_detection = "periodic"

    # -- graph construction --------------------------------------------------

    def wait_for_graph(self) -> Dict[int, List[int]]:
        """Cycle-relevant edges: waiting app -> *waiting* apps gating it.

        Built from the manager's incrementally-maintained contended-
        object set, visiting each contended queue once: incompatible
        holders are computed per distinct waiter *mode* (bitmask test,
        cached within the object) and the queued-ahead prefix is
        accumulated while walking the queue, so the build is
        O(contended waiters + holders) rather than a per-waiter rescan
        of each queue.

        Blockers that are not themselves waiting are pruned during the
        build: they have no outgoing edges, so they cannot lie on a
        cycle, and dropping them up front (a popular share-locked
        resource can have dozens of non-waiting holders) shrinks both
        the graph and the DFS that follows.  Edge lists may contain a
        duplicate when a blocker both holds the resource and waits ahead
        (a queued conversion); the DFS is insensitive to duplicates.
        Edge lists may also be shared between entries -- treat them as
        read-only.
        """
        graph: Dict[int, List[int]] = {}
        waiting = self.manager._waiting_on
        for obj in self.manager.contended_objects().values():
            granted = obj.granted
            incompatible_cache: Dict[int, List[int]] = {}
            ahead: List[int] = []
            for waiter in obj.waiters:
                mode_idx = waiter.mode._idx  # type: ignore[attr-defined]
                holders = incompatible_cache.get(mode_idx)
                if holders is None:
                    mask = waiter.mode._compat_mask  # type: ignore[attr-defined]
                    holders = incompatible_cache[mode_idx] = [
                        app
                        for app, held in granted.items()
                        if not (mask & held.mode._bit)  # type: ignore[attr-defined]
                        and app in waiting
                    ]
                app_id = waiter.app_id
                if waiter.converting:
                    # A converting waiter also holds the resource; keep
                    # it out of its own edge list.
                    blockers = [app for app in holders if app != app_id]
                    blockers.extend(app for app in ahead if app != app_id)
                elif ahead:
                    blockers = holders + ahead
                else:
                    blockers = holders
                graph[app_id] = blockers
                ahead.append(app_id)
        return graph

    def find_cycles(self) -> List[List[int]]:
        """Disjoint wait-for cycles, each as a list of app ids.

        Only waiting applications can appear in a cycle (non-waiting
        blockers have no outgoing edges).  Uses iterative DFS with an
        on-stack marker; each detected cycle's nodes are removed from
        further consideration so the returned cycles are disjoint.
        Fully-explored nodes are remembered across roots (``finished``),
        making a pass O(nodes + edges); removing nodes cannot create
        cycles, so a node proven cycle-free stays cycle-free after a
        cycle elsewhere is consumed.  Traversal order follows dict
        insertion order, which is deterministic for a deterministic
        simulation -- no sorting needed.
        """
        graph = self.wait_for_graph()
        cycles: List[List[int]] = []
        consumed: Set[int] = set()
        finished: Set[int] = set()

        for root in graph:
            if root in consumed or root in finished:
                continue
            # iterative DFS tracking the current path
            path: List[int] = [root]
            on_path: Set[int] = {root}
            stack: List[Tuple[int, Iterator[int]]] = [(root, iter(graph[root]))]
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if (
                        child in consumed
                        or child in finished
                        or child not in graph  # not waiting: not on a cycle
                    ):
                        continue
                    if child in on_path:
                        # found a cycle: the path suffix from child
                        start = path.index(child)
                        cycle = path[start:]
                        cycles.append(cycle)
                        consumed.update(cycle)
                        stack.clear()
                        advanced = True
                        break
                    path.append(child)
                    on_path.add(child)
                    stack.append((child, iter(graph[child])))
                    advanced = True
                    break
                if not stack:
                    break
                if not advanced:
                    stack.pop()
                    path.pop()
                    on_path.discard(node)
                    finished.add(node)
        return cycles

    # -- victim selection and resolution ------------------------------------

    def choose_victim(self, cycle: List[int]) -> int:
        """The cycle participant holding the fewest lock structures.

        Ties are broken by lowest application id.  The tie-break is part
        of the contract: it makes the choice a pure function of the
        cycle's *membership*, so the victim can never depend on the
        order in which the graph walk happened to enumerate the cycle
        (which optimization work is free to change).
        """
        return min(cycle, key=lambda app: (self.manager.app_slots(app), app))

    def check(self) -> int:
        """One detection pass; returns the number of victims rolled back."""
        self.stats.checks += 1
        victims = 0
        for cycle in self.find_cycles():
            self.stats.cycles_found += 1
            victim = self.choose_victim(cycle)
            cancelled = self.manager.cancel_wait(
                victim,
                DeadlockError(
                    f"deadlock detector: app {victim} chosen as victim of "
                    f"cycle {cycle}"
                ),
            )
            if cancelled:
                self.stats.victims.append(victim)
                self.manager.stats.deadlocks += 1
                victims += 1
        return victims

    def run(self, env):
        """DES process: check every ``interval_s`` forever."""
        while True:
            yield env.timeout(self.interval_s)
            self.check()
