"""Periodic deadlock detection (DB2's DLCHKTIME model).

The lock manager's default is *immediate* detection: a request that
would close a wait-for cycle fails on the spot.  Real DB2 instead runs
a deadlock detector every DLCHKTIME milliseconds (default 10 s): cycles
exist until the next check, at which point a victim is chosen and
rolled back.  This module provides that mode:

* :class:`DeadlockDetector` scans the manager's wait-for graph on a
  fixed interval,
* each cycle's victim is the participant holding the fewest lock
  structures (a proxy for DB2's least-log-space victim rule),
* the victim's pending request fails with
  :class:`~repro.errors.DeadlockError`, delivered asynchronously
  through its wait event.

Attach with::

    detector = DeadlockDetector(manager, interval_s=10.0)
    env.process(detector.run(env))

which switches the manager to periodic mode (immediate checks off).

The graph construction and cycle search are also exposed as the
module-level functions :func:`build_wait_for_graph`,
:func:`find_cycles_in_graph` and :func:`merge_wait_graphs`, so a
sharded deployment (:mod:`repro.service.sharded`) can merge the
per-shard graphs and run the identical cycle search across shards
without switching the shard managers out of immediate mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Container, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import DeadlockError, LockManagerError
from repro.lockmgr.manager import LockManager


@dataclass
class DetectorStats:
    """Counters for one detector instance."""

    checks: int = 0
    cycles_found: int = 0
    victims: List[int] = field(default_factory=list)


def build_wait_for_graph(
    manager: LockManager, waiting: Optional[Container[int]] = None
) -> Dict[int, List[int]]:
    """Cycle-relevant edges: waiting app -> *waiting* apps gating it.

    Built from the manager's incrementally-maintained contended-object
    set, visiting each contended queue once: incompatible holders are
    computed per distinct waiter *mode* (bitmask test, cached within
    the object) and the queued-ahead prefix is accumulated while
    walking the queue, so the build is O(contended waiters + holders)
    rather than a per-waiter rescan of each queue.

    Blockers not in ``waiting`` are pruned during the build: they have
    no outgoing edges, so they cannot lie on a cycle, and dropping
    them up front (a popular share-locked resource can have dozens of
    non-waiting holders) shrinks both the graph and the DFS that
    follows.  ``waiting`` defaults to this manager's own wait set --
    correct for a single manager.  A sharded sweep MUST instead pass
    the union of every shard's wait set: a blocker idle in this shard
    may be waiting in another, and pruning it here would sever the
    cross-shard edge the cycle runs through.

    Edge lists may contain a duplicate when a blocker both holds the
    resource and waits ahead (a queued conversion); the DFS is
    insensitive to duplicates.  Edge lists may also be shared between
    entries -- treat them as read-only.
    """
    graph: Dict[int, List[int]] = {}
    if waiting is None:
        waiting = manager._waiting_on
    for obj in manager.contended_objects().values():
        granted = obj.granted
        incompatible_cache: Dict[int, List[int]] = {}
        ahead: List[int] = []
        for waiter in obj.waiters:
            mode_idx = waiter.mode._idx  # type: ignore[attr-defined]
            holders = incompatible_cache.get(mode_idx)
            if holders is None:
                mask = waiter.mode._compat_mask  # type: ignore[attr-defined]
                holders = incompatible_cache[mode_idx] = [
                    app
                    for app, held in granted.items()
                    if not (mask & held.mode._bit)  # type: ignore[attr-defined]
                    and app in waiting
                ]
            app_id = waiter.app_id
            if waiter.converting:
                # A converting waiter also holds the resource; keep
                # it out of its own edge list.
                blockers = [app for app in holders if app != app_id]
                blockers.extend(app for app in ahead if app != app_id)
            elif ahead:
                blockers = holders + ahead
            else:
                blockers = holders
            graph[app_id] = blockers
            ahead.append(app_id)
    return graph


def merge_wait_graphs(
    graphs: Iterable[Dict[int, List[int]]]
) -> Dict[int, List[int]]:
    """Union of per-shard wait-for graphs into one cross-shard graph.

    Application ids are global, so edges from different shards refer
    to the same nodes -- but a session may have at most one request in
    flight, hence at most one *outgoing* edge set, in exactly one
    shard.  A duplicate node across shards means that invariant broke
    somewhere upstream; merging would silently drop edges, so it is
    rejected loudly instead.

    The per-shard graphs must have been built with the *global*
    waiting set (see :func:`build_wait_for_graph`): with each shard's
    local set, a blocker waiting in a different shard would be pruned
    and the cross-shard edge severed.  With the global set, every
    waiter appears as a node in exactly one shard's graph and every
    cross-shard edge survives, so the merged graph contains every
    cross-shard cycle.
    """
    merged: Dict[int, List[int]] = {}
    for graph in graphs:
        for app_id, blockers in graph.items():
            if app_id in merged:
                raise LockManagerError(
                    f"app {app_id} is waiting in two shards at once; "
                    "wait-for graphs cannot be merged"
                )
            merged[app_id] = blockers
    return merged


def find_cycles_in_graph(graph: Dict[int, List[int]]) -> List[List[int]]:
    """Disjoint wait-for cycles in ``graph``, each as a list of app ids.

    Only waiting applications can appear in a cycle (non-waiting
    blockers have no outgoing edges).  Uses iterative DFS with an
    on-stack marker; each detected cycle's nodes are removed from
    further consideration so the returned cycles are disjoint.
    Fully-explored nodes are remembered across roots (``finished``),
    making a pass O(nodes + edges); removing nodes cannot create
    cycles, so a node proven cycle-free stays cycle-free after a
    cycle elsewhere is consumed.  Traversal order follows dict
    insertion order, which is deterministic for a deterministic
    simulation -- no sorting needed.
    """
    cycles: List[List[int]] = []
    consumed: Set[int] = set()
    finished: Set[int] = set()

    for root in graph:
        if root in consumed or root in finished:
            continue
        # iterative DFS tracking the current path
        path: List[int] = [root]
        on_path: Set[int] = {root}
        stack: List[Tuple[int, Iterator[int]]] = [(root, iter(graph[root]))]
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if (
                    child in consumed
                    or child in finished
                    or child not in graph  # not waiting: not on a cycle
                ):
                    continue
                if child in on_path:
                    # found a cycle: the path suffix from child
                    start = path.index(child)
                    cycle = path[start:]
                    cycles.append(cycle)
                    consumed.update(cycle)
                    stack.clear()
                    advanced = True
                    break
                path.append(child)
                on_path.add(child)
                stack.append((child, iter(graph[child])))
                advanced = True
                break
            if not stack:
                break
            if not advanced:
                stack.pop()
                path.pop()
                on_path.discard(node)
                finished.add(node)
    return cycles


class DeadlockDetector:
    """Scans the wait-for graph every ``interval_s`` simulated seconds."""

    def __init__(self, manager: LockManager, interval_s: float = 10.0) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.manager = manager
        self.interval_s = interval_s
        self.stats = DetectorStats()
        manager.deadlock_detection = "periodic"

    # -- graph construction --------------------------------------------------

    def wait_for_graph(self) -> Dict[int, List[int]]:
        """This manager's cycle-relevant wait-for edges.

        See :func:`build_wait_for_graph` for the construction and its
        complexity guarantees.
        """
        return build_wait_for_graph(self.manager)

    def find_cycles(self) -> List[List[int]]:
        """Disjoint wait-for cycles, each as a list of app ids.

        See :func:`find_cycles_in_graph` for the DFS and its
        determinism guarantees.
        """
        return find_cycles_in_graph(self.wait_for_graph())

    # -- victim selection and resolution ------------------------------------

    def choose_victim(self, cycle: List[int]) -> int:
        """The cycle participant holding the fewest lock structures.

        Ties are broken by lowest application id.  The tie-break is part
        of the contract: it makes the choice a pure function of the
        cycle's *membership*, so the victim can never depend on the
        order in which the graph walk happened to enumerate the cycle
        (which optimization work is free to change).
        """
        return min(cycle, key=lambda app: (self.manager.app_slots(app), app))

    def check(self) -> int:
        """One detection pass; returns the number of victims rolled back."""
        self.stats.checks += 1
        victims = 0
        for cycle in self.find_cycles():
            self.stats.cycles_found += 1
            victim = self.choose_victim(cycle)
            cancelled = self.manager.cancel_wait(
                victim,
                DeadlockError(
                    f"deadlock detector: app {victim} chosen as victim of "
                    f"cycle {cycle}"
                ),
            )
            if cancelled:
                self.stats.victims.append(victim)
                self.manager.stats.deadlocks += 1
                victims += 1
        return victims

    def run(self, env):
        """DES process: check every ``interval_s`` forever."""
        while True:
            yield env.timeout(self.interval_s)
            self.check()
