"""Lockable resource identifiers.

Resources form a two-level hierarchy: tables contain rows.  A resource
id is a small frozen dataclass usable as a dictionary key.  Page-level
resources are included for completeness (some vendors escalate row to
page before table; DB2 escalates straight to table locks, which is what
the manager does by default).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional


class ResourceKind(enum.Enum):
    TABLE = "table"
    PAGE = "page"
    ROW = "row"


@dataclass(frozen=True, eq=False)
class ResourceId:
    """Identifies one lockable object.

    Hash and equality are computed once at construction (resource ids
    are dictionary keys on the simulation's hottest path).
    """

    kind: ResourceKind
    table_id: int
    page_id: Optional[int] = None
    row_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.table_id < 0:
            raise ValueError(f"table_id must be non-negative, got {self.table_id}")
        if self.kind is ResourceKind.TABLE:
            if self.page_id is not None or self.row_id is not None:
                raise ValueError("table resource must not carry page/row ids")
        elif self.kind is ResourceKind.PAGE:
            if self.page_id is None or self.row_id is not None:
                raise ValueError("page resource needs page_id and no row_id")
        elif self.kind is ResourceKind.ROW:
            if self.row_id is None:
                raise ValueError("row resource needs row_id")
        key = (self.kind.value, self.table_id, self.page_id, self.row_id)
        object.__setattr__(self, "_key", key)
        object.__setattr__(self, "_hash", hash(key))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceId):
            return NotImplemented
        return self._key == other._key  # type: ignore[attr-defined]

    @property
    def is_table(self) -> bool:
        return self.kind is ResourceKind.TABLE

    @property
    def is_row(self) -> bool:
        return self.kind is ResourceKind.ROW

    def table(self) -> "ResourceId":
        """The table resource containing this resource."""
        if self.is_table:
            return self
        return table_resource(self.table_id)

    def __repr__(self) -> str:
        if self.kind is ResourceKind.TABLE:
            return f"T{self.table_id}"
        if self.kind is ResourceKind.PAGE:
            return f"T{self.table_id}.P{self.page_id}"
        return f"T{self.table_id}.R{self.row_id}"


@lru_cache(maxsize=None)
def table_resource(table_id: int) -> ResourceId:
    """Resource id for a whole table (cached; tables are few)."""
    return ResourceId(ResourceKind.TABLE, table_id)


def row_resource(table_id: int, row_id: int) -> ResourceId:
    """Resource id for one row of a table."""
    return ResourceId(ResourceKind.ROW, table_id, row_id=row_id)


def page_resource(table_id: int, page_id: int) -> ResourceId:
    """Resource id for one page of a table."""
    return ResourceId(ResourceKind.PAGE, table_id, page_id=page_id)
