"""Lockable resource identifiers.

Resources form a two-level hierarchy: tables contain rows.  A resource
id is a small immutable-by-convention value object usable as a
dictionary key.  Page-level resources are included for completeness
(some vendors escalate row to page before table; DB2 escalates straight
to table locks, which is what the manager does by default).
"""

from __future__ import annotations

import enum
from functools import lru_cache
from typing import Optional


class ResourceKind(enum.Enum):
    TABLE = "table"
    PAGE = "page"
    ROW = "row"


#: Stable small-int code per kind, used in ResourceId's hash key.  The
#: key must contain only ints: int hashes are pure functions of the
#: value, while str hashes depend on PYTHONHASHSEED (and hash(None) on
#: the interpreter), which would make set-of-ResourceId iteration order
#: -- and therefore event ordering -- vary between processes.
_KIND_CODE = {ResourceKind.TABLE: 0, ResourceKind.PAGE: 1, ResourceKind.ROW: 2}


class ResourceId:
    """Identifies one lockable object.

    Hash and equality are computed once at construction (resource ids
    are dictionary keys on the simulation's hottest path).  A slotted
    plain class rather than a frozen dataclass: one id is built per row
    lock request, and the frozen-dataclass ``object.__setattr__`` init
    was measurable there.  Treat instances as immutable.

    The hash is a pure function of the id's value (an all-int key), so
    any hash-ordered container of resource ids iterates identically in
    every process -- a requirement for cross-process determinism of the
    simulation (see docs/PERFORMANCE.md).
    """

    __slots__ = (
        "kind", "table_id", "page_id", "row_id",
        "is_table", "is_row", "_key", "_hash",
    )

    def __init__(
        self,
        kind: ResourceKind,
        table_id: int,
        page_id: Optional[int] = None,
        row_id: Optional[int] = None,
    ) -> None:
        if table_id < 0:
            raise ValueError(f"table_id must be non-negative, got {table_id}")
        if page_id is not None and page_id < 0:
            raise ValueError(f"page_id must be non-negative, got {page_id}")
        if row_id is not None and row_id < 0:
            raise ValueError(f"row_id must be non-negative, got {row_id}")
        if kind is ResourceKind.TABLE:
            if page_id is not None or row_id is not None:
                raise ValueError("table resource must not carry page/row ids")
        elif kind is ResourceKind.PAGE:
            if page_id is None or row_id is not None:
                raise ValueError("page resource needs page_id and no row_id")
        elif kind is ResourceKind.ROW:
            if row_id is None:
                raise ValueError("row resource needs row_id")
        self.kind = kind
        self.table_id = table_id
        self.page_id = page_id
        self.row_id = row_id
        # Plain attributes, not properties: kind tests sit on the
        # per-acquire and per-release hot paths.
        self.is_table = kind is ResourceKind.TABLE
        self.is_row = kind is ResourceKind.ROW
        key = (
            _KIND_CODE[kind],
            table_id,
            -1 if page_id is None else page_id,
            -1 if row_id is None else row_id,
        )
        self._key = key
        self._hash = hash(key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceId):
            return NotImplemented
        return self._key == other._key

    def table(self) -> "ResourceId":
        """The table resource containing this resource."""
        if self.is_table:
            return self
        return table_resource(self.table_id)

    def __repr__(self) -> str:
        if self.kind is ResourceKind.TABLE:
            return f"T{self.table_id}"
        if self.kind is ResourceKind.PAGE:
            return f"T{self.table_id}.P{self.page_id}"
        return f"T{self.table_id}.R{self.row_id}"


@lru_cache(maxsize=None)
def table_resource(table_id: int) -> ResourceId:
    """Resource id for a whole table (cached; tables are few)."""
    return ResourceId(ResourceKind.TABLE, table_id)


def row_resource(table_id: int, row_id: int) -> ResourceId:
    """Resource id for one row of a table."""
    return ResourceId(ResourceKind.ROW, table_id, row_id=row_id)


def page_resource(table_id: int, page_id: int) -> ResourceId:
    """Resource id for one page of a table."""
    return ResourceId(ResourceKind.PAGE, table_id, page_id=page_id)
