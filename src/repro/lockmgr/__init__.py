"""The DB2-style lock manager substrate.

Implements the structures the paper describes in section 2.2:

* lock memory allocated in 128 KB blocks chained in a list whose head is
  reused first, so under partial demand entirely-free blocks accumulate
  at the tail (:mod:`repro.lockmgr.blocks`),
* row / table locks with intent modes, a compatibility matrix and FIFO
  convoys as in Figure 3 (:mod:`repro.lockmgr.modes`,
  :mod:`repro.lockmgr.locks`),
* per-application lock accounting, the ``lockPercentPerApplication``
  (MAXLOCKS) trigger and row-to-table lock escalation
  (:mod:`repro.lockmgr.manager`, :mod:`repro.lockmgr.escalation`).
"""

from repro.lockmgr.blocks import LockBlock, LockBlockChain
from repro.lockmgr.detector import DeadlockDetector
from repro.lockmgr.escalation import EscalationOutcome, EscalationStats
from repro.lockmgr.isolation import IsolationLevel
from repro.lockmgr.locks import LockObject
from repro.lockmgr.manager import (
    LockListFullError,
    LockManager,
    LockManagerStats,
    LockTimeoutError,
)
from repro.lockmgr.modes import LockMode, compatible, supremum
from repro.lockmgr.resources import row_resource, table_resource
from repro.lockmgr.tracing import LockTrace, TraceEvent

__all__ = [
    "LockBlock",
    "LockBlockChain",
    "DeadlockDetector",
    "IsolationLevel",
    "EscalationOutcome",
    "EscalationStats",
    "LockObject",
    "LockListFullError",
    "LockManager",
    "LockManagerStats",
    "LockTimeoutError",
    "LockMode",
    "compatible",
    "supremum",
    "row_resource",
    "table_resource",
    "LockTrace",
    "TraceEvent",
]
