"""Structured tracing of lock manager activity.

Attach a :class:`LockTrace` to a :class:`~repro.lockmgr.manager.LockManager`
to capture a bounded, structured log of locking events -- grants,
waits, conversions, escalations, deadlocks, synchronous growth.  Useful
for debugging workloads, for teaching (the Figure 3 convoy is clearly
visible in a trace), and for offline analysis of contention.

Tracing is off by default and costs a single ``is None`` check per
event when disabled.

Example::

    trace = LockTrace(capacity=10_000)
    manager.tracer = trace
    ... run the simulation ...
    for event in trace.query(kind="escalation"):
        print(event)
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import asdict, dataclass
from typing import Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One structured lock manager event."""

    time: float
    kind: str
    app_id: int
    detail: str = ""
    #: Resource the event concerns (repr form, e.g. ``"T0.R7"``), empty
    #: for events without a single resource (release, sync-growth).
    resource: str = ""
    #: Structured magnitude of the event where one exists -- wait
    #: duration in seconds (``wait-end``, ``timeout``, ``deadlock``),
    #: blocks granted (``sync-growth``), structures freed
    #: (``escalation``, ``release``); 0.0 otherwise.  Lets offline
    #: consumers (the JSONL exporter foremost) avoid parsing ``detail``.
    value: float = 0.0

    def __str__(self) -> str:
        return f"[{self.time:10.3f}s] {self.kind:<12s} app={self.app_id:<5d} {self.detail}"


class LockTrace:
    """A bounded ring buffer of :class:`TraceEvent` records.

    Parameters
    ----------
    capacity:
        Maximum events retained; older events are evicted (counters keep
        counting).  ``None`` retains everything -- use only for short
        runs.
    """

    #: Event kinds the lock manager emits.
    KINDS = (
        "grant",
        "wait-begin",
        "wait-end",
        "convert",
        "release",
        "escalation",
        "deadlock",
        "timeout",
        "sync-growth",
        "lock-list-full",
    )

    def __init__(self, capacity: Optional[int] = 10_000) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._counts: Counter = Counter()

    def emit(
        self,
        time: float,
        kind: str,
        app_id: int,
        detail: str = "",
        resource: str = "",
        value: float = 0.0,
    ) -> None:
        """Record one event (called by the lock manager)."""
        self._events.append(TraceEvent(time, kind, app_id, detail, resource, value))
        self._counts[kind] += 1

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def count(self, kind: str) -> int:
        """Total events of ``kind`` ever emitted (eviction-proof)."""
        return self._counts.get(kind, 0)

    def query(
        self,
        kind: Optional[str] = None,
        app_id: Optional[int] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
        resource: Optional[str] = None,
    ) -> Iterator[TraceEvent]:
        """Retained events filtered by kind, application, time window
        and resource (repr form, e.g. ``"T0.R7"``)."""
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if app_id is not None and event.app_id != app_id:
                continue
            if resource is not None and event.resource != resource:
                continue
            if not since <= event.time <= until:
                continue
            yield event

    def to_dicts(self, **query_kwargs) -> List[Dict[str, object]]:
        """The retained events as plain dicts (JSONL/export friendly).

        Keyword arguments are forwarded to :meth:`query`, so
        ``trace.to_dicts(kind="escalation")`` exports one event family.
        """
        return [asdict(event) for event in self.query(**query_kwargs)]

    def tail(self, n: int = 20) -> str:
        """The last ``n`` retained events, formatted one per line."""
        events = list(self._events)[-n:]
        return "\n".join(str(e) for e in events)

    def summary(self) -> str:
        """Counts per kind, one line."""
        parts = [f"{kind}={self._counts[kind]}" for kind in sorted(self._counts)]
        return "LockTrace(" + ", ".join(parts) + ")"

    def write_csv(self, path: str) -> None:
        """Dump the retained events to ``path`` for external analysis."""
        import csv

        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time", "kind", "app_id", "resource", "detail", "value"])
            for event in self._events:
                writer.writerow(
                    [event.time, event.kind, event.app_id,
                     event.resource, event.detail, event.value]
                )
