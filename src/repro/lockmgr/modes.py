"""Lock modes, the compatibility matrix and the conversion lattice.

We implement the six classic multi-granularity modes used by DB2 for
tables and rows:

=====  =============================  ==========================
Mode   Name                           Typical use
=====  =============================  ==========================
IS     intent share                   table lock while reading rows
IX     intent exclusive               table lock while updating rows
S      share                          read a whole table / one row
SIX    share + intent exclusive       scan a table while updating some rows
U      update                         read with intent to update (row)
X      exclusive                      write (row or table)
=====  =============================  ==========================

Compatibility follows the standard Gray et al. multi-granularity matrix
(with DB2's U mode: U is compatible with S/IS readers but not with
another U, so two intending updaters serialize).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Tuple


class LockMode(enum.Enum):
    """A lock mode; ``strength`` orders modes roughly by restrictiveness."""

    IS = "IS"
    IX = "IX"
    S = "S"
    SIX = "SIX"
    U = "U"
    X = "X"

    @property
    def strength(self) -> int:
        return _STRENGTH[self]

    @property
    def is_intent(self) -> bool:
        """True for the pure intent modes IS and IX."""
        return self in (LockMode.IS, LockMode.IX)

    @property
    def is_write(self) -> bool:
        """True for modes that permit modification (IX, SIX, U, X).

        Used to decide whether escalation must target an X table lock.
        """
        return self in (LockMode.IX, LockMode.SIX, LockMode.U, LockMode.X)

    def __repr__(self) -> str:
        return f"LockMode.{self.name}"


_STRENGTH: Dict[LockMode, int] = {
    LockMode.IS: 1,
    LockMode.IX: 2,
    LockMode.S: 3,
    LockMode.SIX: 4,
    LockMode.U: 5,
    LockMode.X: 6,
}

#: Pairs of modes that may be held concurrently by different applications.
_COMPATIBLE: FrozenSet[Tuple[LockMode, LockMode]] = frozenset(
    {
        (LockMode.IS, LockMode.IS),
        (LockMode.IS, LockMode.IX),
        (LockMode.IS, LockMode.S),
        (LockMode.IS, LockMode.SIX),
        (LockMode.IS, LockMode.U),
        (LockMode.IX, LockMode.IX),
        (LockMode.S, LockMode.S),
        (LockMode.S, LockMode.U),
    }
)


# Performance: the compatibility check sits on the hottest path of the
# simulation, so the symmetric matrix is baked into per-mode bitmasks
# (attribute lookups avoid enum hashing entirely).
def _bake_bitmasks() -> None:
    for i, mode in enumerate(LockMode):
        mode._bit = 1 << i  # type: ignore[attr-defined]
    for mode in LockMode:
        mask = 0
        for other in LockMode:
            if (mode, other) in _COMPATIBLE or (other, mode) in _COMPATIBLE:
                mask |= other._bit  # type: ignore[attr-defined]
        mode._compat_mask = mask  # type: ignore[attr-defined]


_bake_bitmasks()


def compatible(held: LockMode, requested: LockMode) -> bool:
    """True when ``requested`` may be granted alongside ``held``.

    The matrix is the symmetric closure of the classic multi-granularity
    matrix with (S, U) compatible and (U, U), (U, X) incompatible: a U
    holder tolerates share readers, but two intending updaters conflict.
    """
    return bool(held._compat_mask & requested._bit)  # type: ignore[attr-defined]


#: Least upper bound for lock conversion.  When an application already
#: holds mode A on a resource and requests mode B, it ends up holding
#: sup(A, B).  This is the classic conversion lattice: IS < {IX, S} ;
#: sup(IX, S) = SIX ; U behaves as a read lock upgradeable to X.
_SUPREMUM: Dict[Tuple[LockMode, LockMode], LockMode] = {}


def _fill_supremum() -> None:
    order = {
        LockMode.IS: {LockMode.IS},
        LockMode.IX: {LockMode.IS, LockMode.IX},
        LockMode.S: {LockMode.IS, LockMode.S},
        LockMode.U: {LockMode.IS, LockMode.S, LockMode.U},
        LockMode.SIX: {LockMode.IS, LockMode.IX, LockMode.S, LockMode.SIX},
        LockMode.X: set(LockMode),
    }

    def leq(a: LockMode, b: LockMode) -> bool:
        return a in order[b]

    for a in LockMode:
        for b in LockMode:
            candidates = [m for m in LockMode if leq(a, m) and leq(b, m)]
            best = min(candidates, key=lambda m: len(order[m]))
            _SUPREMUM[(a, b)] = best


_fill_supremum()


# Index-table variants of supremum/covers for the hot path.
def _bake_tables() -> None:
    modes = list(LockMode)
    for i, mode in enumerate(modes):
        mode._idx = i  # type: ignore[attr-defined]
    n = len(modes)
    sup_table = [[None] * n for _ in range(n)]
    covers_table = [[False] * n for _ in range(n)]
    for a in modes:
        for b in modes:
            sup = _SUPREMUM[(a, b)]
            sup_table[a._idx][b._idx] = sup  # type: ignore[attr-defined]
            covers_table[a._idx][b._idx] = sup is a  # type: ignore[attr-defined]
    global _SUP_TABLE, _COVERS_TABLE
    _SUP_TABLE = sup_table
    _COVERS_TABLE = covers_table


_SUP_TABLE: list = []
_COVERS_TABLE: list = []
_bake_tables()


def supremum(a: LockMode, b: LockMode) -> LockMode:
    """The weakest mode at least as strong as both ``a`` and ``b``."""
    return _SUP_TABLE[a._idx][b._idx]  # type: ignore[attr-defined]


def covers(held: LockMode, requested: LockMode) -> bool:
    """True when holding ``held`` already grants ``requested``'s rights."""
    return _COVERS_TABLE[held._idx][requested._idx]  # type: ignore[attr-defined]


def intent_mode_for_row(row_mode: LockMode) -> LockMode:
    """The table intent mode required before taking a row lock.

    Reading rows (S/IS row locks) needs IS on the table; any modifying
    row mode (U, X) needs IX.
    """
    if row_mode in (LockMode.S, LockMode.IS):
        return LockMode.IS
    if row_mode in (LockMode.U, LockMode.X, LockMode.IX, LockMode.SIX):
        return LockMode.IX
    raise ValueError(f"unsupported row lock mode {row_mode}")


def escalation_target_mode(row_modes) -> LockMode:
    """Table mode that subsumes a set of row modes during escalation.

    If any row lock is a write lock the table must be locked X, else S
    suffices (paper section 1: escalation promotes "one or more row
    level locks to either a page level lock or a table level lock").
    """
    modes = list(row_modes)
    if not modes:
        raise ValueError("cannot escalate zero row locks")
    if any(m.is_write for m in modes):
        return LockMode.X
    return LockMode.S
