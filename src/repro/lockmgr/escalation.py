"""Lock escalation bookkeeping.

Escalation promotes an application's row locks on one table to a single
table lock, dramatically shrinking lock memory use at a severe cost to
concurrency (paper section 1).  The mechanics live in
:class:`repro.lockmgr.manager.LockManager`; this module holds the
observable outcome records the experiments and tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.lockmgr.modes import LockMode


@dataclass
class EscalationOutcome:
    """Record of one escalation attempt."""

    time: float
    app_id: int
    table_id: int
    #: Why escalation was triggered: "maxlocks" when the application
    #: exceeded lockPercentPerApplication, "memory" when the lock list
    #: was full and could not grow.
    reason: str
    #: Table mode acquired (S for read-only row locks, X otherwise).
    target_mode: LockMode
    #: Row-lock structures released by the escalation.
    freed_slots: int
    #: Whether the escalating application had to wait for the table lock.
    waited: bool


@dataclass
class EscalationStats:
    """Aggregate escalation counters for one lock manager."""

    outcomes: List[EscalationOutcome] = field(default_factory=list)
    failures: int = 0

    @property
    def count(self) -> int:
        """Completed escalations."""
        return len(self.outcomes)

    @property
    def exclusive_count(self) -> int:
        """Escalations that took an X table lock (the destructive kind)."""
        return sum(1 for o in self.outcomes if o.target_mode is LockMode.X)

    @property
    def freed_slots_total(self) -> int:
        return sum(o.freed_slots for o in self.outcomes)

    def by_reason(self, reason: str) -> int:
        return sum(1 for o in self.outcomes if o.reason == reason)

    def record(self, outcome: EscalationOutcome) -> None:
        self.outcomes.append(outcome)

    @classmethod
    def merged(cls, parts: Iterable["EscalationStats"]) -> "EscalationStats":
        """Point-in-time aggregate over several managers (sharding).

        Outcomes are ordered by time with the source order as the
        tie-break, so the merged record reads like one manager's
        history.  The result is a snapshot -- it does not track the
        sources afterwards.
        """
        merged = cls()
        for stats in parts:
            merged.outcomes.extend(stats.outcomes)
            merged.failures += stats.failures
        merged.outcomes.sort(key=lambda o: o.time)
        return merged
