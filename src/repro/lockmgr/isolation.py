"""Isolation levels: how long read locks are held.

DB2's isolation levels differ (for this model's purposes) in the
lifetime of *share* locks:

* **RR / RS (repeatable read, read stability)** -- S row locks are held
  to commit: maximal lock memory demand.  This is the behaviour of the
  base lock manager and of the paper's reporting query, whose held row
  locks are exactly what drives the 60x lock-memory growth.
* **CS (cursor stability)** -- the DB2 default for OLTP: an S row lock
  is released as soon as the cursor moves off the row, so only one read
  lock is held at a time and steady-state lock demand comes mostly from
  write locks.
* **UR (uncommitted read)** -- readers take no row locks at all (only
  the table intent lock).

Write locks are always held to commit (two-phase commit requirement),
whatever the level.
"""

from __future__ import annotations

import enum


class IsolationLevel(enum.Enum):
    """DB2 isolation levels, ordered weakest to strongest."""

    UR = "uncommitted-read"
    CS = "cursor-stability"
    RS = "read-stability"
    RR = "repeatable-read"

    @property
    def takes_read_locks(self) -> bool:
        """UR readers lock nothing at row level."""
        return self is not IsolationLevel.UR

    @property
    def holds_read_locks_to_commit(self) -> bool:
        """RR/RS keep S locks; CS releases them as the cursor moves."""
        return self in (IsolationLevel.RS, IsolationLevel.RR)
