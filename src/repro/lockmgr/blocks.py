"""The 128 KB lock-memory block chain (paper section 2.2).

Lock memory is physically allocated in 128 KB blocks, each able to store
:data:`repro.units.LOCKS_PER_BLOCK` lock structures.  The blocks with
free slots form a list with these exact semantics from the paper:

* new lock structures are always taken from the **head** block;
* a block whose slots are exhausted leaves the list; when one of its
  structures is later freed, the block returns **to the head**;
* consequently, "if the locking demands of the database require only
  half of the allocated lock memory, memory blocks towards the end of
  the list will always be entirely free";
* a shrink request scans **from the end of the list** for blocks with no
  outstanding lock structures; if not enough freeable blocks exist, the
  scanned blocks are reintegrated and the request fails.

The chain is pure slot accounting -- it knows nothing about lock modes
or applications.  The lock manager stores, with each lock structure it
hands out, the :class:`LockBlock` the slot came from, and returns the
slot to that block on release.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.errors import MemoryAccountingError
from repro.units import LOCKS_PER_BLOCK, PAGES_PER_BLOCK

_block_ids = itertools.count(1)


class LockBlock:
    """One 128 KB allocation holding up to ``capacity`` lock structures."""

    __slots__ = ("block_id", "capacity", "used", "_prev", "_next", "_in_list")

    def __init__(self, capacity: int = LOCKS_PER_BLOCK) -> None:
        if capacity <= 0:
            raise ValueError(f"block capacity must be positive, got {capacity}")
        self.block_id = next(_block_ids)
        self.capacity = capacity
        self.used = 0
        self._prev: Optional["LockBlock"] = None
        self._next: Optional["LockBlock"] = None
        self._in_list = False

    @property
    def free(self) -> int:
        return self.capacity - self.used

    @property
    def is_empty(self) -> bool:
        """True when no lock structure in this block is outstanding."""
        return self.used == 0

    @property
    def is_full(self) -> bool:
        return self.used == self.capacity

    def __repr__(self) -> str:
        return (
            f"LockBlock(#{self.block_id}, used={self.used}/{self.capacity}, "
            f"in_list={self._in_list})"
        )


class LockBlockChain:
    """The list of lock-memory blocks with available slots.

    Maintains two views:

    * the *availability list* -- a doubly linked list of blocks with at
      least one free slot, allocated from the head (section 2.2), and
    * the set of all allocated blocks, full or not, for capacity
      accounting.
    """

    def __init__(self, initial_blocks: int = 0, capacity_per_block: int = LOCKS_PER_BLOCK) -> None:
        if initial_blocks < 0:
            raise ValueError(f"initial_blocks must be non-negative, got {initial_blocks}")
        self._capacity_per_block = capacity_per_block
        self._head: Optional[LockBlock] = None
        self._tail: Optional[LockBlock] = None
        self._all_blocks: set = set()
        self._used_slots = 0
        self._capacity_slots = 0  # cached sum over _all_blocks
        self.add_blocks(initial_blocks)

    # -- capacity accounting ---------------------------------------------

    @property
    def block_count(self) -> int:
        """All allocated 128 KB blocks (in the list or exhausted)."""
        return len(self._all_blocks)

    @property
    def capacity_slots(self) -> int:
        """Total lock structures the chain can currently store."""
        return self._capacity_slots

    @property
    def used_slots(self) -> int:
        """Outstanding lock structures."""
        return self._used_slots

    @property
    def free_slots(self) -> int:
        return self.capacity_slots - self._used_slots

    @property
    def allocated_pages(self) -> int:
        """Lock memory footprint in 4 KB pages."""
        return self.block_count * PAGES_PER_BLOCK

    def free_fraction(self) -> float:
        """Fraction of allocated lock structures that are unused.

        Returns 1.0 for an empty chain (nothing allocated means nothing
        is in use).
        """
        capacity = self.capacity_slots
        if capacity == 0:
            return 1.0
        return self.free_slots / capacity

    def entirely_free_blocks(self) -> int:
        """Blocks with zero outstanding structures (shrink candidates)."""
        return sum(1 for b in self._all_blocks if b.is_empty)

    # -- linked-list plumbing ----------------------------------------------

    def _push_head(self, block: LockBlock) -> None:
        if block._in_list:
            raise MemoryAccountingError(f"{block!r} is already in the list")
        block._prev = None
        block._next = self._head
        if self._head is not None:
            self._head._prev = block
        self._head = block
        if self._tail is None:
            self._tail = block
        block._in_list = True

    def _push_tail(self, block: LockBlock) -> None:
        if block._in_list:
            raise MemoryAccountingError(f"{block!r} is already in the list")
        block._next = None
        block._prev = self._tail
        if self._tail is not None:
            self._tail._next = block
        self._tail = block
        if self._head is None:
            self._head = block
        block._in_list = True

    def _unlink(self, block: LockBlock) -> None:
        if not block._in_list:
            raise MemoryAccountingError(f"{block!r} is not in the list")
        if block._prev is not None:
            block._prev._next = block._next
        else:
            self._head = block._next
        if block._next is not None:
            block._next._prev = block._prev
        else:
            self._tail = block._prev
        block._prev = block._next = None
        block._in_list = False

    def iter_list(self) -> List[LockBlock]:
        """The availability list, head to tail (for tests/inspection)."""
        out: List[LockBlock] = []
        node = self._head
        while node is not None:
            out.append(node)
            node = node._next
        return out

    # -- growth ----------------------------------------------------------------

    def add_blocks(self, count: int) -> int:
        """Allocate ``count`` new blocks, appended at the list tail.

        New blocks are entirely free; placing them at the tail preserves
        the invariant that free memory accumulates at the end of the
        list.  Returns the number of blocks added.
        """
        if count < 0:
            raise ValueError(f"block count must be non-negative, got {count}")
        for _ in range(count):
            block = LockBlock(self._capacity_per_block)
            self._all_blocks.add(block)
            self._capacity_slots += block.capacity
            self._push_tail(block)
        return count

    # -- slot allocation ---------------------------------------------------------

    def allocate_slot(self) -> LockBlock:
        """Take one lock structure from the head block.

        Returns the block the slot came from; the caller must hand the
        same block back to :meth:`free_slot` when the lock is released.
        Raises :class:`MemoryAccountingError` when no free slot exists
        (callers must check :attr:`free_slots`, or grow, first).
        """
        block = self._head
        if block is None:
            raise MemoryAccountingError("lock memory exhausted: no block with free slots")
        block.used += 1
        self._used_slots += 1
        if block.is_full:
            self._unlink(block)
        return block

    def free_slot(self, block: LockBlock) -> None:
        """Return one lock structure to ``block``.

        A block that was exhausted re-enters the list **at the head**, so
        it is the next block new requests are satisfied from (paper
        section 2.2).
        """
        if block not in self._all_blocks:
            raise MemoryAccountingError(f"{block!r} does not belong to this chain")
        if block.used == 0:
            raise MemoryAccountingError(f"{block!r} has no outstanding structures")
        was_full = block.is_full
        block.used -= 1
        self._used_slots -= 1
        if was_full:
            self._push_head(block)

    # -- shrink -------------------------------------------------------------------

    def release_blocks(self, count: int, partial: bool = False) -> int:
        """Free up to ``count`` entirely-empty blocks from the list tail.

        Implements the paper's shrink protocol: scan from the end of the
        list setting aside blocks with no outstanding structures.  With
        ``partial=False`` (the paper's behaviour) the request fails --
        the set-aside blocks are reintegrated and 0 is returned -- unless
        ``count`` empty blocks are found.  With ``partial=True`` whatever
        empty blocks were found are freed.

        Returns the number of blocks actually deallocated.
        """
        if count < 0:
            raise ValueError(f"block count must be non-negative, got {count}")
        if count == 0:
            return 0
        set_aside: List[LockBlock] = []
        node = self._tail
        while node is not None and len(set_aside) < count:
            candidate = node
            node = node._prev
            if candidate.is_empty:
                set_aside.append(candidate)
        if len(set_aside) < count and not partial:
            return 0  # reintegrate: we never unlinked, so nothing to undo
        for block in set_aside:
            self._unlink(block)
            self._all_blocks.remove(block)
            self._capacity_slots -= block.capacity
        return len(set_aside)

    def check_invariants(self) -> None:
        """Raise if internal accounting is inconsistent (used in tests)."""
        listed = self.iter_list()
        listed_set = set(listed)
        if len(listed) != len(listed_set):
            raise MemoryAccountingError("availability list contains a cycle or duplicate")
        for block in listed:
            if block.is_full:
                raise MemoryAccountingError(f"full block {block!r} is in the list")
            if block not in self._all_blocks:
                raise MemoryAccountingError(f"listed block {block!r} not in block set")
        for block in self._all_blocks:
            if not block.is_full and block not in listed_set:
                raise MemoryAccountingError(f"non-full block {block!r} missing from list")
            if not 0 <= block.used <= block.capacity:
                raise MemoryAccountingError(f"block {block!r} has invalid used count")
        total_used = sum(b.used for b in self._all_blocks)
        if total_used != self._used_slots:
            raise MemoryAccountingError(
                f"used-slot counter {self._used_slots} != per-block sum {total_used}"
            )
        total_capacity = sum(b.capacity for b in self._all_blocks)
        if total_capacity != self._capacity_slots:
            raise MemoryAccountingError(
                f"capacity counter {self._capacity_slots} != per-block sum "
                f"{total_capacity}"
            )

    def __repr__(self) -> str:
        return (
            f"LockBlockChain(blocks={self.block_count}, "
            f"used={self.used_slots}/{self.capacity_slots})"
        )
