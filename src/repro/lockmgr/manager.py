"""The lock manager: acquisition, convoys, escalation, adaptive MAXLOCKS.

This is the substrate the self-tuning controller acts on.  It combines:

* the 128 KB block chain for lock-structure storage (section 2.2),
* multi-granularity row/table locking with FIFO convoys (Figure 3),
* **synchronous growth**: when the chain has no free structure the
  manager asks its ``growth_provider`` (the tuning policy) for more
  blocks, allocated on demand from database overflow memory
  (section 3.3),
* **lock escalation**: triggered either when an application exceeds
  ``lockPercentPerApplication`` of total lock memory (MAXLOCKS) or when
  lock memory is full and cannot grow (section 2.2 / 3.5),
* the ``refreshPeriodForAppPercent`` discipline: the MAXLOCKS fraction
  is re-computed every 0x80 lock requests and on every resize
  (section 3.5).

Locking entry points are *generators*: client processes drive them with
``yield from`` so multi-step waits (intent lock, then row lock, possibly
an escalation wait in between) compose naturally in the DES.

Deadlocks are detected at wait time via a wait-for graph; the requester
is chosen as victim and sees :class:`repro.errors.DeadlockError`, which
client code answers with a rollback -- mirroring DB2's deadlock
detector.

Threading contract
------------------

The manager itself is *not* thread-safe; it assumes exactly one flow of
control mutates it at a time.  Two harnesses satisfy that contract:

* the DES, where processes interleave only at ``yield`` points on a
  single thread, and
* :class:`repro.service.LockService`, which runs every entry point --
  and every generator resumption -- under one mutex, parking request
  threads on a condition variable while their wait events are pending.

For that second harness the manager's blocking surface is deliberately
narrow: the only suspension points are ``yield``s of events created via
``self.env`` inside :meth:`_wait`, and the only cross-cutting callbacks
are ``growth_provider`` / ``maxlocks_provider`` / ``tracer`` / ``obs``,
all invoked synchronously under the caller's control.  Code added here
must preserve both properties (no hidden blocking, no re-entrant
callbacks that acquire locks).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.engine.des import Environment
from repro.errors import DeadlockError, LockManagerError
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.escalation import EscalationOutcome, EscalationStats
from repro.lockmgr.locks import HeldLock, LockObject, Waiter
from repro.lockmgr.modes import LockMode, covers, intent_mode_for_row, supremum
from repro.lockmgr.resources import ResourceId, row_resource, table_resource
from repro.units import LOCK_SIZE_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.instruments import LockManagerInstruments

#: Paper Table 1: lockPercentPerApplication refresh period, 0x80 requests.
REFRESH_PERIOD_FOR_APP_PERCENT = 0x80


class LockListFullError(LockManagerError):
    """Lock memory is exhausted and escalation could not free any.

    The analogue of DB2's SQL0912N; transactions receiving it roll back.
    """


class LockTimeoutError(LockManagerError):
    """A lock wait exceeded the configured LOCKTIMEOUT.

    The analogue of DB2's SQL0911N reason code 68; transactions
    receiving it roll back.
    """


@dataclass
class LockManagerStats:
    """Aggregate counters exposed to metrics and tests."""

    requests: int = 0
    immediate_grants: int = 0
    waits: int = 0
    wait_time_total: float = 0.0
    deadlocks: int = 0
    lock_timeouts: int = 0
    #: Waits withdrawn via :meth:`LockManager.cancel_wait` with a
    #: non-deadlock, non-timeout reason (live-service cancellation).
    cancelled_waits: int = 0
    lock_list_full_errors: int = 0
    sync_growth_blocks: int = 0
    peak_used_slots: int = 0
    escalations: EscalationStats = field(default_factory=EscalationStats)

    @classmethod
    def merged(cls, parts: "list[LockManagerStats]") -> "LockManagerStats":
        """Point-in-time aggregate over several managers (sharding).

        Every counter sums; ``peak_used_slots`` sums too, because each
        shard's chain is disjoint memory -- the shards' simultaneous
        peaks bound the aggregate peak from above, which is the
        conservative reading for capacity planning.  The result is a
        snapshot, not a live view.
        """
        merged = cls()
        for stats in parts:
            merged.requests += stats.requests
            merged.immediate_grants += stats.immediate_grants
            merged.waits += stats.waits
            merged.wait_time_total += stats.wait_time_total
            merged.deadlocks += stats.deadlocks
            merged.lock_timeouts += stats.lock_timeouts
            merged.cancelled_waits += stats.cancelled_waits
            merged.lock_list_full_errors += stats.lock_list_full_errors
            merged.sync_growth_blocks += stats.sync_growth_blocks
            merged.peak_used_slots += stats.peak_used_slots
        merged.escalations = EscalationStats.merged(
            [stats.escalations for stats in parts]
        )
        return merged


class LockManager:
    """Multi-granularity lock manager over a :class:`LockBlockChain`.

    Parameters
    ----------
    env:
        The DES environment (supplies the clock and wait events).
    chain:
        Block chain providing lock-structure storage.
    growth_provider:
        Optional callback ``(blocks_wanted) -> blocks_granted`` invoked
        when a request finds no free structure; the tuning policy uses
        it to grow lock memory synchronously from overflow.
    maxlocks_provider:
        Optional callback ``() -> fraction`` returning the current
        lockPercentPerApplication as a fraction in (0, 1]; consulted on
        every resize and every ``refresh_period`` requests.
    maxlocks_fraction:
        Static fraction used when no provider is given (DB2's historic
        default MAXLOCKS was 10 %, i.e. 0.10).
    """

    def __init__(
        self,
        env: Environment,
        chain: LockBlockChain,
        growth_provider: Optional[Callable[[int], int]] = None,
        maxlocks_provider: Optional[Callable[[], float]] = None,
        maxlocks_fraction: float = 0.98,
        refresh_period: int = REFRESH_PERIOD_FOR_APP_PERCENT,
        lock_timeout_s: Optional[float] = None,
    ) -> None:
        if not 0.0 < maxlocks_fraction <= 1.0:
            raise ValueError(
                f"maxlocks_fraction must be in (0, 1], got {maxlocks_fraction}"
            )
        if refresh_period <= 0:
            raise ValueError(f"refresh_period must be positive, got {refresh_period}")
        if lock_timeout_s is not None and lock_timeout_s <= 0:
            raise ValueError(
                f"lock_timeout_s must be positive or None, got {lock_timeout_s}"
            )
        self.env = env
        self.chain = chain
        self.growth_provider = growth_provider
        self.maxlocks_provider = maxlocks_provider
        self.maxlocks_fraction = maxlocks_fraction
        self.refresh_period = refresh_period
        #: LOCKTIMEOUT: maximum lock-wait time before the request fails
        #: with :class:`LockTimeoutError` (None = wait forever, DB2's
        #: default of -1).
        self.lock_timeout_s = lock_timeout_s
        #: Applications that prefer escalation over lock-memory growth
        #: (the paper's section 6.1 future-work extension; see
        #: :meth:`set_escalation_preference`).
        self._escalation_preferred: set = set()
        #: Optional structured tracing (repro.lockmgr.tracing.LockTrace).
        self.tracer = None
        #: Optional hot-path metrics
        #: (repro.obs.instruments.LockManagerInstruments).  Like the
        #: tracer, disabled costs one ``is None`` check per probe site.
        self.obs: Optional["LockManagerInstruments"] = None
        #: Optional wait-event profiler (repro.obs.waits); records every
        #: lock wait with blocker attribution plus sync-growth stalls.
        #: Same contract: disabled costs one ``is None`` check per site.
        self.wait_profiler = None
        #: Optional incident recorder (repro.obs.incidents); captures
        #: deadlock victims and escalations with forensic context.
        self.incidents = None
        #: "immediate" (default): a cycle-closing request fails on the
        #: spot.  "periodic": cycles persist until a
        #: :class:`repro.lockmgr.detector.DeadlockDetector` pass picks a
        #: victim (DB2's DLCHKTIME model).
        self.deadlock_detection = "immediate"
        self.stats = LockManagerStats()
        self._objects: Dict[ResourceId, LockObject] = {}
        self._app_held: Dict[int, Set[ResourceId]] = {}
        #: app -> table -> {row resource -> its HeldLock}.  Storing the
        #: grant itself (not just the resource) lets escalation read row
        #: modes without a lock-object lookup per row; the HeldLock's
        #: mode field tracks in-place upgrades automatically.
        self._app_row_tables: Dict[int, Dict[int, Dict[ResourceId, HeldLock]]] = {}
        #: Incremental row-lock totals (app -> count) kept in lockstep
        #: with ``_app_row_tables`` so ``app_row_lock_count`` is O(1).
        self._app_row_counts: Dict[int, int] = {}
        #: Inverted index for victim selection: row count -> ordered set
        #: of apps at that count (dict used as an ordered set), plus a
        #: possibly-stale upper bound walked down lazily.  Makes
        #: ``_memory_escalation_victim`` O(1) amortized instead of a
        #: scan over every application's tables.
        self._row_count_buckets: Dict[int, Dict[int, None]] = {}
        self._max_row_count = 0
        #: app -> tie-break stamp: the order apps first acquired a row
        #: lock (since their last ``release_all``), mirroring the old
        #: first-in-iteration-order victim choice among equal counts.
        self._app_row_seq: Dict[int, int] = {}
        self._row_seq_counter = 0
        self._app_slots: Dict[int, int] = {}
        self._waiting_on: Dict[int, Tuple[LockObject, Waiter]] = {}
        #: Objects with a non-empty waiter queue, maintained on enqueue
        #: (here) and dequeue (in ``_pump``): the deadlock detector and
        #: snapshot reports read it instead of scanning every object.
        self._contended: Dict[ResourceId, LockObject] = {}
        self._requests_since_refresh = 0

    # -- introspection -----------------------------------------------------

    @property
    def used_slots(self) -> int:
        return self.chain.used_slots

    @property
    def used_bytes(self) -> int:
        return self.chain.used_slots * LOCK_SIZE_BYTES

    @property
    def allocated_pages(self) -> int:
        return self.chain.allocated_pages

    def app_slots(self, app_id: int) -> int:
        """Lock structures currently charged to ``app_id``."""
        return self._app_slots.get(app_id, 0)

    def app_row_lock_count(self, app_id: int) -> int:
        """Row locks currently held by ``app_id`` (across all tables)."""
        return self._app_row_counts.get(app_id, 0)

    def holder_mode(self, app_id: int, resource: ResourceId) -> Optional[LockMode]:
        obj = self._objects.get(resource)
        return obj.holder_mode(app_id) if obj else None

    def waiting_apps(self) -> Set[int]:
        return set(self._waiting_on)

    def has_waiters(self) -> bool:
        """True when any application is enqueued (safe as a dirty read:
        a ``len`` of the wait map, no iteration)."""
        return len(self._waiting_on) > 0

    def contended_objects(self) -> Dict[ResourceId, LockObject]:
        """Live view of the objects with queued waiters (do not mutate)."""
        return self._contended

    def maxlocks_limit_slots(self) -> int:
        """Structures one application may hold before escalation triggers."""
        return max(1, int(self.maxlocks_fraction * self.chain.capacity_slots))

    # -- MAXLOCKS refresh discipline (section 3.5) ---------------------------

    def refresh_maxlocks(self) -> None:
        """Re-read lockPercentPerApplication from the provider."""
        if self.maxlocks_provider is not None:
            fraction = float(self.maxlocks_provider())
            if not 0.0 < fraction <= 1.0:
                raise LockManagerError(
                    f"maxlocks provider returned invalid fraction {fraction}"
                )
            self.maxlocks_fraction = fraction
        self._requests_since_refresh = 0

    def _tick_refresh(self) -> None:
        self._requests_since_refresh += 1
        if self._requests_since_refresh >= self.refresh_period:
            self.refresh_maxlocks()

    def _trace(
        self,
        kind: str,
        app_id: int,
        detail: str = "",
        resource: str = "",
        value: float = 0.0,
    ) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.env.now, kind, app_id, detail, resource, value)

    def _record_wait(self, duration: float) -> None:
        """Account one finished lock wait (any exit: grant, deadlock,
        timeout)."""
        self.stats.wait_time_total += duration
        if self.obs is not None:
            self.obs.wait_latency.observe(duration)

    # -- public locking API ---------------------------------------------------

    def lock_table(self, app_id: int, table_id: int, mode: LockMode):
        """Generator: acquire a table lock (drive with ``yield from``)."""
        yield from self._acquire(app_id, table_resource(table_id), mode)

    def lock_row(self, app_id: int, table_id: int, row_id: int, mode: LockMode):
        """Generator: acquire a row lock plus the covering intent lock.

        If the application's table lock already covers the requested row
        mode (e.g. after an escalation) no row structure is allocated.
        """
        table_res = table_resource(table_id)
        intent = intent_mode_for_row(mode)
        # Fast path: the covering intent lock is usually already held.
        tobj = self._objects.get(table_res)
        theld = tobj.granted.get(app_id) if tobj is not None else None
        if theld is not None and covers(theld.mode, intent):
            theld.count += 1
            self.stats.requests += 1
            self.stats.immediate_grants += 1
            self._tick_refresh()
            table_mode = theld.mode
        else:
            yield from self._acquire(app_id, table_res, intent)
            table_mode = self.holder_mode(app_id, table_res)
        if table_mode is not None and covers(table_mode, mode):
            return
        yield from self._acquire(app_id, row_resource(table_id, row_id), mode)

    def lock_row_fast(self, app_id: int, table_id: int, row_id: int, mode: LockMode) -> bool:
        """Non-blocking attempt at :meth:`lock_row`'s immediate-grant path.

        Returns True when the row lock (and covering intent lock) was
        granted with accounting **byte-identical** to driving the
        :meth:`lock_row` generator to completion: same counter bumps,
        same refresh ticks, same structures charged.  This covers fresh
        grants, re-grants of covered locks, and immediate *conversions*
        (e.g. S->X on a held row with no incompatible co-holders --
        conversions jump the waiter queue exactly as :meth:`_convert`
        does).  Returns False -- having mutated *nothing* -- whenever
        the request could wait, escalate, grow or trace, so the caller
        falls back to the generator.  The two-phase shape (plan both
        the table and row steps, then commit) is what keeps the
        mutate-nothing contract: no step is applied until both are
        known to complete immediately.  The live service calls this
        under its mutex to skip generator construction on the
        (dominant) immediate path; the DES always drives the generator.
        """
        if self.tracer is not None:
            return False  # slow path keeps the trace stream canonical
        table_res = table_resource(table_id)
        tobj = self._objects.get(table_res)
        theld = tobj.granted.get(app_id) if tobj is not None else None
        intent = intent_mode_for_row(mode)
        # -- plan the table step --
        if theld is not None:
            if covers(theld.mode, intent):
                t_convert = False
                t_mode_after = theld.mode
            elif tobj.others_compatible(app_id, intent):
                # conversion: queue-jumps like _convert, needs no slot
                t_convert = True
                t_mode_after = supremum(theld.mode, intent)
            else:
                return False  # the conversion would wait
            fresh_intent = False
        else:
            if tobj is not None and (
                tobj.waiters or not tobj.others_compatible(app_id, intent)
            ):
                return False  # the intent grant itself would wait
            fresh_intent = True
            t_convert = False
            t_mode_after = intent
        if covers(t_mode_after, mode):
            # The table lock (already or once strengthened) covers the
            # row access: the generator stops after the table step.
            if fresh_intent:
                return False  # cannot happen with real intent modes
            self.stats.requests += 1
            self.stats.immediate_grants += 1
            self._tick_refresh()
            if t_convert:
                tobj.upgrade_grant(app_id, intent)  # bumps theld.count
            else:
                theld.count += 1
            return True
        # -- plan the row step --
        res = row_resource(table_id, row_id)
        obj = self._objects.get(res)
        held = obj.granted.get(app_id) if obj is not None else None
        r_convert = False
        if held is not None:
            if fresh_intent:
                return False  # row held without intent: slow path
            if not covers(held.mode, mode):
                if not obj.others_compatible(app_id, mode):
                    return False  # the conversion would wait
                r_convert = True
            fresh_row = False
        else:
            if obj is not None and (
                obj.waiters or not obj.others_compatible(app_id, mode)
            ):
                return False  # the row grant would wait
            fresh_row = True
        need = int(fresh_intent) + int(fresh_row)
        if need:
            if self.chain.free_slots < need:
                return False  # sync growth / escalation: slow path
            if (
                self._app_slots.get(app_id, 0) + need
                > self.maxlocks_limit_slots()
            ):
                return False  # would escalate: slow path
        # Commit: from here the outcome is the generator's, verbatim.
        self.stats.requests += 2
        self.stats.immediate_grants += 2
        self._tick_refresh()
        self._tick_refresh()
        if fresh_intent:
            if tobj is None:
                tobj = self._objects[table_res] = LockObject(table_res)
            tblock = self.chain.allocate_slot()
            self._charge_slot(app_id)
            self._note_held(
                app_id, table_res, tobj.add_grant(app_id, intent, block=tblock)
            )
        elif t_convert:
            tobj.upgrade_grant(app_id, intent)  # bumps theld.count
        else:
            theld.count += 1
        if not fresh_row:
            if r_convert:
                obj.upgrade_grant(app_id, mode)  # bumps held.count
            else:
                held.count += 1
            return True
        if obj is None:
            obj = self._objects[res] = LockObject(res)
        block = self.chain.allocate_slot()
        self._charge_slot(app_id)
        if self.chain.used_slots > self.stats.peak_used_slots:
            self.stats.peak_used_slots = self.chain.used_slots
        self._note_held(app_id, res, obj.add_grant(app_id, mode, block=block))
        return True

    def release_all(self, app_id: int) -> int:
        """Release every lock held or awaited by ``app_id`` (strict 2PL).

        Returns the number of lock structures freed.  Called at commit
        and at rollback; also cleans up queued waiters, so it is safe to
        call after a :class:`DeadlockError`.
        """
        freed = 0
        # Cancel queued waits first (rollback while enqueued elsewhere).
        entry = self._waiting_on.pop(app_id, None)
        if entry is not None:
            obj, _waiter = entry
            for waiter in obj.remove_waiter(app_id):
                if waiter.block is not None:
                    self.chain.free_slot(waiter.block)
                    self._uncharge_slot(app_id)
                    freed += 1
            if self.wait_profiler is not None:
                # The app was parked when its session unwound; close the
                # open wait so quiesce leaves no dangling lock wait.
                self.wait_profiler.end_lock_wait(app_id, "cancelled")
            self._pump(obj)
            self._gc_object(obj)
        # Bulk path: every per-app index is discarded wholesale, so the
        # per-resource surgery of _release_one/_forget_held (held-set
        # discard, row-table pruning, per-row bucket moves, per-slot
        # uncharge) would be pure churn.  The same invariants are
        # checked against the same end state.
        held_set = self._app_held.pop(app_id, None)
        self._app_row_tables.pop(app_id, None)
        self._app_row_seq.pop(app_id, None)
        old_rows = self._app_row_counts.pop(app_id, 0)
        if old_rows > 0:
            bucket = self._row_count_buckets.get(old_rows)
            if bucket is not None:
                bucket.pop(app_id, None)
                if not bucket:
                    del self._row_count_buckets[old_rows]
        rows_released = 0
        held_frees = 0
        if held_set:
            objects = self._objects
            chain = self.chain
            for resource in held_set:
                obj = objects.get(resource)
                if obj is None:
                    raise LockManagerError(
                        f"app {app_id} does not hold {resource}"
                    )
                held = obj.remove_grant(app_id)
                if held.block is not None:
                    chain.free_slot(held.block)
                    held_frees += 1
                if resource.is_row:
                    rows_released += 1
                self._pump(obj)
                if obj.is_idle:
                    objects.pop(resource, None)
        freed += held_frees
        if old_rows != rows_released:
            raise LockManagerError(
                f"app {app_id} row-lock accounting nonzero after release_all"
            )
        # The waiter section above already uncharged its frees, so the
        # remaining per-app slot charge must equal the held-block frees.
        slots = self._app_slots.pop(app_id, 0)
        if slots != held_frees:
            self._app_slots[app_id] = slots
            raise LockManagerError(
                f"app {app_id} slot accounting nonzero after release_all: "
                f"{slots - held_frees}"
            )
        if self.tracer is not None and freed:
            self._trace("release", app_id, f"{freed} structures", value=float(freed))
        return freed

    # -- core acquisition ---------------------------------------------------------

    def _acquire(self, app_id: int, resource: ResourceId, mode: LockMode):
        self.stats.requests += 1
        self._tick_refresh()
        obj = self._objects.get(resource)
        if obj is None:
            obj = self._objects[resource] = LockObject(resource)
        held = obj.granted.get(app_id)
        if held is not None:
            if covers(held.mode, mode):
                held.count += 1
                self.stats.immediate_grants += 1
                return
            yield from self._convert(app_id, obj, mode)
            return
        if (
            self.chain.free_slots == 0
            or self._app_slots.get(app_id, 0) + 1 > self.maxlocks_limit_slots()
        ):
            yield from self._ensure_slot_available(app_id, resource)
            # Escalation inside _ensure_slot_available may have granted
            # this application a covering table lock; re-check before
            # allocating a structure.
            if resource.is_row:
                table_mode = self.holder_mode(app_id, resource.table())
                if table_mode is not None and covers(table_mode, mode):
                    self.stats.immediate_grants += 1
                    return
            obj = self._objects.get(resource)
            if obj is None:  # released and garbage-collected while we waited
                obj = self._objects[resource] = LockObject(resource)
            held = obj.granted.get(app_id)
            if held is not None:  # appeared while we escalated or waited
                if covers(held.mode, mode):
                    held.count += 1
                    self.stats.immediate_grants += 1
                    return
                yield from self._convert(app_id, obj, mode)
                return
        block = self.chain.allocate_slot()
        self._charge_slot(app_id)
        if self.chain.used_slots > self.stats.peak_used_slots:
            self.stats.peak_used_slots = self.chain.used_slots
        if not obj.waiters and obj.others_compatible(app_id, mode):
            held = obj.add_grant(app_id, mode, block=block)
            self._note_held(app_id, resource, held)
            self.stats.immediate_grants += 1
            if self.tracer is not None:
                self._trace("grant", app_id, f"{mode.name} {resource}", str(resource))
            return
        waiter = Waiter(
            app_id, mode, self.env.event(), block=block,
            converting=False, enqueued_at=self.env.now,
        )
        obj.enqueue(waiter)
        self._contended[resource] = obj
        # No _note_held here: a waited grant is recorded by _pump, the
        # only place the wait event can succeed.
        yield from self._wait(app_id, obj, waiter)

    def _convert(self, app_id: int, obj: LockObject, mode: LockMode):
        """Strengthen an already-held lock (no new structure needed)."""
        if obj.others_compatible(app_id, mode):
            obj.upgrade_grant(app_id, mode)
            self.stats.immediate_grants += 1
            if self.tracer is not None:
                self._trace("convert", app_id, f"-> {mode.name} {obj.resource}", str(obj.resource))
            return
        waiter = Waiter(
            app_id, mode, self.env.event(), block=None,
            converting=True, enqueued_at=self.env.now,
        )
        obj.enqueue(waiter)
        self._contended[obj.resource] = obj
        yield from self._wait(app_id, obj, waiter)

    def cancel_wait(
        self, app_id: int, exc: BaseException, reason: str = "deadlock"
    ) -> bool:
        """Withdraw ``app_id``'s pending request and fail it with ``exc``.

        Used by the periodic deadlock detector to roll back a victim and
        by the live service layer for per-request deadlines and client
        cancellation (``reason`` of ``"timeout"`` or ``"cancel"``, which
        is also the trace-event kind and selects the stats counter).
        Returns False when the application is not currently waiting --
        including when its request was *granted but not yet resumed*
        (the grant event already fired but the waiting process/thread
        has not run): cancelling then would double-free the structure
        the grant now owns, so the grant wins and the cancel is a no-op.
        """
        entry = self._waiting_on.get(app_id)
        if entry is None:
            return False
        obj, waiter = entry
        if waiter.event.triggered:
            # Granted (or already failed) between the caller's decision
            # and this call; the waiter is no longer in the queue and
            # its block now backs the grant.  Nothing to withdraw.
            return False
        del self._waiting_on[app_id]
        obj.remove_waiter(app_id)
        if waiter.block is not None:
            self.chain.free_slot(waiter.block)
            self._uncharge_slot(app_id)
        self._pump(obj)
        self._gc_object(obj)
        if reason == "timeout":
            self.stats.lock_timeouts += 1
            self._record_wait(self.env.now - waiter.enqueued_at)
        elif reason != "deadlock":
            self.stats.cancelled_waits += 1
            self._record_wait(self.env.now - waiter.enqueued_at)
        if self.wait_profiler is not None:
            self.wait_profiler.end_lock_wait(
                app_id,
                "timeout" if reason == "timeout"
                else "deadlock" if reason == "deadlock"
                else "cancelled",
            )
        if self.tracer is not None:
            self._trace(
                reason, app_id,
                f"victim on {obj.resource}" if reason == "deadlock"
                else f"{waiter.mode.name} {obj.resource} withdrawn",
                str(obj.resource), self.env.now - waiter.enqueued_at,
            )
        waiter.event.fail(exc)
        return True

    def _wait(self, app_id: int, obj: LockObject, waiter: Waiter):
        """Suspend until ``waiter`` is granted; detects deadlock first
        (in immediate mode)."""
        self._waiting_on[app_id] = (obj, waiter)
        if self.deadlock_detection == "immediate" and self._creates_deadlock(
            app_id, obj, waiter
        ):
            # Walk the cycle while the waiter is still enqueued (the
            # wait-for edge disappears with the cleanup below).
            cycle = (
                self._find_cycle(app_id, obj, waiter)
                if self.incidents is not None
                else []
            )
            del self._waiting_on[app_id]
            obj.remove_waiter(app_id)
            if waiter.block is not None:
                self.chain.free_slot(waiter.block)
                self._uncharge_slot(app_id)
            self._pump(obj)
            self._gc_object(obj)
            self.stats.deadlocks += 1
            if self.incidents is not None:
                self.incidents.record_deadlock(
                    self, app_id, obj.resource, cycle,
                    f"immediate check: {waiter.mode.name} request on "
                    f"{obj.resource} closes a wait-for cycle",
                )
            if self.tracer is not None:
                self._trace("deadlock", app_id, f"{waiter.mode.name} {obj.resource}", str(obj.resource))
            raise DeadlockError(
                f"app {app_id} requesting {waiter.mode.name} on {obj.resource} "
                "would close a wait-for cycle"
            )
        self.stats.waits += 1
        if self.wait_profiler is not None:
            blockers = obj.blockers_of(waiter)
            blocker = blockers[0] if blockers else None
            held = obj.granted.get(blocker) if blocker is not None else None
            self.wait_profiler.begin_lock_wait(
                app_id,
                str(obj.resource),
                waiter.mode.name,
                blocker=blocker,
                blocker_mode=held.mode.name if held is not None else "queued",
                depth=self._wait_depth(blocker) if blocker is not None else 0,
            )
        if self.tracer is not None:
            self._trace("wait-begin", app_id, f"{waiter.mode.name} {obj.resource}", str(obj.resource))
        started = self.env.now
        if self.lock_timeout_s is None:
            try:
                yield waiter.event
            except DeadlockError:
                # asynchronous victimization by the periodic detector;
                # cancel_wait already cleaned up the queue state (and
                # closed the wait event; this end is its no-op backstop)
                self._record_wait(self.env.now - started)
                if self.wait_profiler is not None:
                    self.wait_profiler.end_lock_wait(app_id, "deadlock")
                raise
        else:
            timeout = self.env.timeout(self.lock_timeout_s)
            try:
                yield self.env.any_of([waiter.event, timeout])
            except DeadlockError:
                self._record_wait(self.env.now - started)
                if self.wait_profiler is not None:
                    self.wait_profiler.end_lock_wait(app_id, "deadlock")
                raise
            if not waiter.event.triggered:
                # LOCKTIMEOUT expired first: withdraw the request.
                self._waiting_on.pop(app_id, None)
                obj.remove_waiter(app_id)
                if waiter.block is not None:
                    self.chain.free_slot(waiter.block)
                    self._uncharge_slot(app_id)
                self._pump(obj)
                self._gc_object(obj)
                self.stats.lock_timeouts += 1
                self._record_wait(self.env.now - started)
                if self.wait_profiler is not None:
                    self.wait_profiler.end_lock_wait(app_id, "timeout")
                if self.tracer is not None:
                    self._trace(
                        "timeout", app_id,
                        f"{waiter.mode.name} {obj.resource}",
                        str(obj.resource), self.env.now - started,
                    )
                raise LockTimeoutError(
                    f"app {app_id} waited {self.lock_timeout_s}s for "
                    f"{waiter.mode.name} on {obj.resource}"
                )
        self._waiting_on.pop(app_id, None)
        self._record_wait(self.env.now - started)
        if self.wait_profiler is not None:
            self.wait_profiler.end_lock_wait(app_id, "granted")
        if self.tracer is not None:
            self._trace(
                "wait-end", app_id,
                f"{waiter.mode.name} {obj.resource} after "
                f"{self.env.now - started:.3f}s",
                str(obj.resource),
                self.env.now - started,
            )

    # -- grant pumping and release ----------------------------------------------

    def _pump(self, obj: LockObject) -> None:
        if not obj.waiters:
            self._contended.pop(obj.resource, None)
            return
        for waiter in obj.pump():
            if not waiter.converting:
                self._note_held(
                    waiter.app_id, obj.resource, obj.granted[waiter.app_id]
                )
            waiter.event.succeed()
        if not obj.waiters:
            self._contended.pop(obj.resource, None)

    def _release_one(self, app_id: int, resource: ResourceId) -> int:
        obj = self._objects.get(resource)
        if obj is None:
            raise LockManagerError(f"app {app_id} does not hold {resource}")
        held = obj.remove_grant(app_id)
        freed = 0
        if held.block is not None:
            self.chain.free_slot(held.block)
            self._uncharge_slot(app_id)
            freed = 1
        self._forget_held(app_id, resource)
        self._pump(obj)
        self._gc_object(obj)
        return freed

    def _gc_object(self, obj: LockObject) -> None:
        if obj.is_idle:
            self._objects.pop(obj.resource, None)

    # -- accounting helpers ---------------------------------------------------------

    def _charge_slot(self, app_id: int) -> None:
        self._app_slots[app_id] = self._app_slots.get(app_id, 0) + 1

    def _uncharge_slot(self, app_id: int) -> None:
        current = self._app_slots.get(app_id, 0)
        if current <= 0:
            raise LockManagerError(f"slot accounting underflow for app {app_id}")
        self._app_slots[app_id] = current - 1

    def _note_held(self, app_id: int, resource: ResourceId, held: HeldLock) -> None:
        held_set = self._app_held.get(app_id)
        if held_set is None:
            held_set = self._app_held[app_id] = set()
        held_set.add(resource)
        if resource.is_row:
            tables = self._app_row_tables.get(app_id)
            if tables is None:
                tables = self._app_row_tables[app_id] = {}
                self._row_seq_counter += 1
                self._app_row_seq[app_id] = self._row_seq_counter
            rows = tables.get(resource.table_id)
            if rows is None:
                rows = tables[resource.table_id] = {}
            rows[resource] = held
            self._bump_row_count(app_id, 1)

    def _forget_held(self, app_id: int, resource: ResourceId) -> None:
        held_set = self._app_held.get(app_id)
        if held_set is not None:
            held_set.discard(resource)
        if resource.is_row:
            tables = self._app_row_tables.get(app_id)
            if tables is not None:
                rows = tables.get(resource.table_id)
                if rows is not None and rows.pop(resource, None) is not None:
                    if not rows:
                        del tables[resource.table_id]
                    self._bump_row_count(app_id, -1)

    def _bump_row_count(self, app_id: int, delta: int) -> None:
        """Move ``app_id`` between row-count buckets by ``delta`` (+-1)."""
        counts = self._app_row_counts
        old = counts.get(app_id, 0)
        new = old + delta
        counts[app_id] = new
        buckets = self._row_count_buckets
        if old > 0:
            bucket = buckets[old]
            del bucket[app_id]
            if not bucket:
                del buckets[old]
        if new > 0:
            buckets.setdefault(new, {})[app_id] = None
            if new > self._max_row_count:
                self._max_row_count = new
        # On decrements _max_row_count may go stale; victim selection
        # walks it down lazily (amortized against prior increments).

    # -- deadlock detection ------------------------------------------------------------

    def _creates_deadlock(self, app_id: int, obj: LockObject, waiter: Waiter) -> bool:
        stack = list(obj.blockers_of(waiter))
        seen: Set[int] = set()
        while stack:
            blocker = stack.pop()
            if blocker == app_id:
                return True
            if blocker in seen:
                continue
            seen.add(blocker)
            entry = self._waiting_on.get(blocker)
            if entry is not None:
                blocked_obj, blocked_waiter = entry
                stack.extend(blocked_obj.blockers_of(blocked_waiter))
        return False

    def _wait_depth(self, app_id: Optional[int], cap: int = 16) -> int:
        """Length of the wait-for chain starting at ``app_id``.

        Thomasian-style wait-depth: 1 means the blocker itself is
        running, 2 means it is waiting on a running app, and so on.
        Bounded by ``cap`` (a cycle or a pathological chain must not
        turn the probe into a scan).  Only called while the profiler is
        enabled.
        """
        depth = 1
        seen: Set[int] = set()
        while app_id is not None and app_id not in seen and depth < cap:
            seen.add(app_id)
            entry = self._waiting_on.get(app_id)
            if entry is None:
                break
            blocked_obj, blocked_waiter = entry
            blockers = blocked_obj.blockers_of(blocked_waiter)
            app_id = blockers[0] if blockers else None
            depth += 1
        return depth

    def _find_cycle(
        self, app_id: int, obj: LockObject, waiter: Waiter
    ) -> List[int]:
        """Reconstruct the wait-for cycle ``_creates_deadlock`` found.

        BFS over the same edges, keeping parent pointers; returns the
        cycle as app ids starting from the requester.  Only called on
        the (rare) deadlock path when incident capture is enabled.
        """
        parents: Dict[int, int] = {}
        queue: Deque[int] = deque()
        for blocker in obj.blockers_of(waiter):
            if blocker == app_id:
                return [app_id]
            if blocker not in parents:
                parents[blocker] = app_id
                queue.append(blocker)
        while queue:
            node = queue.popleft()
            entry = self._waiting_on.get(node)
            if entry is None:
                continue
            blocked_obj, blocked_waiter = entry
            for blocker in blocked_obj.blockers_of(blocked_waiter):
                if blocker == app_id:
                    cycle = [node]
                    while cycle[-1] != app_id:
                        cycle.append(parents[cycle[-1]])
                    cycle.reverse()
                    return cycle
                if blocker not in parents:
                    parents[blocker] = node
                    queue.append(blocker)
        return [app_id]

    # -- memory pressure: growth then escalation ------------------------------------------

    def _ensure_slot_available(self, app_id: int, resource: ResourceId):
        """Make room for one new lock structure for ``app_id``.

        Order of remedies follows the paper: the adaptive MAXLOCKS limit
        escalates the requesting application first (section 3.5); a full
        chain then tries synchronous growth from overflow and finally a
        memory-pressure escalation (section 3.3).
        """
        guard = 0
        while self._app_slots.get(app_id, 0) + 1 > self.maxlocks_limit_slots():
            guard += 1
            if guard > 1 << 20:
                raise LockManagerError("maxlocks escalation loop did not converge")
            # Growing lock memory raises the per-application allowance
            # (lockPercentPerApplication is recomputed on every resize,
            # section 3.5), so growth is tried before escalating -- the
            # algorithm's goal "is to avoid lock escalation at all times
            # by adjusting the lock memory".
            if self._try_sync_growth(for_app=app_id):
                continue
            freed = yield from self._escalate(app_id, "maxlocks", blocking=True)
            if freed == 0:
                self.stats.lock_list_full_errors += 1
                if self.tracer is not None:
                    self._trace("lock-list-full", app_id, "maxlocks path")
                raise LockListFullError(
                    f"app {app_id} exceeds lockPercentPerApplication "
                    f"({self.maxlocks_fraction:.3f}) and escalation freed nothing"
                )
        guard = 0
        while self.chain.free_slots == 0:
            guard += 1
            if guard > 1024:
                raise LockManagerError("memory escalation loop did not converge")
            if self._try_sync_growth(for_app=app_id):
                break
            victim = self._memory_escalation_victim(app_id)
            if victim is None:
                self.stats.lock_list_full_errors += 1
                raise LockListFullError(
                    "lock list full, growth denied and no escalatable application"
                )
            blocking = victim == app_id
            freed = yield from self._escalate(victim, "memory", blocking=blocking)
            if freed == 0:
                self.stats.lock_list_full_errors += 1
                raise LockListFullError(
                    "lock list full and escalation freed nothing"
                )

    # -- section 6.1 extension: selective escalation ------------------------

    def set_escalation_preference(self, app_id: int, preferred: bool) -> None:
        """Mark an application as preferring escalation over growth.

        Implements the paper's future-work idea of "application policies
        to bias when lock escalations are a preferred strategy over lock
        memory growth.  Selective lock escalation would reduce memory
        requirements for locking providing more memory for caching and
        sorting" (section 6.1).  A preferring application's memory
        pressure is answered by escalating its own locks instead of
        growing the shared lock memory.
        """
        if preferred:
            self._escalation_preferred.add(app_id)
        else:
            self._escalation_preferred.discard(app_id)

    def prefers_escalation(self, app_id: int) -> bool:
        return app_id in self._escalation_preferred

    def _try_sync_growth(self, for_app: Optional[int] = None) -> int:
        if for_app is not None and for_app in self._escalation_preferred:
            return 0  # this application asked to escalate instead
        if self.growth_provider is None:
            return 0
        if self.obs is not None or self.wait_profiler is not None:
            # Wall-clock cost of the provider call: the synchronous
            # growth path stalls the requesting transaction in a real
            # system, so its latency is a first-class observable.
            wall_started = perf_counter()
            granted = int(self.growth_provider(1))
            elapsed = perf_counter() - wall_started
            if self.obs is not None:
                self.obs.sync_growth_latency.observe(elapsed)
                self.obs.sync_growth_requests.inc()
                if granted > 0:
                    self.obs.sync_growth_blocks.inc(granted)
            if self.wait_profiler is not None:
                self.wait_profiler.observe(
                    "sync-growth",
                    elapsed,
                    app_id=-1 if for_app is None else for_app,
                    note=f"+{granted} blocks",
                )
        else:
            granted = int(self.growth_provider(1))
        if granted < 0:
            raise LockManagerError(f"growth provider returned {granted}")
        if granted:
            self.chain.add_blocks(granted)
            self.stats.sync_growth_blocks += granted
            self.refresh_maxlocks()  # resize => recompute (section 3.5)
            if self.tracer is not None:
                self._trace(
                    "sync-growth", -1,
                    f"+{granted} blocks -> {self.chain.block_count}",
                    value=float(granted),
                )
        return granted

    def _memory_escalation_victim(self, requester: int) -> Optional[int]:
        """Pick the application whose escalation frees the most memory.

        Prefers the requester (DB2 escalates on behalf of the requesting
        application); if the requester has no row locks, falls back to
        the application holding the most row locks, ties broken by which
        application first acquired a row lock (its ``_app_row_seq``
        stamp).  The bucket index makes this O(1) amortized -- the
        walk-down of the stale maximum is bounded by prior increments,
        and the top bucket rarely holds more than a few applications.
        """
        if self._app_row_counts.get(requester, 0) > 0:
            return requester
        buckets = self._row_count_buckets
        top = self._max_row_count
        while top > 0 and top not in buckets:
            top -= 1
        self._max_row_count = top
        if top == 0:
            return None
        seq = self._app_row_seq
        return min(buckets[top], key=seq.__getitem__)

    def _escalate(self, app_id: int, reason: str, blocking: bool):
        """Generator: escalate ``app_id``'s biggest row-locked table.

        Returns the number of lock structures freed (0 when no table
        could be escalated).  With ``blocking`` the escalating
        application may wait for the table lock; non-blocking escalation
        (used for memory pressure on behalf of another application) only
        succeeds when the table lock is grantable immediately.
        """
        tables = self._app_row_tables.get(app_id, {})
        # Biggest table first; the position component reproduces the
        # insertion-order tie-break of the stable sort this replaces.
        # Lazy heap: the first candidate usually wins, so a full sort
        # is wasted work.
        candidates = [
            (-len(rows), position, table_id)
            for position, (table_id, rows) in enumerate(tables.items())
            if rows
        ]
        heapq.heapify(candidates)
        scanned = 0  # row-lock structures examined across candidate tables
        while candidates:
            _neg_rows, _position, table_id = heapq.heappop(candidates)
            rows = tables.get(table_id)
            if not rows:
                continue
            scanned += len(rows)
            # Inline escalation_target_mode with an early break: the row
            # grants are at hand, so the first write mode settles it.
            target = LockMode.S
            for held_row in rows.values():
                if held_row.mode.is_write:
                    target = LockMode.X
                    break
            table_res = table_resource(table_id)
            obj = self._objects.get(table_res)
            if obj is None or app_id not in obj.granted:
                raise LockManagerError(
                    f"app {app_id} holds rows of table {table_id} without intent lock"
                )
            held = obj.granted[app_id]
            waited = False
            if covers(held.mode, target):
                pass  # already covered (e.g. SIX -> S)
            elif obj.others_compatible(app_id, target):
                obj.upgrade_grant(app_id, target)
            elif blocking:
                waiter = Waiter(
                    app_id, target, self.env.event(), block=None,
                    converting=True, enqueued_at=self.env.now,
                )
                obj.enqueue(waiter)
                self._contended[table_res] = obj
                yield from self._wait(app_id, obj, waiter)
                waited = True
            else:
                continue  # table lock not grantable; try the next table
            freed = self._release_table_rows(app_id, table_id)
            if self.obs is not None:
                self.obs.escalation_scan.observe(scanned)
                self.obs.escalation_attempts.inc()
            if self.tracer is not None:
                self._trace(
                    "escalation", app_id,
                    f"table {table_id} -> {target.name} ({reason}), freed {freed}",
                    f"T{table_id}", float(freed),
                )
            self.stats.escalations.record(
                EscalationOutcome(
                    time=self.env.now,
                    app_id=app_id,
                    table_id=table_id,
                    reason=reason,
                    target_mode=target,
                    freed_slots=freed,
                    waited=waited,
                )
            )
            if self.incidents is not None:
                self.incidents.record_escalation(
                    self, app_id, table_id, reason, freed, waited
                )
            return freed
        self.stats.escalations.failures += 1
        if self.obs is not None:
            self.obs.escalation_scan.observe(scanned)
            self.obs.escalation_attempts.inc()
        return 0

    def _release_table_rows(self, app_id: int, table_id: int) -> int:
        rows = self._app_row_tables.get(app_id, {}).get(table_id)
        if not rows:
            return 0
        freed = 0
        for row in list(rows):
            freed += self._release_one(app_id, row)
        return freed

    def release_read_lock(self, app_id: int, table_id: int, row_id: int) -> bool:
        """Release one S row lock before commit (cursor stability).

        Under DB2's CS isolation a share lock is released as soon as the
        cursor moves off the row.  Only plain S row locks are eligible:
        write locks (and S locks later upgraded for an update) are held
        to commit, and a row covered by an escalated table lock has no
        structure of its own to release.  Returns True when a lock was
        released (or its re-entrancy count decremented).
        """
        resource = row_resource(table_id, row_id)
        obj = self._objects.get(resource)
        held = obj.granted.get(app_id) if obj is not None else None
        if held is None:
            return False
        if held.mode is not LockMode.S:
            return False  # upgraded to U/X: held to commit
        if held.count > 1:
            held.count -= 1
            return True
        self._release_one(app_id, resource)
        if self.tracer is not None:
            self._trace("release", app_id, f"CS early release {resource}",
                        str(resource), 1.0)
        return True

    def lock_status(self, resource: ResourceId) -> str:
        """One-line status of a resource: holders and queue, in order.

        The Figure 3 situation renders as
        ``T0.R7: granted[1:S, 2:S] queue[3:X, 4:S]``.
        """
        obj = self._objects.get(resource)
        if obj is None or obj.is_idle:
            return f"{resource}: unlocked"
        holders = ", ".join(
            f"{app}:{held.mode.name}" for app, held in sorted(obj.granted.items())
        )
        queue = ", ".join(f"{w.app_id}:{w.mode.name}" for w in obj.waiters)
        return f"{resource}: granted[{holders}] queue[{queue}]"

    def snapshot_report(self, max_resources: int = 20) -> str:
        """A DBA-style point-in-time report of lock manager state."""
        stats = self.stats
        lines = [
            f"lock memory: {self.chain.block_count} blocks, "
            f"{self.chain.used_slots}/{self.chain.capacity_slots} structures "
            f"({self.chain.free_fraction():.0%} free)",
            f"maxlocks: {self.maxlocks_fraction:.1%} "
            f"({self.maxlocks_limit_slots()} structures/application)",
            f"requests={stats.requests} waits={stats.waits} "
            f"deadlocks={stats.deadlocks} timeouts={stats.lock_timeouts} "
            f"escalations={stats.escalations.count} "
            f"(exclusive {stats.escalations.exclusive_count})",
        ]
        contended = sorted(self._contended.values(), key=lambda o: -len(o.waiters))
        for obj in contended[:max_resources]:
            lines.append("  " + self.lock_status(obj.resource))
        if len(contended) > max_resources:
            lines.append(f"  ... and {len(contended) - max_resources} more")
        return "\n".join(lines)

    def check_invariants(self) -> None:
        """Cross-check manager accounting against the block chain."""
        self.chain.check_invariants()
        slot_total = sum(self._app_slots.values())
        if slot_total != self.chain.used_slots:
            raise LockManagerError(
                f"app slot total {slot_total} != chain used {self.chain.used_slots}"
            )
        for app_id, resources in self._app_held.items():
            for resource in resources:
                obj = self._objects.get(resource)
                if obj is None or app_id not in obj.granted:
                    raise LockManagerError(
                        f"app {app_id} claims {resource} but grant is missing"
                    )
        for app_id, tables in self._app_row_tables.items():
            total = 0
            for table_id, rows in tables.items():
                total += len(rows)
                for resource, held in rows.items():
                    obj = self._objects.get(resource)
                    if obj is None or obj.granted.get(app_id) is not held:
                        raise LockManagerError(
                            f"row index stale: app {app_id} {resource}"
                        )
            if total != self._app_row_counts.get(app_id, 0):
                raise LockManagerError(
                    f"row count {self._app_row_counts.get(app_id, 0)} != "
                    f"indexed rows {total} for app {app_id}"
                )
        for count, bucket in self._row_count_buckets.items():
            if count <= 0 or not bucket:
                raise LockManagerError(f"degenerate row-count bucket {count}")
            if count > self._max_row_count:
                raise LockManagerError(
                    f"bucket {count} above max bound {self._max_row_count}"
                )
            for app_id in bucket:
                if self._app_row_counts.get(app_id) != count:
                    raise LockManagerError(
                        f"app {app_id} in bucket {count} but holds "
                        f"{self._app_row_counts.get(app_id)}"
                    )
        expected_contended = {
            res for res, obj in self._objects.items() if obj.waiters
        }
        if expected_contended != set(self._contended):
            raise LockManagerError(
                f"contended set {sorted(map(str, self._contended))} != "
                f"objects with waiters {sorted(map(str, expected_contended))}"
            )
