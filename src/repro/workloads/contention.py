"""Thomasian-style contention regimes: the scenario matrix's model zoo.

Thomasian's heterogeneous data access model characterizes lock
contention by three levers the uniform-access models miss: a *hot set*
receiving a disproportionate share of accesses (hot-page skew), a *mix
of lock-mode classes* (read-mostly cursors beside update-heavy
writers), and the depth of blocking chains (the *wait-depth*), whose
growth past a knee marks the thrashing point where adding clients
loses throughput.

This module packages those levers for the scenario matrix engine
(:mod:`repro.scenarios`):

* :data:`REGIMES` -- named :class:`~repro.engine.transactions.
  TransactionMix` factories, one per contention regime, all sharing a
  common OLTP base so two regimes differ only in the lever under test;
* :func:`wait_depth` / :func:`max_wait_depth` -- blocking-chain depth
  over a wait-for graph (live managers included);
* :class:`ThrashingDetector` -- feed it ``(mpl, throughput)`` points
  and it locates the thrashing knee, if any;
* :func:`diurnal_trace` / :func:`flash_crowd_trace` -- synthetic
  ``(time, target_locks)`` demand traces in the capture/replay format
  (:mod:`repro.service.capture`, :mod:`repro.workloads.replay`).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.transactions import TransactionMix, scaled
from repro.errors import ConfigurationError

#: The shared OLTP base every regime derives from: think-free,
#: service-driver-sized row counts, mild skew.  Matching the stress
#: driver's default mix keeps regime deltas attributable to the one
#: lever each regime moves.
BASE_MIX = TransactionMix(
    locks_per_txn_mean=12.0,
    think_time_mean_s=0.0,
    work_time_per_lock_s=0.0,
    rows_per_table=50_000,
    hot_access_probability=0.25,
)


def uniform_mix() -> TransactionMix:
    """No hot set: every row equally likely (the null contention model)."""
    return scaled(BASE_MIX, hot_access_probability=0.0)


def hot_page_mix(
    skew: float = 0.6, hot_row_fraction: float = 0.001
) -> TransactionMix:
    """Hot-page skew: ``skew`` of accesses land on a tiny hot set.

    Thomasian's hot-spot case: the hot set is ``hot_row_fraction`` of
    each table, so raising ``skew`` raises the collision probability
    without changing transaction length or mode mix.
    """
    if not 0.0 <= skew <= 1.0:
        raise ConfigurationError(f"skew must be in [0, 1], got {skew}")
    return scaled(
        BASE_MIX,
        hot_access_probability=skew,
        hot_row_fraction=hot_row_fraction,
    )


def hot_page_extreme_mix() -> TransactionMix:
    """Near-total skew (90 % of accesses on the hot set): past the knee."""
    return hot_page_mix(skew=0.9)


def write_heavy_mix() -> TransactionMix:
    """Mode-mix lever: 80 % X-lock accesses (batch-update shape)."""
    return scaled(BASE_MIX, write_fraction=0.8, update_lock_fraction=0.1)


def update_heavy_mix() -> TransactionMix:
    """Mode-mix lever: writes go through U->X conversion (DB2 cursors)."""
    return scaled(BASE_MIX, write_fraction=0.5, update_lock_fraction=0.9)


def read_mostly_mix() -> TransactionMix:
    """Mode-mix lever: 95 % S locks (reporting-style readers)."""
    return scaled(BASE_MIX, write_fraction=0.05)


def lock_hungry_mix() -> TransactionMix:
    """Long transactions (mean 80 row locks): lock-memory pressure.

    The regime behind the overflow-exhaustion chaos scenario -- on an
    undersized LOCKLIST it forces synchronous growth, escalation and
    lock-list-full rollbacks rather than mode conflicts.
    """
    return scaled(BASE_MIX, locks_per_txn_mean=80.0, write_fraction=0.1)


#: Named contention regimes for the scenario grids.  Factories (not
#: instances) so every scenario builds a fresh mix and grids stay
#: JSON-serializable (they reference regimes by name).
REGIMES: Dict[str, Callable[[], TransactionMix]] = {
    "uniform": uniform_mix,
    "hot_page": hot_page_mix,
    "hot_page_extreme": hot_page_extreme_mix,
    "write_heavy": write_heavy_mix,
    "update_heavy": update_heavy_mix,
    "read_mostly": read_mostly_mix,
    "lock_hungry": lock_hungry_mix,
}


def build_regime(name: str) -> TransactionMix:
    """Instantiate a named regime; raises ConfigurationError on unknowns."""
    try:
        factory = REGIMES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown contention regime {name!r}; choose from "
            f"{sorted(REGIMES)}"
        ) from None
    return factory()


# ---------------------------------------------------------------------------
# wait depth
# ---------------------------------------------------------------------------

def wait_depth(graph: Mapping[int, Sequence[int]]) -> int:
    """Longest blocking chain in a wait-for graph, in edges.

    ``graph[a] = [b, ...]`` means application ``a`` waits for ``b``.
    A node that waits for a running (non-waiting) application has depth
    1; a waiter-behind-a-waiter has depth 2, and so on -- Thomasian's
    wait-depth statistic.  Cycles (deadlocks, resolved elsewhere) are
    cut rather than recursed into, so the walk always terminates.
    """
    depths: Dict[int, int] = {}
    active: set = set()

    def depth_of(node: int) -> int:
        if node in depths:
            return depths[node]
        if node in active:  # cycle: cut the edge
            return 0
        blockers = graph.get(node)
        if not blockers:
            depths[node] = 0
            return 0
        active.add(node)
        best = 1 + max(depth_of(blocker) for blocker in blockers)
        active.discard(node)
        depths[node] = best
        return best

    return max((depth_of(node) for node in graph), default=0)


def max_wait_depth(manager) -> int:
    """Wait depth of a live :class:`~repro.lockmgr.manager.LockManager`.

    Builds the same wait-for graph the deadlock detector sweeps and
    reports its longest blocking chain (0 = nobody waits).  The
    detector's graph prunes non-waiting blockers (they cannot lie on a
    cycle), so the terminal edge -- the deepest waiter blocking on a
    *running* application -- is added back here.
    """
    from repro.lockmgr.detector import build_wait_for_graph

    if not manager.waiting_apps():
        return 0
    return 1 + wait_depth(build_wait_for_graph(manager))


# ---------------------------------------------------------------------------
# thrashing-point detection
# ---------------------------------------------------------------------------

class ThrashingDetector:
    """Locates the thrashing knee in a throughput-vs-MPL curve.

    Feed ``(mpl, throughput)`` observations (multiprogramming level,
    e.g. client count, against committed work per second).  Per
    Thomasian, a contention-bound system's curve rises, peaks and then
    *falls* as added clients only deepen blocking chains; the knee is
    the MPL of peak throughput, and the system is thrashing once
    later observations drop a ``drop_fraction`` below that peak.
    """

    def __init__(self, drop_fraction: float = 0.2) -> None:
        if not 0.0 < drop_fraction < 1.0:
            raise ConfigurationError(
                f"drop_fraction must be in (0, 1), got {drop_fraction}"
            )
        self.drop_fraction = drop_fraction
        self._points: List[Tuple[float, float]] = []

    def add(self, mpl: float, throughput: float) -> None:
        """Record one observation; MPLs must be fed in increasing order."""
        if throughput < 0:
            raise ConfigurationError(f"negative throughput {throughput}")
        if self._points and mpl <= self._points[-1][0]:
            raise ConfigurationError(
                f"mpl must increase monotonically, got {mpl} after "
                f"{self._points[-1][0]}"
            )
        self._points.append((float(mpl), float(throughput)))

    @property
    def points(self) -> List[Tuple[float, float]]:
        """The observations fed so far (a copy)."""
        return list(self._points)

    def peak(self) -> Optional[Tuple[float, float]]:
        """The ``(mpl, throughput)`` observation with peak throughput."""
        if not self._points:
            return None
        return max(self._points, key=lambda p: p[1])

    def thrashing_point(self) -> Optional[float]:
        """The MPL past which throughput stays collapsed, or None.

        Returns the peak's MPL when at least one *later* observation
        fell ``drop_fraction`` below the peak throughput -- the
        canonical thrashing signature.  A monotone or flat curve
        returns None.
        """
        peak = self.peak()
        if peak is None:
            return None
        peak_mpl, peak_tp = peak
        if peak_tp <= 0:
            return None
        floor = peak_tp * (1.0 - self.drop_fraction)
        for mpl, throughput in self._points:
            if mpl > peak_mpl and throughput < floor:
                return peak_mpl
        return None

    def is_thrashing(self) -> bool:
        """True once the curve shows the post-peak collapse."""
        return self.thrashing_point() is not None


# ---------------------------------------------------------------------------
# synthetic demand traces
# ---------------------------------------------------------------------------

Trace = List[Tuple[float, int]]


def diurnal_trace(
    base_locks: int = 500,
    peak_locks: int = 3_000,
    period_s: float = 20.0,
    cycles: int = 2,
    step_s: float = 0.5,
) -> Trace:
    """A day/night demand cycle as a ``(time, target_locks)`` trace.

    A raised sinusoid between ``base_locks`` (night) and ``peak_locks``
    (midday), repeated ``cycles`` times -- the slow-drift workload the
    paper's tuner tracks comfortably.  Valid replay input by
    construction (strictly increasing times, non-negative targets).
    """
    if base_locks < 0 or peak_locks < base_locks:
        raise ConfigurationError(
            f"need 0 <= base_locks <= peak_locks, got "
            f"{base_locks}/{peak_locks}"
        )
    if period_s <= 0 or step_s <= 0 or cycles <= 0:
        raise ConfigurationError("period_s, step_s and cycles must be positive")
    trace: Trace = []
    steps = max(2, int(round(cycles * period_s / step_s)))
    amplitude = (peak_locks - base_locks) / 2.0
    midline = base_locks + amplitude
    for i in range(steps + 1):
        t = (i + 1) * step_s
        phase = 2.0 * math.pi * (t / period_s)
        target = int(round(midline - amplitude * math.cos(phase)))
        trace.append((t, max(0, target)))
    return trace


def flash_crowd_trace(
    base_locks: int = 400,
    spike_locks: int = 6_000,
    ramp_s: float = 2.0,
    hold_s: float = 4.0,
    start_s: float = 4.0,
    tail_s: float = 6.0,
    step_s: float = 0.5,
) -> Trace:
    """A flash-crowd surge: flat base, steep ramp, plateau, decay.

    The stress shape of the paper's Figure 10 surge experiments: the
    tuner must grow through the ramp (synchronous growth territory) and
    release through the decay.  Valid replay input by construction.
    """
    if base_locks < 0 or spike_locks < base_locks:
        raise ConfigurationError(
            f"need 0 <= base_locks <= spike_locks, got "
            f"{base_locks}/{spike_locks}"
        )
    if min(ramp_s, hold_s, start_s, tail_s, step_s) <= 0:
        raise ConfigurationError("all durations must be positive")
    trace: Trace = []
    t = step_s
    end = start_s + ramp_s + hold_s + tail_s
    while t <= end + step_s / 2:
        if t < start_s:
            target = base_locks
        elif t < start_s + ramp_s:
            frac = (t - start_s) / ramp_s
            target = base_locks + (spike_locks - base_locks) * frac
        elif t < start_s + ramp_s + hold_s:
            target = spike_locks
        else:
            frac = (t - start_s - ramp_s - hold_s) / tail_s
            target = spike_locks - (spike_locks - base_locks) * min(1.0, frac)
        trace.append((round(t, 6), int(round(target))))
        t += step_s
    return trace


#: Named demand-trace generators for replay scenarios in the matrix.
TRACES: Dict[str, Callable[..., Trace]] = {
    "diurnal": diurnal_trace,
    "flash_crowd": flash_crowd_trace,
}


def build_trace(name: str, **kwargs) -> Trace:
    """Instantiate a named demand trace; unknown names raise."""
    try:
        factory = TRACES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown demand trace {name!r}; choose from {sorted(TRACES)}"
        ) from None
    return factory(**kwargs)
