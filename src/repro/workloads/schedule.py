"""Stepwise client-count schedules.

A :class:`ClientSchedule` is a list of ``(time, client_count)`` steps.
Driven against a :class:`repro.engine.client.ClientPool` it produces the
load trajectories of the paper's experiments: the 1-to-130 ramp of
Figure 9, the 50-to-130 surge of Figure 10 and the 130-to-30 step-down
of Figure 12.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.engine.client import ClientPool
from repro.errors import ConfigurationError


class ClientSchedule:
    """An ordered sequence of ``(time_s, client_count)`` steps."""

    def __init__(self, steps: Sequence[Tuple[float, int]]) -> None:
        if not steps:
            raise ConfigurationError("a schedule needs at least one step")
        previous = -1.0
        for time_s, count in steps:
            if time_s < 0:
                raise ConfigurationError(f"negative step time {time_s}")
            if time_s <= previous:
                raise ConfigurationError(
                    f"step times must be strictly increasing, got {time_s} "
                    f"after {previous}"
                )
            if count < 0:
                raise ConfigurationError(f"negative client count {count}")
            previous = time_s
        self.steps: List[Tuple[float, int]] = [(float(t), int(c)) for t, c in steps]

    @classmethod
    def constant(cls, count: int, start: float = 0.0) -> "ClientSchedule":
        """All ``count`` clients from ``start`` onwards."""
        return cls([(start, count)])

    @classmethod
    def step(
        cls, before: int, after: int, at: float, start: float = 0.0
    ) -> "ClientSchedule":
        """``before`` clients from ``start``, then ``after`` from ``at``."""
        if at <= start:
            raise ConfigurationError(f"step time {at} must be after start {start}")
        return cls([(start, before), (at, after)])

    @classmethod
    def ramp(
        cls,
        start_count: int,
        end_count: int,
        start: float,
        duration: float,
        steps: int = 10,
    ) -> "ClientSchedule":
        """Linear ramp between two client counts over ``duration``."""
        if steps <= 0:
            raise ConfigurationError(f"steps must be positive, got {steps}")
        if duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration}")
        points: List[Tuple[float, int]] = []
        for i in range(steps + 1):
            t = start + duration * i / steps
            count = round(start_count + (end_count - start_count) * i / steps)
            points.append((t, count))
        # Collapse duplicate counts to keep the schedule minimal.
        collapsed: List[Tuple[float, int]] = []
        for t, c in points:
            if not collapsed or collapsed[-1][1] != c:
                collapsed.append((t, c))
        return cls(collapsed)

    def count_at(self, time_s: float) -> int:
        """Scheduled client count at ``time_s`` (0 before the first step)."""
        count = 0
        for t, c in self.steps:
            if t <= time_s:
                count = c
            else:
                break
        return count

    @property
    def end_time(self) -> float:
        return self.steps[-1][0]

    def drive(self, pool: ClientPool):
        """DES process applying the schedule to ``pool``."""
        env = pool.database.env
        for time_s, count in self.steps:
            delay = time_s - env.now
            if delay > 0:
                yield env.timeout(delay)
            pool.set_target(count)
