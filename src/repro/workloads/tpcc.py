"""A TPC-C-like OLTP transaction model.

The paper's OLTP side is "a combined TPCC and TPCH schema" driven by up
to 130 clients.  The generic :class:`~repro.engine.transactions.TransactionMix`
captures aggregate lock pressure; this module adds structure: the five
TPC-C transaction profiles with their distinct table footprints, read/
write shapes and standard mix weights, over the nine TPC-C tables.

The goal is *lock-demand* fidelity, not benchmark-kit fidelity: each
profile describes which tables it touches, how many rows per table, and
with what lock modes -- the quantities that drive the lock memory
controller.  Monetary columns, think-time keying rules and the like are
out of scope.

Usage::

    from repro.workloads.tpcc import TpccWorkload, STANDARD_WEIGHTS

    workload = TpccWorkload(db, ClientSchedule.constant(130))
    workload.start()
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.client import ClientPool
from repro.engine.transactions import RowAccess
from repro.errors import ConfigurationError
from repro.lockmgr.modes import LockMode
from repro.workloads.schedule import ClientSchedule


class TpccTable:
    """The nine TPC-C tables, as stable table ids."""

    WAREHOUSE = 0
    DISTRICT = 1
    CUSTOMER = 2
    HISTORY = 3
    NEW_ORDER = 4
    ORDERS = 5
    ORDER_LINE = 6
    ITEM = 7
    STOCK = 8

    #: Approximate cardinalities per warehouse (TPC-C clause 1.2),
    #: capped for simulation-friendliness.
    CARDINALITIES: Dict[int, int] = {
        WAREHOUSE: 1,
        DISTRICT: 10,
        CUSTOMER: 30_000,
        HISTORY: 30_000,
        NEW_ORDER: 9_000,
        ORDERS: 30_000,
        ORDER_LINE: 300_000,
        ITEM: 100_000,
        STOCK: 100_000,
    }

    NAMES: Dict[int, str] = {
        WAREHOUSE: "warehouse",
        DISTRICT: "district",
        CUSTOMER: "customer",
        HISTORY: "history",
        NEW_ORDER: "new_order",
        ORDERS: "orders",
        ORDER_LINE: "order_line",
        ITEM: "item",
        STOCK: "stock",
    }


@dataclass(frozen=True)
class TableTouch:
    """One table's footprint inside a transaction profile."""

    table_id: int
    #: (min_rows, max_rows) touched, drawn uniformly.
    rows: Tuple[int, int]
    mode: LockMode

    def __post_init__(self) -> None:
        lo, hi = self.rows
        if not 0 <= lo <= hi:
            raise ConfigurationError(f"invalid row range {self.rows}")


@dataclass(frozen=True)
class TransactionProfile:
    """One TPC-C transaction type as a lock-demand shape."""

    name: str
    touches: Sequence[TableTouch]

    def draw_accesses(
        self, rng: random.Random, warehouses: int
    ) -> List[RowAccess]:
        """Concrete row accesses for one execution."""
        accesses: List[RowAccess] = []
        warehouse = rng.randrange(max(1, warehouses))
        for touch in self.touches:
            cardinality = TpccTable.CARDINALITIES[touch.table_id]
            lo, hi = touch.rows
            count = rng.randint(lo, hi)
            base = warehouse * cardinality
            for _ in range(count):
                row = base + rng.randrange(cardinality)
                accesses.append(RowAccess(touch.table_id, row, touch.mode))
        return accesses


#: The five TPC-C profiles.  Row counts follow clause 2 footprints
#: (new-order touches 1 district, 1 customer, ~10 items/stock rows and
#: inserts ~10 order lines; delivery processes 10 districts' orders;
#: stock-level reads ~200 order lines and the matching stock rows).
NEW_ORDER = TransactionProfile(
    "new-order",
    touches=(
        TableTouch(TpccTable.WAREHOUSE, (1, 1), LockMode.S),
        TableTouch(TpccTable.DISTRICT, (1, 1), LockMode.X),
        TableTouch(TpccTable.CUSTOMER, (1, 1), LockMode.S),
        TableTouch(TpccTable.ITEM, (5, 15), LockMode.S),
        TableTouch(TpccTable.STOCK, (5, 15), LockMode.X),
        TableTouch(TpccTable.ORDERS, (1, 1), LockMode.X),
        TableTouch(TpccTable.NEW_ORDER, (1, 1), LockMode.X),
        TableTouch(TpccTable.ORDER_LINE, (5, 15), LockMode.X),
    ),
)

PAYMENT = TransactionProfile(
    "payment",
    touches=(
        TableTouch(TpccTable.WAREHOUSE, (1, 1), LockMode.X),
        TableTouch(TpccTable.DISTRICT, (1, 1), LockMode.X),
        TableTouch(TpccTable.CUSTOMER, (1, 1), LockMode.X),
        TableTouch(TpccTable.HISTORY, (1, 1), LockMode.X),
    ),
)

ORDER_STATUS = TransactionProfile(
    "order-status",
    touches=(
        TableTouch(TpccTable.CUSTOMER, (1, 1), LockMode.S),
        TableTouch(TpccTable.ORDERS, (1, 1), LockMode.S),
        TableTouch(TpccTable.ORDER_LINE, (5, 15), LockMode.S),
    ),
)

DELIVERY = TransactionProfile(
    "delivery",
    touches=(
        TableTouch(TpccTable.NEW_ORDER, (10, 10), LockMode.X),
        TableTouch(TpccTable.ORDERS, (10, 10), LockMode.X),
        TableTouch(TpccTable.ORDER_LINE, (100, 150), LockMode.X),
        TableTouch(TpccTable.CUSTOMER, (10, 10), LockMode.X),
    ),
)

STOCK_LEVEL = TransactionProfile(
    "stock-level",
    touches=(
        TableTouch(TpccTable.DISTRICT, (1, 1), LockMode.S),
        TableTouch(TpccTable.ORDER_LINE, (180, 220), LockMode.S),
        TableTouch(TpccTable.STOCK, (100, 180), LockMode.S),
    ),
)

#: TPC-C clause 5.2.3 minimum mix.
STANDARD_WEIGHTS: Dict[TransactionProfile, float] = {
    NEW_ORDER: 0.45,
    PAYMENT: 0.43,
    ORDER_STATUS: 0.04,
    DELIVERY: 0.04,
    STOCK_LEVEL: 0.04,
}


class TpccMix:
    """Drop-in replacement for :class:`TransactionMix` drawing TPC-C
    profiles instead of a homogeneous geometric shape.

    Implements the same draw interface the :class:`Client` uses
    (``draw_transaction`` / ``draw_think_time`` plus the cost fields),
    so TPC-C clients run through the unmodified client machinery.
    """

    #: Interface attributes Client reads directly.
    pages_per_lock = 1.0
    work_time_per_lock_s = 0.004

    def __init__(
        self,
        weights: Optional[Dict[TransactionProfile, float]] = None,
        warehouses: int = 4,
        think_time_mean_s: float = 0.5,
    ) -> None:
        if weights is None:
            weights = STANDARD_WEIGHTS
        if not weights:
            raise ConfigurationError("need at least one transaction profile")
        total = sum(weights.values())
        if total <= 0:
            raise ConfigurationError("profile weights must sum to a positive value")
        if warehouses <= 0:
            raise ConfigurationError(f"warehouses must be positive, got {warehouses}")
        if think_time_mean_s < 0:
            raise ConfigurationError("think_time_mean_s must be non-negative")
        self._profiles = list(weights.keys())
        self._cumulative: List[float] = []
        running = 0.0
        for profile in self._profiles:
            running += weights[profile] / total
            self._cumulative.append(running)
        self.warehouses = warehouses
        self.think_time_mean_s = think_time_mean_s
        #: Executions per profile name (observability).
        self.executed: Dict[str, int] = {p.name: 0 for p in self._profiles}

    def draw_profile(self, rng: random.Random) -> TransactionProfile:
        u = rng.random()
        for profile, bound in zip(self._profiles, self._cumulative):
            if u <= bound:
                return profile
        return self._profiles[-1]

    def draw_transaction(self, rng: random.Random) -> List[RowAccess]:
        profile = self.draw_profile(rng)
        self.executed[profile.name] += 1
        return profile.draw_accesses(rng, self.warehouses)

    def draw_think_time(self, rng: random.Random) -> float:
        if self.think_time_mean_s == 0:
            return 0.0
        return rng.expovariate(1.0 / self.think_time_mean_s)


class TpccWorkload:
    """A scheduled population of TPC-C clients."""

    def __init__(
        self,
        database,
        schedule: ClientSchedule,
        mix: Optional[TpccMix] = None,
        name: str = "tpcc",
    ) -> None:
        self.database = database
        self.schedule = schedule
        self.mix = mix or TpccMix()
        self.pool = ClientPool(database, self.mix, name=name)

    def start(self) -> None:
        self.database.env.process(self.schedule.drive(self.pool))

    @property
    def commits(self) -> int:
        return self.pool.total_commits()

    @property
    def rollbacks(self) -> int:
        return self.pool.total_rollbacks()

    def profile_counts(self) -> Dict[str, int]:
        """Executions per transaction profile."""
        return dict(self.mix.executed)
