"""OLTP client populations (the TPCC-like side of the paper's workload).

An :class:`OltpWorkload` binds a transaction mix, a client schedule and
a client pool.  Two canonical mixes are provided:

* :func:`standard_mix` -- moderately sized transactions whose aggregate
  lock demand at 130 clients sits in the single-digit-megabyte range the
  paper reports (Figure 12 quotes 4.2 MB of lock memory for 130 OLTP
  clients);
* :func:`heavy_mix` -- longer transactions used to pressure small
  static lock lists into escalation (the Figure 7/8 catastrophe).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.engine.client import ClientPool
from repro.engine.transactions import TransactionMix
from repro.workloads.schedule import ClientSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.database import Database


def standard_mix(**overrides) -> TransactionMix:
    """The default OLTP transaction mix used across the experiments.

    Transactions average 100 row locks held for roughly 2 seconds, with
    a 0.5 s think time: at 130 clients this holds a few thousand lock
    structures -- the same order as the paper's OLTP runs -- while the
    per-client transaction rate stays low enough for long simulations.
    """
    defaults = dict(
        locks_per_txn_mean=100.0,
        write_fraction=0.30,
        update_lock_fraction=0.20,
        num_tables=10,
        rows_per_table=1_000_000,
        hot_row_fraction=0.001,
        hot_access_probability=0.05,
        think_time_mean_s=0.5,
        work_time_per_lock_s=0.02,
        pages_per_lock=1.0,
    )
    defaults.update(overrides)
    return TransactionMix(**defaults)


def heavy_mix(**overrides) -> TransactionMix:
    """A lock-hungry mix: bigger transactions, shorter think time."""
    defaults = dict(
        locks_per_txn_mean=250.0,
        write_fraction=0.35,
        update_lock_fraction=0.20,
        num_tables=10,
        rows_per_table=1_000_000,
        hot_row_fraction=0.001,
        hot_access_probability=0.05,
        think_time_mean_s=0.2,
        work_time_per_lock_s=0.02,
        pages_per_lock=1.0,
    )
    defaults.update(overrides)
    return TransactionMix(**defaults)


class OltpWorkload:
    """A scheduled population of OLTP clients."""

    def __init__(
        self,
        database: "Database",
        schedule: ClientSchedule,
        mix: Optional[TransactionMix] = None,
        name: str = "oltp",
    ) -> None:
        self.database = database
        self.schedule = schedule
        self.mix = mix or standard_mix()
        self.pool = ClientPool(database, self.mix, name=name)

    def start(self) -> None:
        """Launch the schedule driver process."""
        self.database.env.process(self.schedule.drive(self.pool))

    @property
    def commits(self) -> int:
        return self.pool.total_commits()

    @property
    def rollbacks(self) -> int:
        return self.pool.total_rollbacks()
