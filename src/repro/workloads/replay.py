"""Scripted lock-demand replay.

Drives a database's lock manager so that the number of held lock
structures follows a prescribed ``(time, target_locks)`` trace --
useful for controller studies where the exact demand trajectory matters
more than a realistic transaction mix (the section 4 worked example is
one such trace; recorded production traces would be another).

Because the lock manager releases locks strictly at end of transaction
(strict two-phase locking), partial release is implemented with a pool
of *holder applications*: demand increases spawn a new holder that
acquires a batch of row locks and sits on them; demand decreases commit
whole holders (newest first).  The achieved lock count therefore tracks
the target with a granularity of ``batch_size`` structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro.errors import ConfigurationError, DeadlockError
from repro.lockmgr.manager import LockListFullError
from repro.lockmgr.modes import LockMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.database import Database


@dataclass
class _Holder:
    """One holder application and the rows it pins."""

    app_id: int
    locks: int


class LockDemandReplay:
    """Replays a lock-demand trace through the real lock manager.

    Parameters
    ----------
    database:
        The database whose lock manager is driven.
    trace:
        ``(time_s, target_locks)`` points with strictly increasing
        times.  Between points the demand holds its last value.
    table_id:
        Base table id for the replay's private row namespace; each
        holder locks rows of ``table_id + holder_index`` so escalations
        of one holder (if the policy forces any) do not entangle the
        others.
    batch_size:
        Lock structures per holder application (the replay's resolution).
    mode:
        Row lock mode the holders take (S by default).
    """

    def __init__(
        self,
        database: "Database",
        trace: Sequence[Tuple[float, int]],
        table_id: int = 5_000,
        batch_size: int = 1_024,
        mode: LockMode = LockMode.S,
    ) -> None:
        if not trace:
            raise ConfigurationError("replay trace must not be empty")
        previous = -1.0
        for time_s, target in trace:
            if time_s <= previous:
                raise ConfigurationError(
                    f"trace times must be strictly increasing, got {time_s}"
                )
            if target < 0:
                raise ConfigurationError(f"negative lock target {target}")
            previous = time_s
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        self.database = database
        self.trace = [(float(t), int(n)) for t, n in trace]
        self.table_id = table_id
        self.batch_size = batch_size
        self.mode = mode
        self._holders: List[_Holder] = []
        self._next_table = table_id
        #: Targets that could not be fully reached (memory pressure).
        self.shortfalls = 0

    @property
    def held_locks(self) -> int:
        """Row-lock structures currently pinned by the replay."""
        return sum(h.locks for h in self._holders)

    def start(self) -> None:
        """Register the replay's DES process."""
        self.database.env.process(self.run())

    def run(self):
        env = self.database.env
        for time_s, target in self.trace:
            delay = time_s - env.now
            if delay > 0:
                yield env.timeout(delay)
            yield from self._adjust_to(target)

    def _adjust_to(self, target: int):
        # release whole holders (newest first) while we are above target
        while self._holders and self.held_locks - self._holders[-1].locks >= target:
            holder = self._holders.pop()
            self.database.lock_manager.release_all(holder.app_id)
            self.database.deregister_application(holder.app_id)
        # spawn holders while we are below target
        while self.held_locks + self.batch_size <= target or (
            self.held_locks < target
            and target - self.held_locks < self.batch_size
        ):
            want = min(self.batch_size, target - self.held_locks)
            holder = yield from self._spawn_holder(want)
            if holder is None:
                self.shortfalls += 1
                return
            self._holders.append(holder)

    def _spawn_holder(self, locks: int):
        database = self.database
        app_id = database.next_app_id()
        database.register_application(app_id)
        table = self._next_table
        self._next_table += 1
        acquired = 0
        try:
            for row in range(locks):
                yield from database.lock_manager.lock_row(
                    app_id, table, row, self.mode
                )
                acquired += 1
        except (DeadlockError, LockListFullError):
            database.lock_manager.release_all(app_id)
            database.deregister_application(app_id)
            return None
        # the intent lock also occupies a structure; report row locks
        return _Holder(app_id=app_id, locks=acquired)
