"""Workload generators driving the simulated database.

* :mod:`repro.workloads.schedule` -- stepwise client-count schedules
  (ramp, surge, step-down),
* :mod:`repro.workloads.oltp` -- closed-loop OLTP client populations
  (the paper's TPCC-like side),
* :mod:`repro.workloads.dss` -- the reporting query of Figure 11 with
  massive row-locking requirements (the TPCH-like side),
* :mod:`repro.workloads.batch` -- batch update jobs (section 3.4's
  motivation for time-limited lock-memory peaks).
"""

from repro.workloads.batch import BatchUpdateJob
from repro.workloads.dss import ReportingQuery
from repro.workloads.oltp import OltpWorkload
from repro.workloads.replay import LockDemandReplay
from repro.workloads.schedule import ClientSchedule
from repro.workloads.tpcc import TpccMix, TpccWorkload
from repro.workloads.tpch import TpchQueryStream

__all__ = [
    "BatchUpdateJob",
    "ReportingQuery",
    "OltpWorkload",
    "LockDemandReplay",
    "ClientSchedule",
    "TpccMix",
    "TpccWorkload",
    "TpchQueryStream",
]
