"""Workload generators driving the simulated database.

* :mod:`repro.workloads.schedule` -- stepwise client-count schedules
  (ramp, surge, step-down),
* :mod:`repro.workloads.oltp` -- closed-loop OLTP client populations
  (the paper's TPCC-like side),
* :mod:`repro.workloads.dss` -- the reporting query of Figure 11 with
  massive row-locking requirements (the TPCH-like side),
* :mod:`repro.workloads.batch` -- batch update jobs (section 3.4's
  motivation for time-limited lock-memory peaks),
* :mod:`repro.workloads.contention` -- Thomasian-style contention
  regimes, wait-depth statistics, thrashing-point detection and the
  synthetic demand traces the scenario matrix replays.
"""

from repro.workloads.batch import BatchUpdateJob
from repro.workloads.contention import (
    REGIMES,
    TRACES,
    ThrashingDetector,
    build_regime,
    build_trace,
    diurnal_trace,
    flash_crowd_trace,
    max_wait_depth,
    wait_depth,
)
from repro.workloads.dss import ReportingQuery
from repro.workloads.oltp import OltpWorkload
from repro.workloads.replay import LockDemandReplay
from repro.workloads.schedule import ClientSchedule
from repro.workloads.tpcc import TpccMix, TpccWorkload
from repro.workloads.tpch import TpchQueryStream

__all__ = [
    "BatchUpdateJob",
    "REGIMES",
    "TRACES",
    "ThrashingDetector",
    "build_regime",
    "build_trace",
    "diurnal_trace",
    "flash_crowd_trace",
    "max_wait_depth",
    "wait_depth",
    "ReportingQuery",
    "OltpWorkload",
    "LockDemandReplay",
    "ClientSchedule",
    "TpccMix",
    "TpccWorkload",
    "TpchQueryStream",
]
