"""The reporting (DSS) query of Figure 11.

A single decision-support query "with high requirements on locking, CPU
and I/O" is injected into a steady OLTP system.  It reads a large table
with row-level share locks acquired at a steady rate, so lock memory
must grow by tens of times within seconds to avoid escalation.

The query consults the :class:`repro.core.optimizer.QueryOptimizer`
first: with the *stable* compiler view (10 % of databaseMemory) it
compiles to row locking even though the instantaneous lock memory at
submission time is tiny -- exactly the section 3.6 behaviour.  A query
estimated beyond even the compiler view compiles to a table lock
instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.optimizer import LockGranularity, QueryOptimizer
from repro.engine.des import Environment
from repro.errors import DeadlockError
from repro.lockmgr.manager import LockListFullError
from repro.lockmgr.modes import LockMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.database import Database


@dataclass
class ReportingQueryResult:
    """Outcome of one reporting query run."""

    started_at: float
    finished_at: float
    rows_locked: int
    granularity: LockGranularity
    completed: bool
    error: Optional[str] = None


class ReportingQuery:
    """One DSS query: lock ``row_count`` rows, hold, then release.

    Parameters
    ----------
    database:
        The database to run against.
    start_time_s:
        When the query is submitted.
    row_count:
        Rows the query reads (each takes a row S lock unless the
        optimizer chose a table lock).
    table_id:
        The (TPCH-side) table scanned; defaults to a table id outside
        the OLTP range so the scan does not conflict with OLTP writers.
    acquisition_duration_s:
        Time over which the row locks are acquired (the paper's query
        drove a 60x lock memory ramp over roughly 25 seconds).
    hold_duration_s:
        Processing time after the scan completes, locks still held.
    sort_rows:
        When set, the query sorts this many rows after the scan (locks
        still held); the duration comes from the database's sort-heap
        model, so an undersized sort heap makes the query spill and run
        longer -- the "high requirements on ... CPU and I/O" side of
        the paper's reporting query.
    """

    #: Row locks per DES work event while scanning.
    SCAN_BATCH = 512

    def __init__(
        self,
        database: "Database",
        start_time_s: float,
        row_count: int,
        table_id: int = 1_000,
        acquisition_duration_s: float = 25.0,
        hold_duration_s: float = 30.0,
        use_optimizer: bool = True,
        sort_rows: Optional[int] = None,
    ) -> None:
        if row_count <= 0:
            raise ValueError(f"row_count must be positive, got {row_count}")
        if acquisition_duration_s < 0 or hold_duration_s < 0:
            raise ValueError("durations must be non-negative")
        if sort_rows is not None and sort_rows < 0:
            raise ValueError(f"sort_rows must be non-negative, got {sort_rows}")
        self.database = database
        self.start_time_s = start_time_s
        self.row_count = row_count
        self.table_id = table_id
        self.acquisition_duration_s = acquisition_duration_s
        self.hold_duration_s = hold_duration_s
        self.use_optimizer = use_optimizer
        self.sort_rows = sort_rows
        self.result: Optional[ReportingQueryResult] = None

    def start(self) -> None:
        """Register the query's DES process."""
        self.database.env.process(self.run())

    def _choose_granularity(self) -> LockGranularity:
        if not self.use_optimizer:
            return LockGranularity.ROW
        optimizer = QueryOptimizer(
            params=getattr(self.database.policy, "params", None)
            or _default_params(),
            database_memory_pages=self.database.registry.total_pages,
        )
        return optimizer.choose_lock_granularity(self.row_count).granularity

    def run(self):
        """DES process: wait, scan with row locks, hold, release."""
        env: Environment = self.database.env
        lock_manager = self.database.lock_manager
        delay = self.start_time_s - env.now
        if delay > 0:
            yield env.timeout(delay)
        app_id = self.database.next_app_id()
        self.database.register_application(app_id)
        started = env.now
        granularity = self._choose_granularity()
        rows_locked = 0
        error: Optional[str] = None
        completed = False
        try:
            if granularity is LockGranularity.TABLE:
                yield from lock_manager.lock_table(app_id, self.table_id, LockMode.S)
                yield env.timeout(self.acquisition_duration_s)
            else:
                batch_delay = (
                    self.acquisition_duration_s * self.SCAN_BATCH / self.row_count
                )
                for row_id in range(self.row_count):
                    yield from lock_manager.lock_row(
                        app_id, self.table_id, row_id, LockMode.S
                    )
                    rows_locked += 1
                    if (row_id + 1) % self.SCAN_BATCH == 0 and batch_delay > 0:
                        yield env.timeout(batch_delay)
            if self.sort_rows:
                sort_duration = self.database.sort_time(self.sort_rows)
                if sort_duration > 0:
                    yield env.timeout(sort_duration)
            if self.hold_duration_s > 0:
                yield env.timeout(self.hold_duration_s)
            completed = True
            self.database.note_commit()
        except (DeadlockError, LockListFullError) as exc:
            error = type(exc).__name__
            self.database.note_rollback()
        finally:
            lock_manager.release_all(app_id)
            self.database.deregister_application(app_id)
            self.result = ReportingQueryResult(
                started_at=started,
                finished_at=env.now,
                rows_locked=rows_locked,
                granularity=granularity,
                completed=completed,
                error=error,
            )


def _default_params():
    from repro.core.params import TuningParameters

    return TuningParameters()
