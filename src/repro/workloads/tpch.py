"""A TPC-H-like decision-support query stream.

The paper's testbed loads "a combined TPCC and TPCH schema in a single
database"; Figure 11's reporting query is the TPCH side making itself
felt.  This module generalizes the single
:class:`~repro.workloads.dss.ReportingQuery` into a *stream* of
decision-support queries with per-class footprints:

* each :class:`QueryProfile` describes scan size (row locks), scan
  duration, sort input and think time between queries -- the quantities
  that matter to lock memory and to the sort heap;
* a :class:`TpchQueryStream` submits queries drawn from a weighted
  profile mix, one at a time (a single DSS session, like the paper's),
  or several concurrently (the "two or more heavy lock consumers" case
  the section 5.3 discussion reasons about).

Query classes are loosely modelled on the TPC-H spectrum from the
light, index-friendly Q6 to the heavy full-scan Q1/Q9 shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.workloads.dss import ReportingQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.database import Database


@dataclass(frozen=True)
class QueryProfile:
    """One decision-support query class, as a resource footprint."""

    name: str
    #: Row locks taken by the scan.
    scan_rows: int
    #: Time over which the scan acquires its locks.
    scan_duration_s: float
    #: Sort input size (0 = no sort phase).
    sort_rows: int = 0
    #: Post-scan processing time with locks held.
    hold_duration_s: float = 5.0

    def __post_init__(self) -> None:
        if self.scan_rows <= 0:
            raise ConfigurationError(f"{self.name}: scan_rows must be positive")
        if self.scan_duration_s < 0 or self.hold_duration_s < 0:
            raise ConfigurationError(f"{self.name}: durations must be non-negative")
        if self.sort_rows < 0:
            raise ConfigurationError(f"{self.name}: sort_rows must be non-negative")


#: A small spectrum of query classes (row counts sized for the 512 MB
#: reference system; scale with the ``scale`` argument of the stream).
Q_LIGHT = QueryProfile("q-light", scan_rows=5_000, scan_duration_s=3.0,
                       sort_rows=0, hold_duration_s=2.0)
Q_MEDIUM = QueryProfile("q-medium", scan_rows=40_000, scan_duration_s=10.0,
                        sort_rows=40_000, hold_duration_s=5.0)
Q_HEAVY = QueryProfile("q-heavy", scan_rows=150_000, scan_duration_s=25.0,
                       sort_rows=150_000, hold_duration_s=10.0)

STANDARD_QUERY_WEIGHTS: Dict[QueryProfile, float] = {
    Q_LIGHT: 0.5,
    Q_MEDIUM: 0.35,
    Q_HEAVY: 0.15,
}


@dataclass
class QueryRecord:
    """Outcome of one stream-submitted query."""

    profile: str
    submitted_at: float
    completed: bool
    rows_locked: int
    duration_s: float


class TpchQueryStream:
    """Submits DSS queries one after another for the stream's lifetime.

    Parameters
    ----------
    database:
        The database to run against.
    start_time_s / stop_time_s:
        The stream submits its first query at ``start_time_s`` and
        submits no new query after ``stop_time_s`` (a running query
        finishes normally).
    weights:
        Profile mix; defaults to :data:`STANDARD_QUERY_WEIGHTS`.
    think_time_mean_s:
        Exponential pause between a query finishing and the next.
    table_id:
        Base table of the TPCH-side namespace; each profile scans its
        own table offset so concurrent streams do not conflict.
    scale:
        Multiplier on every profile's scan and sort rows.
    """

    def __init__(
        self,
        database: "Database",
        start_time_s: float = 0.0,
        stop_time_s: float = float("inf"),
        weights: Optional[Dict[QueryProfile, float]] = None,
        think_time_mean_s: float = 10.0,
        table_id: int = 10_000,
        scale: float = 1.0,
        name: str = "tpch",
    ) -> None:
        if weights is None:
            weights = STANDARD_QUERY_WEIGHTS
        if not weights or sum(weights.values()) <= 0:
            raise ConfigurationError("need positive query-profile weights")
        if stop_time_s < start_time_s:
            raise ConfigurationError("stop_time_s must be >= start_time_s")
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        if think_time_mean_s < 0:
            raise ConfigurationError("think_time_mean_s must be non-negative")
        self.database = database
        self.start_time_s = start_time_s
        self.stop_time_s = stop_time_s
        self.think_time_mean_s = think_time_mean_s
        self.table_id = table_id
        self.scale = scale
        self.name = name
        self._profiles = list(weights.keys())
        total = sum(weights.values())
        self._weights = [weights[p] / total for p in self._profiles]
        self._rng = database.rng.stream(f"tpch-{name}")
        #: One record per completed (or failed) query, in order.
        self.records: List[QueryRecord] = []

    def start(self) -> None:
        """Register the stream's DES process."""
        self.database.env.process(self.run())

    def _draw_profile(self) -> QueryProfile:
        return self._rng.choices(self._profiles, weights=self._weights, k=1)[0]

    def run(self):
        env = self.database.env
        delay = self.start_time_s - env.now
        if delay > 0:
            yield env.timeout(delay)
        offset = 0
        while env.now <= self.stop_time_s:
            profile = self._draw_profile()
            submitted = env.now
            query = ReportingQuery(
                self.database,
                start_time_s=env.now,
                row_count=max(1, int(profile.scan_rows * self.scale)),
                table_id=self.table_id + offset % 7,
                acquisition_duration_s=profile.scan_duration_s,
                hold_duration_s=profile.hold_duration_s,
                sort_rows=(
                    int(profile.sort_rows * self.scale)
                    if profile.sort_rows
                    else None
                ),
            )
            offset += 1
            yield from query.run()
            result = query.result
            self.records.append(
                QueryRecord(
                    profile=profile.name,
                    submitted_at=submitted,
                    completed=bool(result and result.completed),
                    rows_locked=result.rows_locked if result else 0,
                    duration_s=env.now - submitted,
                )
            )
            if self.think_time_mean_s > 0:
                yield env.timeout(
                    self._rng.expovariate(1.0 / self.think_time_mean_s)
                )

    # -- observability ---------------------------------------------------

    def completed_count(self) -> int:
        return sum(1 for r in self.records if r.completed)

    def profile_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.profile] = counts.get(record.profile, 0) + 1
        return counts
