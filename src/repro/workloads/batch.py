"""Batch update jobs.

Section 3.4 motivates asynchronous shrinking with "occasional batch
processing of updates, inserts and deletes (rollout)" that creates a
time-limited need for a very large number of locks.  A
:class:`BatchUpdateJob` models exactly that: a single application takes
X locks on a contiguous range of rows, commits, and disconnects.  The
self-tuning experiments use it to produce lock-memory peaks that later
relax via delta_reduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import DeadlockError
from repro.lockmgr.manager import LockListFullError
from repro.lockmgr.modes import LockMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.database import Database


@dataclass
class BatchJobResult:
    """Outcome of one batch update job."""

    started_at: float
    finished_at: float
    rows_updated: int
    completed: bool
    escalated: bool
    error: Optional[str] = None


class BatchUpdateJob:
    """A bulk update: X row locks on ``row_count`` rows of one table."""

    #: Rows updated per DES work event.
    BATCH = 256

    def __init__(
        self,
        database: "Database",
        start_time_s: float,
        row_count: int,
        table_id: int = 2_000,
        duration_s: float = 20.0,
    ) -> None:
        if row_count <= 0:
            raise ValueError(f"row_count must be positive, got {row_count}")
        if duration_s < 0:
            raise ValueError(f"duration_s must be non-negative, got {duration_s}")
        self.database = database
        self.start_time_s = start_time_s
        self.row_count = row_count
        self.table_id = table_id
        self.duration_s = duration_s
        self.result: Optional[BatchJobResult] = None

    def start(self) -> None:
        self.database.env.process(self.run())

    def run(self):
        env = self.database.env
        lock_manager = self.database.lock_manager
        delay = self.start_time_s - env.now
        if delay > 0:
            yield env.timeout(delay)
        app_id = self.database.next_app_id()
        self.database.register_application(app_id)
        started = env.now
        escalations_before = lock_manager.stats.escalations.count
        rows = 0
        error: Optional[str] = None
        completed = False
        try:
            batch_delay = self.duration_s * self.BATCH / self.row_count
            for row_id in range(self.row_count):
                yield from lock_manager.lock_row(
                    app_id, self.table_id, row_id, LockMode.X
                )
                rows += 1
                if (row_id + 1) % self.BATCH == 0 and batch_delay > 0:
                    yield env.timeout(batch_delay)
            completed = True
            self.database.note_commit()
        except (DeadlockError, LockListFullError) as exc:
            error = type(exc).__name__
            self.database.note_rollback()
        finally:
            lock_manager.release_all(app_id)
            self.database.deregister_application(app_id)
            self.result = BatchJobResult(
                started_at=started,
                finished_at=env.now,
                rows_updated=rows,
                completed=completed,
                escalated=lock_manager.stats.escalations.count > escalations_before,
                error=error,
            )
