"""Oracle's on-page lock model (paper section 2.3, Figure 4).

Oracle stores locks on the data pages themselves: every row carries a
lock byte, and each page holds an Interested Transaction List (ITL) in
which a transaction must own a slot before it can lock any row of the
page.  The paper calls out three consequences, all reproduced here:

1. **Permanent disk overhead** -- lock bytes and ITL slots consume page
   space; ITL growth "is not decreased until the table is reorganized".
2. **ITL waits** -- once a page's ITL slots are exhausted (and the page
   has no free space left to extend the list), a transaction wanting to
   lock an *unlocked* row of that page must wait: "the exhaustion of ITL
   space results in page level locking".
3. **No dynamic tuning** -- lock memory is fixed by on-page layout, so
   there is nothing a memory tuner can grow or shrink.

This model is deliberately standalone (it does not run inside the DES
lock manager): the benchmark uses it to quantify the qualitative claims
of the paper's comparison table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ItlConfig:
    """Page layout parameters (Oracle's INITRANS/MAXTRANS analogues)."""

    rows_per_page: int = 100
    #: ITL slots pre-allocated per page (INITRANS).
    initial_itl_slots: int = 2
    #: Hard ceiling on ITL slots per page (MAXTRANS).
    max_itl_slots: int = 24
    #: Bytes consumed by one ITL slot on disk.
    itl_slot_bytes: int = 24
    #: Bytes consumed by one row lock byte.
    lock_byte_bytes: int = 1
    #: Free space available per page for ITL extension, in bytes.
    page_free_bytes: int = 200

    def __post_init__(self) -> None:
        if self.rows_per_page <= 0:
            raise ConfigurationError("rows_per_page must be positive")
        if not 0 < self.initial_itl_slots <= self.max_itl_slots:
            raise ConfigurationError(
                "need 0 < initial_itl_slots <= max_itl_slots"
            )
        if self.itl_slot_bytes <= 0 or self.lock_byte_bytes <= 0:
            raise ConfigurationError("byte sizes must be positive")
        if self.page_free_bytes < 0:
            raise ConfigurationError("page_free_bytes must be non-negative")


@dataclass
class _Page:
    """One data page: row lock bytes plus its ITL."""

    page_id: int
    config: ItlConfig
    #: row offset -> owning transaction (lock byte set).
    row_locks: Dict[int, int] = field(default_factory=dict)
    #: transactions currently holding an ITL slot.
    itl: Set[int] = field(default_factory=set)
    #: High-water mark of ITL slots ever materialized on this page;
    #: never shrinks until reorganization (the paper's second point).
    itl_high_water: int = 0
    free_bytes_consumed: int = 0

    def __post_init__(self) -> None:
        self.itl_high_water = self.config.initial_itl_slots

    def _itl_capacity(self) -> int:
        """Slots currently materialized (allocation is permanent)."""
        return self.itl_high_water

    def _try_extend_itl(self) -> bool:
        cfg = self.config
        if self.itl_high_water >= cfg.max_itl_slots:
            return False
        if self.free_bytes_consumed + cfg.itl_slot_bytes > cfg.page_free_bytes:
            return False
        self.itl_high_water += 1
        self.free_bytes_consumed += cfg.itl_slot_bytes
        return True

    def acquire_itl(self, txn_id: int) -> bool:
        """Get an ITL slot for ``txn_id``; False means an ITL wait."""
        if txn_id in self.itl:
            return True
        if len(self.itl) < self._itl_capacity() or self._try_extend_itl():
            self.itl.add(txn_id)
            return True
        return False

    def release_itl(self, txn_id: int) -> None:
        self.itl.discard(txn_id)
        # Note: itl_high_water deliberately NOT reduced.


class OracleItlTable:
    """A table of ITL-managed pages with simple lock/commit semantics."""

    def __init__(self, num_pages: int, config: Optional[ItlConfig] = None) -> None:
        if num_pages <= 0:
            raise ConfigurationError(f"num_pages must be positive, got {num_pages}")
        self.config = config or ItlConfig()
        self.pages: List[_Page] = [
            _Page(page_id=i, config=self.config) for i in range(num_pages)
        ]
        #: Lock attempts refused because the row was already locked.
        self.row_conflicts = 0
        #: Lock attempts refused on a FREE row purely because the page's
        #: ITL was exhausted -- the de facto page-level locking effect.
        self.itl_waits = 0
        self._txn_pages: Dict[int, Set[int]] = {}

    def lock_row(self, txn_id: int, page_id: int, row_offset: int) -> bool:
        """Try to X-lock one row.  Returns False when the caller must wait."""
        page = self._page(page_id)
        if not 0 <= row_offset < self.config.rows_per_page:
            raise ValueError(
                f"row_offset {row_offset} outside page of "
                f"{self.config.rows_per_page} rows"
            )
        holder = page.row_locks.get(row_offset)
        if holder is not None and holder != txn_id:
            self.row_conflicts += 1
            return False
        if not page.acquire_itl(txn_id):
            self.itl_waits += 1
            return False
        page.row_locks[row_offset] = txn_id
        self._txn_pages.setdefault(txn_id, set()).add(page_id)
        return True

    def commit(self, txn_id: int) -> None:
        """Release the transaction's locks and ITL slots.

        Lock bytes are cleared eagerly here; the delayed-cleanout effect
        the paper describes (stale lock bytes on disk after a flush) is
        modelled by :meth:`stale_lock_bytes` before commit-time cleanup.
        """
        for page_id in self._txn_pages.pop(txn_id, set()):
            page = self._page(page_id)
            page.row_locks = {
                row: holder
                for row, holder in page.row_locks.items()
                if holder != txn_id
            }
            page.release_itl(txn_id)

    def _page(self, page_id: int) -> _Page:
        try:
            return self.pages[page_id]
        except IndexError:
            raise KeyError(f"no page {page_id}; table has {len(self.pages)}") from None

    # -- the paper's qualitative claims, quantified -------------------------

    def disk_overhead_bytes(self) -> int:
        """Permanent on-disk bytes consumed by locking structures.

        Lock bytes for every row of every page plus every ITL slot ever
        materialized (ITL space is never reclaimed).
        """
        cfg = self.config
        per_page_rows = cfg.rows_per_page * cfg.lock_byte_bytes
        total = 0
        for page in self.pages:
            total += per_page_rows + page.itl_high_water * cfg.itl_slot_bytes
        return total

    def stale_lock_bytes(self) -> int:
        """Rows whose lock byte is currently set (uncleaned if flushed)."""
        return sum(len(page.row_locks) for page in self.pages)

    def tunable_memory_pages(self) -> int:
        """Lock memory a tuner could grow or shrink: always zero."""
        return 0
