"""Executable baselines the paper compares against (section 2.3).

* :mod:`repro.baselines.static_locklist` -- a fixed LOCKLIST / fixed
  MAXLOCKS configuration (DB2 8.x without self-tuning); produces the
  Figure 7/8 escalation catastrophe when under-provisioned.
* :mod:`repro.baselines.sqlserver` -- the SQL Server 2005 behaviour the
  paper describes: dynamic growth from 2500 locks up to 60 % of server
  memory, escalation at 40 % used, an unconditional 5000-row-locks-per-
  application escalation trigger, and no memory returned to the pool.
* :mod:`repro.baselines.oracle_itl` -- Oracle's on-page lock bytes and
  Interested Transaction List model, with its ITL-exhaustion blocking
  and permanent disk-space overhead.
"""

from repro.baselines.oracle_itl import ItlConfig, OracleItlTable
from repro.baselines.sqlserver import SqlServer2005Policy
from repro.baselines.static_locklist import StaticLocklistPolicy

__all__ = [
    "ItlConfig",
    "OracleItlTable",
    "SqlServer2005Policy",
    "StaticLocklistPolicy",
]
