"""The SQL Server 2005 lock-memory behaviour, as described in section 2.3.

Quoting the paper:

* "SQL Server 2005 will initially allocate enough memory for 2500
  locks";
* additional lock memory is allocated automatically "up to a maximum of
  60 % of the total database server memory";
* "a lock escalation occurs when the memory consumed for locks reaches
  40 % of the total database engine memory.  This is not a configurable
  parameter";
* "if a single application acquires 5000 row level locks an automatic
  lock escalation is triggered regardless of the amount of memory
  available for locks.  As a result, a single reporting query can
  easily result in lock escalation.  This too is not configurable";
* no clear evidence the lock manager returns memory to the global pool
  -- so this policy never shrinks and registers no STMM tuner.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.policy import TuningPolicy
from repro.units import (
    LOCK_SIZE_BYTES,
    LOCKS_PER_BLOCK,
    PAGE_SIZE_BYTES,
    PAGES_PER_BLOCK,
    locks_to_blocks,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.database import Database


class SqlServer2005Policy(TuningPolicy):
    """Grow-only lock memory with fixed escalation triggers."""

    name = "sqlserver-2005"

    #: Initial allocation: enough memory for 2500 locks.
    INITIAL_LOCKS = 2_500
    #: Escalation threshold: lock memory used reaches 40 % of server memory.
    ESCALATION_USED_FRACTION = 0.40
    #: Hard cap on lock memory: 60 % of server memory.
    MAX_MEMORY_FRACTION = 0.60
    #: Unconditional per-application escalation trigger, in row locks.
    PER_APP_LOCK_TRIGGER = 5_000

    def __init__(self) -> None:
        self._database: Optional["Database"] = None  # set by attach

    def attach(self, database: "Database") -> None:
        self._database = database
        self._resize_to_initial(database)
        database.lock_manager.growth_provider = self._sync_grow
        database.lock_manager.maxlocks_provider = self._maxlocks_fraction
        database.lock_manager.refresh_maxlocks()
        # No STMM tuner: SQL Server's lock manager is not documented to
        # return memory to the pool, so the allocation only ratchets up.

    def _resize_to_initial(self, database: "Database") -> None:
        target_blocks = locks_to_blocks(self.INITIAL_LOCKS)
        current_blocks = database.chain.block_count
        if current_blocks < target_blocks:
            grow = target_blocks - current_blocks
            database.registry.grow_heap("locklist", grow * PAGES_PER_BLOCK)
            database.chain.add_blocks(grow)
        elif current_blocks > target_blocks:
            freed = database.chain.release_blocks(
                current_blocks - target_blocks, partial=True
            )
            database.registry.shrink_heap("locklist", freed * PAGES_PER_BLOCK)

    # -- hooks -------------------------------------------------------------

    def _sync_grow(self, blocks_wanted: int) -> int:
        """Grow unless used lock memory already hit the 40 % trigger."""
        database = self._database
        total = database.registry.total_pages
        locks_per_page = PAGE_SIZE_BYTES // LOCK_SIZE_BYTES
        used_pages = -(-database.chain.used_slots // locks_per_page)
        if used_pages >= self.ESCALATION_USED_FRACTION * total:
            return 0  # denial triggers escalation in the lock manager
        cap_pages = int(self.MAX_MEMORY_FRACTION * total)
        headroom = cap_pages - database.chain.allocated_pages
        if headroom < PAGES_PER_BLOCK:
            return 0
        want = min(blocks_wanted * PAGES_PER_BLOCK, headroom)
        granted = database.registry.grow_heap("locklist", want, partial=True)
        blocks = granted // PAGES_PER_BLOCK
        remainder = granted - blocks * PAGES_PER_BLOCK
        if remainder:
            database.registry.shrink_heap("locklist", remainder)
        return blocks

    def _maxlocks_fraction(self) -> float:
        """The 5000-locks-per-application trigger as a capacity fraction."""
        capacity = max(LOCKS_PER_BLOCK, self._database.chain.capacity_slots)
        return max(min(0.98, self.PER_APP_LOCK_TRIGGER / capacity), 1e-6)

    def describe(self) -> str:
        return (
            f"{self.name}: start {self.INITIAL_LOCKS} locks, grow to "
            f"{self.MAX_MEMORY_FRACTION:.0%}, escalate at "
            f"{self.ESCALATION_USED_FRACTION:.0%} used or "
            f"{self.PER_APP_LOCK_TRIGGER} locks/application; never shrinks"
        )
