"""A statically configured lock list: no growth, no shrink, no adaptation.

This is DB2 8.x (and any manually tuned system) as the paper frames it:
the administrator picks LOCKLIST and MAXLOCKS; an under-provisioned pick
escalates and collapses concurrency (section 5.1, Figures 7 and 8), an
over-provisioned pick wastes memory permanently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.policy import TuningPolicy
from repro.errors import ConfigurationError
from repro.units import PAGES_PER_BLOCK, round_pages_to_blocks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.database import Database


class StaticLocklistPolicy(TuningPolicy):
    """Fixed LOCKLIST and MAXLOCKS, as a DBA would configure them.

    Parameters
    ----------
    locklist_pages:
        LOCKLIST in 4 KB pages (rounded up to whole 128 KB blocks).
        ``None`` keeps the database's configured initial size.
    maxlocks_fraction:
        Static MAXLOCKS.  The paper cites 10 % as "the previous default
        value used by DB2 in past product releases".
    """

    name = "static-locklist"

    def __init__(
        self,
        locklist_pages: Optional[int] = None,
        maxlocks_fraction: float = 0.10,
    ) -> None:
        if locklist_pages is not None and locklist_pages < PAGES_PER_BLOCK:
            raise ConfigurationError(
                f"locklist_pages must be at least one block "
                f"({PAGES_PER_BLOCK} pages), got {locklist_pages}"
            )
        if not 0.0 < maxlocks_fraction <= 1.0:
            raise ConfigurationError(
                f"maxlocks_fraction must be in (0, 1], got {maxlocks_fraction}"
            )
        self.locklist_pages = locklist_pages
        self.maxlocks_fraction = maxlocks_fraction

    def attach(self, database: "Database") -> None:
        database.lock_manager.growth_provider = None
        database.lock_manager.maxlocks_provider = None
        database.lock_manager.maxlocks_fraction = self.maxlocks_fraction
        if self.locklist_pages is None:
            return
        target = round_pages_to_blocks(self.locklist_pages)
        current = database.chain.allocated_pages
        if target > current:
            database.registry.grow_heap("locklist", target - current)
            database.chain.add_blocks((target - current) // PAGES_PER_BLOCK)
        elif target < current:
            freed = database.chain.release_blocks(
                (current - target) // PAGES_PER_BLOCK, partial=False
            )
            if freed * PAGES_PER_BLOCK != current - target:
                raise ConfigurationError(
                    "cannot shrink lock list below its in-use size at attach"
                )
            database.registry.shrink_heap("locklist", current - target)

    def describe(self) -> str:
        size = (
            "configured default"
            if self.locklist_pages is None
            else f"{self.locklist_pages} pages"
        )
        return f"{self.name}: LOCKLIST {size}, MAXLOCKS {self.maxlocks_fraction:.0%}"
