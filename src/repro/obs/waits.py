"""Wait-event profiler: classify and time every blocking point.

DB2 diagnoses concurrency through its event monitor and Oracle through
the wait interface: every stall is classified (lock wait, latch miss,
queue wait, ...) and attributed to the resource -- and, for lock waits,
the *blocker* -- that caused it.  Nikolaev's DTrace latch study does the
same for Oracle latches with gets / misses / spins / sleeps counters.
This module is that layer for the live service:

``WaitEventProfiler``
    One profiler per lock domain (per shard in the sharded stack).
    Lock waits are recorded begin/end with blocker attribution (holding
    app, its mode, the contended resource, wait depth); latch misses,
    admission-queue waits and synchronous-growth stalls are one-shot
    observations.  Every completed wait lands in a labeled wait-class
    histogram (``service.wait.seconds{class=...}``) and -- except latch
    misses, which are far too hot -- in a bounded ring of raw
    :class:`WaitEvent` records for forensics and offline analysis.

``LatchStats``
    Oracle-style latch counters for the service mutex: ``gets`` (every
    acquisition), ``misses`` (contended acquisitions), ``spins``
    (bounded try-acquire retries), ``sleeps`` (blocking waits after the
    spin budget) and ``sleep_time_s``.

Disabled overhead is the repository-wide contract: a probe that is not
enabled costs exactly one ``is None`` check on the hot path
(``tests/obs/test_overhead.py`` enforces this for the DES manager; the
service keeps the same shape for its latch and admission probes).

Thread-safety model: each wait class is mutated under exactly one lock
domain (the manager classes under the service mutex, ``admission``
under the admission condition, ``latch`` partly *outside* the mutex --
see below), histograms lock internally, ``deque.append`` is atomic, and
the per-class totals dict is pre-created for every class at init so
readers never race dict growth.  Latch counters are plain ints bumped
only *after* the mutex is held, so they are serialized by the latch
itself.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.registry import WALL_CLOCK_BUCKETS_S, MetricRegistry

#: Closed vocabulary of wait classes.  ``lock.*`` carries the terminal
#: outcome of the lock wait; the rest are single-shot stall classes.
WAIT_CLASSES = (
    "lock.granted",
    "lock.timeout",
    "lock.cancelled",
    "lock.deadlock",
    "latch",
    "admission",
    "sync-growth",
)

#: Histogram recording every completed wait, labeled by ``class``.
WAIT_SECONDS_METRIC = "service.wait.seconds"

#: Bounded try-acquire retries before a contended latch get sleeps.
LATCH_SPINS = 4


class WaitEvent:
    """One completed wait, with blocker attribution for lock waits."""

    __slots__ = (
        "wait_class",
        "app_id",
        "t",
        "duration_s",
        "resource",
        "mode",
        "blocker",
        "blocker_mode",
        "depth",
        "note",
    )

    def __init__(
        self,
        wait_class: str,
        app_id: int,
        t: float,
        duration_s: float,
        resource: str = "",
        mode: str = "",
        blocker: Optional[int] = None,
        blocker_mode: str = "",
        depth: int = 0,
        note: str = "",
    ) -> None:
        self.wait_class = wait_class
        self.app_id = app_id
        self.t = t
        self.duration_s = duration_s
        self.resource = resource
        self.mode = mode
        self.blocker = blocker
        self.blocker_mode = blocker_mode
        self.depth = depth
        self.note = note

    def to_dict(self) -> dict:
        return {
            "class": self.wait_class,
            "app": self.app_id,
            "t": self.t,
            "duration_s": self.duration_s,
            "resource": self.resource,
            "mode": self.mode,
            "blocker": self.blocker,
            "blocker_mode": self.blocker_mode,
            "depth": self.depth,
            "note": self.note,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WaitEvent({self.wait_class!r}, app={self.app_id}, "
            f"t={self.t:.6f}, {self.duration_s * 1e3:.3f} ms, "
            f"resource={self.resource!r}, blocker={self.blocker})"
        )


class LatchStats:
    """Oracle-style latch acquisition counters (plain ints).

    Every field is written only while the latch itself is held, so the
    increments are serialized without any extra synchronization; readers
    may see a value one update stale, which is fine for monitoring.
    """

    __slots__ = ("gets", "misses", "spins", "sleeps", "sleep_time_s")

    def __init__(self) -> None:
        self.gets = 0
        self.misses = 0
        self.spins = 0
        self.sleeps = 0
        self.sleep_time_s = 0.0

    def to_dict(self) -> dict:
        return {
            "gets": self.gets,
            "misses": self.misses,
            "spins": self.spins,
            "sleeps": self.sleeps,
            "sleep_time_s": self.sleep_time_s,
        }


class _OpenWait:
    """Begin-side context of a lock wait, keyed by waiting app."""

    __slots__ = ("started", "resource", "mode", "blocker", "blocker_mode", "depth")

    def __init__(
        self,
        started: float,
        resource: str,
        mode: str,
        blocker: Optional[int],
        blocker_mode: str,
        depth: int,
    ) -> None:
        self.started = started
        self.resource = resource
        self.mode = mode
        self.blocker = blocker
        self.blocker_mode = blocker_mode
        self.depth = depth


class WaitEventProfiler:
    """Wait-class histograms plus a bounded ring of raw wait events.

    One instance serves one lock domain: the DES/live lock manager sets
    ``manager.wait_profiler``, the wall-clock environment sets
    ``env.latch_profiler`` and the admission gate ``wait_profiler`` --
    in the unsharded stack all three share one instance (the class sets
    are disjoint per lock domain); the sharded stack creates one per
    shard with a ``{"shard": N}`` label.
    """

    def __init__(
        self,
        clock,
        *,
        registry: Optional[MetricRegistry] = None,
        labels: Optional[Dict[str, str]] = None,
        capacity: int = 512,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.clock = clock
        self.labels = dict(labels) if labels else None
        self.latch = LatchStats()
        self._ring: Deque[WaitEvent] = deque(maxlen=capacity)
        self._open: Dict[int, _OpenWait] = {}
        # Pre-created for every class so the dict never grows and
        # lock-free readers never race a rehash.  [count, seconds].
        self._totals: Dict[str, List[float]] = {
            cls: [0, 0.0] for cls in WAIT_CLASSES
        }
        self._hist = {}
        if registry is not None:
            for cls in WAIT_CLASSES:
                merged = dict(self.labels or {})
                merged["class"] = cls
                self._hist[cls] = registry.histogram(
                    WAIT_SECONDS_METRIC,
                    bounds=WALL_CLOCK_BUCKETS_S,
                    labels=merged,
                )

    # ------------------------------------------------------------------
    # Lock waits (begin/end, called under the owning service mutex)
    # ------------------------------------------------------------------

    def begin_lock_wait(
        self,
        app_id: int,
        resource: str,
        mode: str,
        blocker: Optional[int] = None,
        blocker_mode: str = "",
        depth: int = 0,
    ) -> None:
        """A lock request just parked; remember who it is waiting for."""
        self._open[app_id] = _OpenWait(
            self.clock.now(), resource, mode, blocker, blocker_mode, depth
        )

    def end_lock_wait(self, app_id: int, outcome: str) -> None:
        """Close the open wait with its terminal outcome.

        ``outcome`` is one of ``granted`` / ``timeout`` / ``cancelled``
        / ``deadlock``.  A second call for the same app is a no-op --
        the grant-wins race in the live service means both the deadline
        canceller and the granted waiter may reach an end site, and
        exactly-once accounting falls out of the pop here.
        """
        ctx = self._open.pop(app_id, None)
        if ctx is None:
            return
        now = self.clock.now()
        self._observe(
            WaitEvent(
                "lock." + outcome,
                app_id,
                ctx.started,
                max(0.0, now - ctx.started),
                resource=ctx.resource,
                mode=ctx.mode,
                blocker=ctx.blocker,
                blocker_mode=ctx.blocker_mode,
                depth=ctx.depth,
            )
        )

    def open_lock_waits(self) -> int:
        """Lock waits begun but not yet ended (0 when quiesced)."""
        return len(self._open)

    # ------------------------------------------------------------------
    # One-shot stalls (admission, sync-growth)
    # ------------------------------------------------------------------

    def observe(
        self,
        wait_class: str,
        duration_s: float,
        *,
        app_id: int = -1,
        note: str = "",
        started: Optional[float] = None,
    ) -> None:
        """Record a completed single-shot wait (no begin/end pairing)."""
        if wait_class not in self._totals:
            raise ValueError(f"unknown wait class: {wait_class!r}")
        t = started if started is not None else self.clock.now() - duration_s
        self._observe(
            WaitEvent(wait_class, app_id, t, duration_s, note=note)
        )

    # ------------------------------------------------------------------
    # Latch gets (called by WallClockEnvironment.latch_acquire)
    # ------------------------------------------------------------------

    def latch_fast_get(self) -> None:
        """Uncontended acquisition (first try-acquire succeeded)."""
        self.latch.gets += 1

    def latch_spin_get(self, spins: int) -> None:
        """Contended acquisition won within the spin budget."""
        self.latch.gets += 1
        self.latch.misses += 1
        self.latch.spins += spins

    def latch_sleep_get(self, spins: int, slept_s: float) -> None:
        """Contended acquisition that had to block after spinning."""
        self.latch.gets += 1
        self.latch.misses += 1
        self.latch.spins += spins
        self.latch.sleeps += 1
        self.latch.sleep_time_s += slept_s
        # Latch misses are orders of magnitude hotter than lock waits:
        # histogram only, never the ring.
        totals = self._totals["latch"]
        totals[0] += 1
        totals[1] += slept_s
        hist = self._hist.get("latch")
        if hist is not None:
            hist.observe(slept_s)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def class_totals(self) -> Dict[str, Tuple[int, float]]:
        """``{class: (count, total_seconds)}`` for every wait class."""
        return {cls: (int(c), s) for cls, (c, s) in self._totals.items()}

    def recent(self, limit: int = 50) -> List[WaitEvent]:
        """Most recent ``limit`` raw wait events, oldest first."""
        events = list(self._ring)
        return events[-limit:]

    def to_dicts(self) -> List[dict]:
        """The raw ring as dicts (telemetry export)."""
        return [event.to_dict() for event in self._ring]

    def __len__(self) -> int:
        return len(self._ring)

    # ------------------------------------------------------------------

    def _observe(self, event: WaitEvent) -> None:
        totals = self._totals[event.wait_class]
        totals[0] += 1
        totals[1] += event.duration_s
        hist = self._hist.get(event.wait_class)
        if hist is not None:
            hist.observe(event.duration_s)
        self._ring.append(event)


def merged_class_totals(
    profilers,
) -> Dict[str, Tuple[int, float]]:
    """Sum :meth:`WaitEventProfiler.class_totals` across profilers."""
    merged: Dict[str, List[float]] = {cls: [0, 0.0] for cls in WAIT_CLASSES}
    for prof in profilers:
        for cls, (count, seconds) in prof.class_totals().items():
            merged[cls][0] += count
            merged[cls][1] += seconds
    return {cls: (int(c), s) for cls, (c, s) in merged.items()}


__all__ = [
    "LATCH_SPINS",
    "WAIT_CLASSES",
    "WAIT_SECONDS_METRIC",
    "LatchStats",
    "WaitEvent",
    "WaitEventProfiler",
    "merged_class_totals",
]
