"""Incident forensics: structured records for the moments that hurt.

The wait profiler (:mod:`repro.obs.waits`) answers "where does time
go"; this module answers "what exactly happened" at the three discrete
failure events the paper's tuning loop is designed around:

``deadlock``
    A victim was chosen -- by the immediate cycle check in the lock
    manager or by the cross-shard sweep.  The record carries the
    wait-for cycle, the contended resource and the victim rationale.
``escalation``
    A row-to-table escalation fired (paper section 3.1's signal).  The
    record carries the escalated table, trigger reason, rows freed and
    whether waiters were stalled behind the escalating app.
``tuner-freeze``
    The tuning daemon crashed and froze the LOCKLIST (degraded static
    mode).  The record carries the exception and final chain posture.

Every record also snapshots the lock-table *posture* (pages, slots,
free fraction, waiter count), the top blockers at capture time, and the
tail of the STMM audit ring -- the context a DBA would pull from DB2's
``db2pd -locks`` plus the event monitor after the fact.  Records live
in a bounded ring (:class:`IncidentLog`, same shape as the audit ring),
are served on the ``/incidents`` ops endpoint, and ride the telemetry
JSONL as schema-v3 ``incident`` records.

Capture cost is paid only when an incident fires -- deadlocks,
escalations and freezes are rare by construction -- so incident
recording is always on; the hot-path contract is the usual single
``is None`` check at each capture site.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional

#: Closed vocabulary of incident kinds.  ``worker-crash`` is the
#: multi-process analogue of ``tuner-freeze``: a worker process died
#: and the surviving pool froze to static LOCKLIST sizing.
INCIDENT_KINDS = ("deadlock", "escalation", "tuner-freeze", "worker-crash")


@dataclass
class IncidentRecord:
    """One captured incident with its forensic context."""

    #: One of :data:`INCIDENT_KINDS`.
    kind: str
    #: Clock time of capture (wall seconds for the live service).
    time: float
    #: Application at the center of the incident (victim / escalator),
    #: or -1 for chain-level incidents (tuner freeze).
    app_id: int
    #: Shard the incident fired on (0 for the unsharded stack).
    shard: int
    #: Human-readable rationale (victim choice, trigger, crash message).
    detail: str
    #: Wait-for cycle as app ids, victim first (deadlocks only).
    cycle: List[int] = field(default_factory=list)
    #: Lock-table posture at capture time.
    posture: Dict[str, Any] = field(default_factory=dict)
    #: ``[{app, waiters_blocked, slots_held}, ...]`` -- worst first.
    blockers: List[Dict[str, Any]] = field(default_factory=list)
    #: Most recent STMM audit entries at capture time.
    audit_tail: List[Dict[str, Any]] = field(default_factory=list)
    #: Kind-specific extras (escalated table, rows freed, ...).
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "IncidentRecord":
        return cls(
            kind=str(record["kind"]),
            time=float(record["time"]),
            app_id=int(record["app_id"]),
            shard=int(record["shard"]),
            detail=str(record["detail"]),
            cycle=[int(app) for app in record.get("cycle", [])],
            posture=dict(record.get("posture", {})),
            blockers=[dict(b) for b in record.get("blockers", [])],
            audit_tail=[dict(a) for a in record.get("audit_tail", [])],
            data=dict(record.get("data", {})),
        )


class IncidentLog:
    """A bounded, thread-safe ring of :class:`IncidentRecord`.

    Appends come from request threads (deadlock, escalation) and the
    tuner thread (freeze); reads come from HTTP handler threads via
    ``/incidents``.  Same discipline as the STMM audit ring.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._records: Deque[IncidentRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Total incidents ever recorded (survives ring eviction).
        self.total_recorded = 0

    def append(self, record: IncidentRecord) -> None:
        if record.kind not in INCIDENT_KINDS:
            raise ValueError(
                f"unknown incident kind {record.kind!r}; "
                f"expected one of {INCIDENT_KINDS}"
            )
        with self._lock:
            self._records.append(record)
            self.total_recorded += 1

    def records(self) -> List[IncidentRecord]:
        """A snapshot copy of the ring, oldest first."""
        with self._lock:
            return list(self._records)

    def tail(self, n: int) -> List[IncidentRecord]:
        if n <= 0:
            return []
        with self._lock:
            return list(self._records)[-n:]

    def kinds(self) -> List[str]:
        """The kind sequence currently in the ring, oldest first."""
        return [record.kind for record in self.records()]

    def kind_counts(self) -> Dict[str, int]:
        """``{kind: count}`` over the current ring contents."""
        counts = {kind: 0 for kind in INCIDENT_KINDS}
        for record in self.records():
            counts[record.kind] += 1
        return counts

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [record.to_dict() for record in self.records()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self):
        return iter(self.records())

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"IncidentLog({len(self._records)}/{self.capacity} held, "
                f"{self.total_recorded} total)"
            )


class IncidentRecorder:
    """Capture-site helper bound to one lock domain (shard).

    The stacks create one per shard, all feeding a single shared
    :class:`IncidentLog`; the recorder knows how to snapshot a lock
    manager's posture and top blockers at the moment of capture.  The
    ``audit`` attribute is wired by the stack once the tuner exists
    (capture sites run before tuner construction during wiring).
    """

    def __init__(self, log: IncidentLog, *, shard: int = 0, audit=None) -> None:
        self.log = log
        self.shard = shard
        self.audit = audit
        #: ``{app_id: trace_id}`` for requests currently executing under
        #: a sampled trace (set/popped by the server's traced execute
        #: path).  Incidents captured against an app in this map carry
        #: ``data["trace_id"]``, linking the incident to the trace it
        #: hurt.  Plain dict, GIL-atomic set/pop -- no lock.
        self.trace_ids: Dict[int, int] = {}

    # -- capture sites -------------------------------------------------

    def record_deadlock(
        self,
        manager,
        app_id: int,
        resource,
        cycle: List[int],
        detail: str,
    ) -> None:
        """A deadlock victim was just chosen (before its error raises)."""
        data: Dict[str, Any] = {"resource": str(resource)}
        trace_id = self._trace_of(app_id, cycle)
        if trace_id is not None:
            data["trace_id"] = trace_id
        self.log.append(
            IncidentRecord(
                kind="deadlock",
                time=manager.env.now,
                app_id=app_id,
                shard=self.shard,
                detail=detail,
                cycle=list(cycle),
                posture=self._posture(manager),
                blockers=self._top_blockers(manager),
                audit_tail=self._audit_tail(),
                data=data,
            )
        )

    def record_escalation(
        self,
        manager,
        app_id: int,
        table_id: int,
        reason: str,
        rows_freed: int,
        waiters_present: bool,
    ) -> None:
        """A row-to-table escalation just completed."""
        data: Dict[str, Any] = {
            "table_id": table_id,
            "reason": reason,
            "rows_freed": rows_freed,
            "waiters_present": waiters_present,
        }
        trace_id = self._trace_of(app_id)
        if trace_id is not None:
            data["trace_id"] = trace_id
        self.log.append(
            IncidentRecord(
                kind="escalation",
                time=manager.env.now,
                app_id=app_id,
                shard=self.shard,
                detail=f"escalated table {table_id} ({reason})",
                posture=self._posture(manager),
                blockers=self._top_blockers(manager),
                audit_tail=self._audit_tail(),
                data=data,
            )
        )

    def record_freeze(self, chain, now: float, exc: BaseException) -> None:
        """The tuning daemon crashed; the LOCKLIST is frozen."""
        self.log.append(
            IncidentRecord(
                kind="tuner-freeze",
                time=now,
                app_id=-1,
                shard=self.shard,
                detail=f"{type(exc).__name__}: {exc}",
                posture={
                    "allocated_pages": chain.allocated_pages,
                    "used_slots": chain.used_slots,
                    "capacity_slots": chain.capacity_slots,
                },
                audit_tail=self._audit_tail(),
            )
        )

    def _trace_of(
        self, app_id: int, cycle: Optional[List[int]] = None
    ) -> Optional[int]:
        """The trace id executing as ``app_id`` (or anyone in the
        cycle), if a sampled trace is in flight there."""
        trace_id = self.trace_ids.get(app_id)
        if trace_id is not None:
            return trace_id
        for app in cycle or ():
            trace_id = self.trace_ids.get(app)
            if trace_id is not None:
                return trace_id
        return None

    # -- snapshot helpers ----------------------------------------------

    @staticmethod
    def _posture(manager) -> Dict[str, Any]:
        chain = manager.chain
        capacity = chain.capacity_slots
        free = (capacity - chain.used_slots) / capacity if capacity else 0.0
        return {
            "allocated_pages": chain.allocated_pages,
            "used_slots": chain.used_slots,
            "capacity_slots": capacity,
            "free_fraction": round(free, 4),
            "maxlocks_fraction": manager.maxlocks_fraction,
            "waiting_apps": len(manager.waiting_apps()),
        }

    @staticmethod
    def _top_blockers(manager, limit: int = 5) -> List[Dict[str, Any]]:
        """Apps blocking the most waiters right now, worst first."""
        blocked: Dict[int, int] = {}
        for obj in manager.contended_objects().values():
            for waiter in obj.waiters:
                for blocker in obj.blockers_of(waiter):
                    blocked[blocker] = blocked.get(blocker, 0) + 1
        worst = sorted(blocked.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            {
                "app": app,
                "waiters_blocked": count,
                "slots_held": manager.app_slots(app),
            }
            for app, count in worst[:limit]
        ]

    def _audit_tail(self, n: int = 5) -> List[Dict[str, Any]]:
        if self.audit is None:
            return []
        return [record.to_dict() for record in self.audit.tail(n)]


__all__ = [
    "INCIDENT_KINDS",
    "IncidentLog",
    "IncidentRecord",
    "IncidentRecorder",
]
