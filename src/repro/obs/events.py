"""One time-ordered telemetry stream per run, exported as JSONL.

Before this module, a run's observability was split across three silos:
:class:`~repro.lockmgr.tracing.LockTrace` events (ring buffer),
:class:`~repro.core.controller.ControllerDecision` records (plain list
on the controller) and :class:`~repro.engine.metrics.MetricsRecorder`
time series.  :class:`RunTelemetry` unifies them: one object holds all
three plus the run's :class:`~repro.obs.registry.MetricRegistry`, and
serializes them as a single time-ordered JSONL stream that
:meth:`RunTelemetry.from_jsonl` reads back losslessly -- event counts,
controller decisions and histogram percentiles all survive the round
trip exactly, so a run can be audited entirely offline.

Record kinds (schema version 5, one JSON object per line):

=============  ==============================================================
``meta``       run header: ``label``, ``version`` (first line of every run)
``trace``      one lock manager event: ``t``, ``event``, ``app``,
               ``detail``, ``resource``, ``value``
``decision``   one controller tuning decision (all ControllerDecision fields)
``audit``      one STMM tuning audit entry (all TuningAuditRecord fields;
               added in schema version 2, emitted by the live service)
``wait``       one completed wait event from the wait-event profiler
               (``t``, ``class``, ``app``, ``duration_s``, blocker
               attribution; added in schema version 3)
``incident``   one incident forensics record (all IncidentRecord fields;
               added in schema version 3)
``broker``     one whole-memory broker audit entry (all BrokerAuditRecord
               fields; added in schema version 4, emitted by the live
               service when the MemoryBroker is enabled)
``reqtrace``   one completed end-to-end request trace (all RequestTrace
               fields: trace/span ids, hop durations, wire tax; added
               in schema version 5, emitted by the networked service
               when request tracing is sampled -- distinct from the
               lock manager's ``trace`` event records)
``sample``     one metric sample: ``t``, ``series``, ``value``
``counter``    final counter value: ``name``, ``value``
``gauge``      final gauge value: ``name``, ``value``
``histogram``  full histogram snapshot (bounds, bucket counts, sum, min/max)
=============  ==============================================================

``trace``/``decision``/``audit``/``wait``/``incident``/``broker``/
``reqtrace``/``sample`` records are merged in ``t`` order; registry
records follow at the end (they are end-of-run snapshots).  The reader
accepts schema versions 1 through 5 (earlier versions simply contain
none of the newer kinds).
"""

from __future__ import annotations

import heapq
import json
from collections import Counter as TallyCounter
from dataclasses import asdict
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

from repro.core.controller import ControllerDecision
from repro.engine.metrics import MetricsRecorder
from repro.lockmgr.tracing import TraceEvent
from repro.obs.audit import BrokerAuditRecord, TuningAuditRecord
from repro.obs.incidents import IncidentRecord
from repro.obs.registry import Histogram, MetricRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.database import Database

#: Bumped when the JSONL record schema changes incompatibly.
SCHEMA_VERSION = 5

#: Versions :func:`load_runs` understands (v1 lacks ``audit`` records,
#: v2 lacks ``wait`` and ``incident`` records, v3 lacks ``broker``
#: records, v4 lacks ``reqtrace`` records).
SUPPORTED_SCHEMA_VERSIONS = frozenset({1, 2, 3, 4, 5})

#: The histogram the lock manager observes wait durations into.
WAIT_LATENCY_METRIC = "lock.wait.latency_s"


class RunTelemetry:
    """Everything one run emitted, unified and (de)serializable.

    Build with :meth:`from_database` after a simulation finishes, or
    :meth:`from_jsonl` to reload an exported stream.  Construct
    directly for synthetic streams in tests.
    """

    def __init__(
        self,
        label: str = "run",
        trace_events: Optional[List[TraceEvent]] = None,
        decisions: Optional[List[ControllerDecision]] = None,
        metrics: Optional[MetricsRecorder] = None,
        registry: Optional[MetricRegistry] = None,
        audit: Optional[List[TuningAuditRecord]] = None,
        waits: Optional[List[Dict[str, Any]]] = None,
        incidents: Optional[List[IncidentRecord]] = None,
        broker: Optional[List[BrokerAuditRecord]] = None,
        traces: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        self.label = label
        self.trace_events = trace_events or []
        self.decisions = decisions or []
        self.metrics = metrics or MetricsRecorder()
        self.registry = registry or MetricRegistry()
        self.audit = audit or []
        #: Raw wait events as dicts (the profiler ring's ``to_dicts``).
        self.waits = waits or []
        self.incidents = incidents or []
        #: Whole-memory broker audit entries (trades and postures).
        self.broker = broker or []
        #: Completed end-to-end request traces as dicts (the client
        #: trace ring's ``to_dicts``; see :mod:`repro.obs.tracing`).
        self.traces = traces or []

    # -- construction --------------------------------------------------------

    @classmethod
    def from_database(cls, database: "Database", label: str = "run") -> "RunTelemetry":
        """Collect a finished database run into one telemetry object.

        Copies the lock manager's aggregate :class:`LockManagerStats`
        into registry counters/gauges (idempotently -- values are
        assigned, not added), so the exported stream carries the final
        totals even when only tracing was enabled.
        """
        tracer = database.lock_manager.tracer
        controller = getattr(database.policy, "controller", None)
        registry = getattr(database, "obs_registry", None) or MetricRegistry()
        telemetry = cls(
            label=label,
            trace_events=list(tracer) if tracer is not None else [],
            decisions=list(controller.decisions) if controller is not None else [],
            metrics=database.metrics,
            registry=registry,
        )
        telemetry._sync_final_state(database)
        return telemetry

    def _sync_final_state(self, database: "Database") -> None:
        stats = database.lock_manager.stats
        reg = self.registry
        for name, value in (
            ("lock.requests", stats.requests),
            ("lock.grants.immediate", stats.immediate_grants),
            ("lock.waits", stats.waits),
            ("lock.deadlocks", stats.deadlocks),
            ("lock.timeouts", stats.lock_timeouts),
            ("lock.list_full_errors", stats.lock_list_full_errors),
            ("lock.escalations", stats.escalations.count),
            ("lock.escalations.exclusive", stats.escalations.exclusive_count),
            ("lock.escalations.failed", stats.escalations.failures),
            ("lock.sync_growth.blocks_total", stats.sync_growth_blocks),
        ):
            reg.counter(name).value = float(value)
        for name, value in (
            ("run.duration_s", database.env.now),
            ("run.commits", database.commits),
            ("run.rollbacks", database.rollbacks),
            ("lock.final.allocated_pages", database.chain.allocated_pages),
            ("lock.final.used_slots", database.chain.used_slots),
            ("lock.final.maxlocks_fraction",
             database.lock_manager.maxlocks_fraction),
            ("lock.wait.time_total_s", stats.wait_time_total),
        ):
            reg.gauge(name).set(float(value))

    # -- queries -------------------------------------------------------------

    def event_counts(self) -> Dict[str, int]:
        """Trace events tallied per kind."""
        return dict(TallyCounter(e.kind for e in self.trace_events))

    def wait_latency(self) -> Optional[Histogram]:
        """The lock-wait latency histogram, if the run recorded one."""
        instrument = self.registry.get(WAIT_LATENCY_METRIC)
        return instrument if isinstance(instrument, Histogram) else None

    @property
    def decision_count(self) -> int:
        return len(self.decisions)

    def end_time(self) -> float:
        """Latest timestamp across all streams (0.0 when empty)."""
        candidates = [0.0]
        if self.trace_events:
            candidates.append(self.trace_events[-1].time)
        if self.decisions:
            candidates.append(self.decisions[-1].time)
        if self.audit:
            candidates.append(self.audit[-1].time)
        if self.broker:
            candidates.append(self.broker[-1].time)
        for name in self.metrics.names():
            series = self.metrics[name]
            if len(series):
                candidates.append(series.times[-1])
        return max(candidates)

    # -- serialization -------------------------------------------------------

    def records(self) -> Iterator[Dict[str, Any]]:
        """The full record stream: meta, time-ordered events, snapshots."""
        yield {"kind": "meta", "version": SCHEMA_VERSION, "label": self.label}

        def trace_records():
            for e in self.trace_events:
                yield {
                    "kind": "trace", "t": e.time, "event": e.kind,
                    "app": e.app_id, "detail": e.detail,
                    "resource": e.resource, "value": e.value,
                }

        def decision_records():
            for d in self.decisions:
                record = {"kind": "decision", "t": d.time}
                record.update(
                    {k: v for k, v in asdict(d).items() if k != "time"}
                )
                yield record

        def audit_records():
            for a in self.audit:
                record = {"kind": "audit", "t": a.time}
                record.update(
                    {k: v for k, v in a.to_dict().items() if k != "time"}
                )
                yield record

        def wait_records():
            # The profiler ring is ordered by wait END time while the
            # exported ``t`` is the wait START; heapq.merge requires
            # each input sorted by the merge key, so sort explicitly.
            for w in sorted(self.waits, key=lambda w: w["t"]):
                record = {"kind": "wait"}
                record.update(w)
                yield record

        def incident_records():
            # The record's own ``kind`` field (deadlock / escalation /
            # tuner-freeze) is exported as ``incident_kind`` so it
            # cannot collide with the stream's record-kind dispatch.
            for i in sorted(self.incidents, key=lambda i: i.time):
                record = {"kind": "incident", "t": i.time}
                record.update(
                    {
                        ("incident_kind" if k == "kind" else k): v
                        for k, v in i.to_dict().items()
                        if k != "time"
                    }
                )
                yield record

        def broker_records():
            for b in sorted(self.broker, key=lambda b: b.time):
                record = {"kind": "broker", "t": b.time}
                record.update(
                    {k: v for k, v in b.to_dict().items() if k != "time"}
                )
                yield record

        def reqtrace_records():
            # The ring is ordered by completion; ``t`` is the trace
            # start -- sort for heapq.merge like the wait records.
            for tr in sorted(self.traces, key=lambda tr: tr["t"]):
                record = {"kind": "reqtrace"}
                record.update(tr)
                yield record

        def sample_records():
            for t, row in self.metrics.to_rows():
                for series in sorted(row):
                    yield {
                        "kind": "sample", "t": t,
                        "series": series, "value": row[series],
                    }

        yield from heapq.merge(
            trace_records(), decision_records(), audit_records(),
            wait_records(), incident_records(), broker_records(),
            reqtrace_records(), sample_records(),
            key=lambda record: record["t"],
        )
        snapshot = self.registry.snapshot()
        for name, value in snapshot["counters"].items():
            yield {"kind": "counter", "name": name, "value": value}
        for name, value in snapshot["gauges"].items():
            yield {"kind": "gauge", "name": name, "value": value}
        for hist_snapshot in snapshot["histograms"].values():
            record = {"kind": "histogram"}
            record.update(hist_snapshot)
            yield record

    def write_jsonl(self, path: str, append: bool = False) -> int:
        """Write the stream to ``path``; returns the record count."""
        written = 0
        with open(path, "a" if append else "w") as handle:
            for record in self.records():
                handle.write(json.dumps(record, separators=(",", ":")))
                handle.write("\n")
                written += 1
        return written

    @classmethod
    def from_jsonl(cls, path: str) -> "RunTelemetry":
        """Reload a single-run JSONL stream written by :meth:`write_jsonl`."""
        runs = load_runs(path)
        if not runs:
            raise ValueError(f"{path}: no telemetry runs found")
        if len(runs) > 1:
            raise ValueError(
                f"{path} holds {len(runs)} runs; use repro.obs.load_runs()"
            )
        return runs[0]

    def __repr__(self) -> str:
        return (
            f"RunTelemetry({self.label!r}, {len(self.trace_events)} trace "
            f"events, {len(self.decisions)} decisions, "
            f"{len(self.audit)} audit records, "
            f"{len(self.waits)} waits, {len(self.incidents)} incidents, "
            f"{len(self.broker)} broker records, "
            f"{len(self.traces)} request traces, "
            f"{len(self.metrics.names())} series)"
        )


def load_runs(path: str) -> List[RunTelemetry]:
    """Read every run from a (possibly multi-run) JSONL telemetry file.

    A ``meta`` record starts a new run; records before the first
    ``meta`` (a hand-built file) fall into an implicit ``"run"``.
    """
    runs: List[RunTelemetry] = []
    current: Optional[RunTelemetry] = None
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: bad JSON: {exc}") from exc
            kind = record.get("kind")
            if kind == "meta":
                version = record.get("version")
                if version not in SUPPORTED_SCHEMA_VERSIONS:
                    raise ValueError(
                        f"{path}:{line_number}: schema version {version}, "
                        f"this reader handles "
                        f"{sorted(SUPPORTED_SCHEMA_VERSIONS)}"
                    )
                current = RunTelemetry(label=record.get("label", "run"))
                runs.append(current)
                continue
            if current is None:
                current = RunTelemetry()
                runs.append(current)
            _apply_record(current, record, path, line_number)
    return runs


def _apply_record(
    telemetry: RunTelemetry, record: Dict[str, Any], path: str, line_number: int
) -> None:
    kind = record.get("kind")
    if kind == "trace":
        telemetry.trace_events.append(
            TraceEvent(
                time=record["t"], kind=record["event"], app_id=record["app"],
                detail=record.get("detail", ""),
                resource=record.get("resource", ""),
                value=record.get("value", 0.0),
            )
        )
    elif kind == "decision":
        telemetry.decisions.append(
            ControllerDecision(
                time=record["t"], reason=record["reason"],
                current_pages=record["current_pages"],
                used_pages=record["used_pages"],
                free_fraction=record["free_fraction"],
                target_pages=record["target_pages"],
                min_pages=record["min_pages"], max_pages=record["max_pages"],
                escalations_in_interval=record["escalations_in_interval"],
            )
        )
    elif kind == "audit":
        fields = dict(record)
        fields["time"] = fields.pop("t")
        fields.pop("kind")
        telemetry.audit.append(TuningAuditRecord.from_dict(fields))
    elif kind == "wait":
        fields = dict(record)
        fields.pop("kind")
        telemetry.waits.append(fields)
    elif kind == "incident":
        fields = dict(record)
        fields["time"] = fields.pop("t")
        fields.pop("kind")
        fields["kind"] = fields.pop("incident_kind")
        telemetry.incidents.append(IncidentRecord.from_dict(fields))
    elif kind == "broker":
        fields = dict(record)
        fields["time"] = fields.pop("t")
        fields.pop("kind")
        telemetry.broker.append(BrokerAuditRecord.from_dict(fields))
    elif kind == "reqtrace":
        fields = dict(record)
        fields.pop("kind")
        telemetry.traces.append(fields)
    elif kind == "sample":
        telemetry.metrics.record(record["series"], record["t"], record["value"])
    elif kind == "counter":
        telemetry.registry.counter(record["name"]).value = float(record["value"])
    elif kind == "gauge":
        telemetry.registry.gauge(record["name"]).set(record["value"])
    elif kind == "histogram":
        telemetry.registry.install(Histogram.from_snapshot(record))
    else:
        raise ValueError(f"{path}:{line_number}: unknown record kind {kind!r}")


__all__ = [
    "RunTelemetry",
    "load_runs",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "WAIT_LATENCY_METRIC",
]
