"""Named runtime metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricRegistry` is the single home for every instrument one
simulated database run records.  The lock manager's hot-path probes
(lock-wait latency, synchronous-growth latency, escalation scan cost)
observe into histograms obtained from a registry; the telemetry
exporter (:mod:`repro.obs.events`) snapshots the registry into the
JSONL stream so percentiles survive a write/read round trip exactly.

Instruments are deliberately minimal:

* :class:`Counter` -- a monotonically increasing total,
* :class:`Gauge` -- a last-value-wins scalar,
* :class:`Histogram` -- fixed bucket bounds chosen at creation;
  observation is one bisect plus three float updates, and percentile
  queries are answered from the bucket counts deterministically, so a
  histogram rebuilt from its own snapshot reports *identical*
  p50/p95/p99.

The overhead contract of the wider system (one ``is None`` check per
probe site when telemetry is disabled) is enforced by the callers; see
``docs/OBSERVABILITY.md``.

Labels
------

Instruments may carry a small fixed label set (e.g. ``shard="3"``);
the live sharded service uses this for per-shard series.  A labeled
instrument's :attr:`name` is the fully rendered key
``base{key="value",...}`` (keys sorted), so the JSONL snapshot/restore
machinery and the registry's one-namespace rule work unchanged; the
structured parts stay available as :attr:`base_name` and
:attr:`labels` for exporters (``repro.obs.prometheus``).

Thread safety
-------------

The live service mutates instruments from many worker threads plus the
tuner daemon, and the ops endpoint snapshots them from HTTP handler
threads.  Every instrument therefore guards its mutators and snapshots
with its own lock (``+=`` on an attribute is not atomic in CPython),
and the registry guards get-or-create, so concurrent writers lose no
updates and a concurrent snapshot never sees a torn histogram.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

#: A rendered label set: ((key, value), ...) sorted by key.
LabelPairs = Tuple[Tuple[str, str], ...]


def _normalize_labels(labels: Optional[Mapping[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def labeled_name(name: str, labels: Optional[Mapping[str, str]] = None) -> str:
    """The fully rendered instrument key, e.g. ``a.b{shard="3"}``."""
    pairs = _normalize_labels(labels)
    if not pairs:
        return name
    rendered = ",".join(f'{k}="{v}"' for k, v in pairs)
    return f"{name}{{{rendered}}}"


def parse_labeled_name(full: str) -> Tuple[str, LabelPairs]:
    """Split a rendered key back into ``(base_name, label_pairs)``.

    Inverse of :func:`labeled_name` for the label values this library
    produces (no embedded quotes); unlabeled names pass through.
    """
    if not full.endswith("}") or "{" not in full:
        return full, ()
    base, _, body = full.partition("{")
    pairs = []
    for item in body[:-1].split(","):
        if not item:
            continue
        key, _, value = item.partition("=")
        pairs.append((key, value.strip('"')))
    return base, tuple(sorted(pairs))


class Counter:
    """A named monotonically increasing total."""

    __slots__ = ("name", "base_name", "labels", "value", "_lock")

    def __init__(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> None:
        if labels:
            self.name = labeled_name(name, labels)
            self.base_name = name
            self.labels = _normalize_labels(labels)
        else:
            self.name = name
            self.base_name, self.labels = parse_labeled_name(name)
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A named last-value-wins scalar."""

    __slots__ = ("name", "base_name", "labels", "value", "_lock")

    def __init__(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> None:
        if labels:
            self.name = labeled_name(name, labels)
            self.base_name = name
            self.labels = _normalize_labels(labels)
        else:
            self.name = name
            self.base_name, self.labels = parse_labeled_name(name)
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


def exponential_bounds(
    start: float, factor: float = 2.0, count: int = 20
) -> Tuple[float, ...]:
    """``count`` ascending bucket upper bounds growing by ``factor``."""
    if start <= 0:
        raise ValueError(f"start must be positive, got {start}")
    if factor <= 1.0:
        raise ValueError(f"factor must exceed 1, got {factor}")
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    return tuple(start * factor**i for i in range(count))


#: Simulated lock-wait latencies: 1 ms up to ~524 s in doubling buckets.
LATENCY_BUCKETS_S = exponential_bounds(0.001, 2.0, 20)
#: Wall-clock cost of a synchronous-growth provider call: 1 us .. ~0.5 s.
WALL_CLOCK_BUCKETS_S = exponential_bounds(1e-6, 2.0, 20)
#: Structure counts (escalation scan cost): 1 .. ~1M in doubling buckets.
SLOT_COUNT_BUCKETS = exponential_bounds(1.0, 2.0, 21)


class Histogram:
    """Fixed-bucket histogram with exact snapshot/restore semantics.

    Parameters
    ----------
    name:
        Instrument name (dotted, e.g. ``"lock.wait.latency_s"``).
    bounds:
        Ascending finite bucket *upper* bounds.  An implicit overflow
        bucket catches observations above the last bound.  Defaults to
        :data:`LATENCY_BUCKETS_S`.

    Percentile semantics: ``percentile(q)`` returns the upper bound of
    the first bucket whose cumulative count reaches rank
    ``ceil(q/100 * count)``, clamped to the observed maximum (the
    overflow bucket reports the maximum directly).  The answer depends
    only on the bucket counts and min/max, so a histogram restored via
    :meth:`from_snapshot` reproduces every percentile bit-for-bit.
    """

    __slots__ = (
        "name",
        "base_name",
        "labels",
        "bounds",
        "counts",
        "count",
        "sum",
        "_min",
        "_max",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        if labels:
            self.name = labeled_name(name, labels)
            self.base_name = name
            self.labels = _normalize_labels(labels)
        else:
            self.name = name
            self.base_name, self.labels = parse_labeled_name(name)
        self._lock = threading.Lock()
        chosen = tuple(
            float(b) for b in (LATENCY_BUCKETS_S if bounds is None else bounds)
        )
        if not chosen:
            raise ValueError(f"histogram {name!r} needs at least one bound")
        if any(b2 <= b1 for b1, b2 in zip(chosen, chosen[1:])):
            raise ValueError(f"histogram {name!r} bounds must be ascending")
        if not all(math.isfinite(b) for b in chosen):
            raise ValueError(f"histogram {name!r} bounds must be finite")
        self.bounds = chosen
        self.counts: List[int] = [0] * (len(chosen) + 1)
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation (the hot-path entry point)."""
        value = float(value)
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # -- aggregates ---------------------------------------------------------

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        return self.sum / self.count

    @property
    def min(self) -> float:
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        return self._min

    @property
    def max(self) -> float:
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        return self._max

    def percentile(self, q: float) -> float:
        """The q-th percentile (``q`` in (0, 100]) from the bucket counts."""
        if not 0.0 < q <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {q}")
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        rank = max(1, math.ceil(q / 100.0 * self.count))
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if i == len(self.bounds):  # overflow bucket
                    return self._max
                # the builtin, not the property (class scope is not
                # visible from method bodies)
                return min(self.bounds[i], self._max)
        raise AssertionError("unreachable: rank <= count")  # pragma: no cover

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    # -- snapshot / restore -------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable full state (exact, including min/max).

        Taken under the instrument lock, so a snapshot racing concurrent
        ``observe`` calls is internally consistent (``count`` always
        equals the sum of the bucket counts).
        """
        with self._lock:
            return {
                "name": self.name,
                "bounds": list(self.bounds),
                "counts": list(self.counts),
                "count": self.count,
                "sum": self.sum,
                "min": self._min if self.count else None,
                "max": self._max if self.count else None,
            }

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "Histogram":
        """Rebuild a histogram whose percentiles match the original."""
        hist = cls(str(snapshot["name"]), snapshot["bounds"])  # type: ignore[arg-type]
        counts = list(snapshot["counts"])  # type: ignore[arg-type]
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"snapshot for {hist.name!r} has {len(counts)} buckets, "
                f"expected {len(hist.counts)}"
            )
        hist.counts = [int(c) for c in counts]
        hist.count = int(snapshot["count"])  # type: ignore[arg-type]
        hist.sum = float(snapshot["sum"])  # type: ignore[arg-type]
        if hist.count:
            hist._min = float(snapshot["min"])  # type: ignore[arg-type]
            hist._max = float(snapshot["max"])  # type: ignore[arg-type]
        return hist

    def summary(self) -> Dict[str, float]:
        """count/mean/max/p50/p95/p99 in one dict (empty -> count only)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


Instrument = Union[Counter, Gauge, Histogram]


class MetricRegistry:
    """Get-or-create home for every instrument of one run.

    Requesting an existing name returns the existing instrument;
    requesting it as a different type raises, so two subsystems cannot
    silently fight over a name.  A label set is part of the identity:
    ``counter("x", labels={"shard": "0"})`` and ``counter("x")`` are two
    distinct instruments.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, factory) -> Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise TypeError(
                        f"metric {name!r} is a {type(existing).__name__}, "
                        f"not a {kind.__name__}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        key = labeled_name(name, labels)
        return self._get_or_create(key, Counter, lambda: Counter(name, labels))

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        key = labeled_name(name, labels)
        return self._get_or_create(key, Gauge, lambda: Gauge(name, labels))

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        key = labeled_name(name, labels)
        return self._get_or_create(
            key, Histogram, lambda: Histogram(name, bounds, labels)
        )

    def get(self, name: str) -> Optional[Instrument]:
        """The instrument called ``name``, or None."""
        with self._lock:
            return self._instruments.get(name)

    def install(self, instrument: Instrument) -> Instrument:
        """Adopt a ready-made instrument (e.g. a restored histogram).

        Replacing an existing instrument of a different type raises,
        matching the get-or-create rules.
        """
        with self._lock:
            existing = self._instruments.get(instrument.name)
            if existing is not None and type(existing) is not type(instrument):
                raise TypeError(
                    f"metric {instrument.name!r} is a {type(existing).__name__}, "
                    f"cannot install a {type(instrument).__name__}"
                )
            self._instruments[instrument.name] = instrument
            return instrument

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def counters(self) -> Iterable[Counter]:
        return [i for i in self._ordered() if isinstance(i, Counter)]

    def gauges(self) -> Iterable[Gauge]:
        return [i for i in self._ordered() if isinstance(i, Gauge)]

    def histograms(self) -> Iterable[Histogram]:
        return [i for i in self._ordered() if isinstance(i, Histogram)]

    def _ordered(self) -> List[Instrument]:
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Full registry state grouped by instrument type."""
        return {
            "counters": {c.name: c.value for c in self.counters()},
            "gauges": {g.name: g.value for g in self.gauges()},
            "histograms": {h.name: h.snapshot() for h in self.histograms()},
        }
