"""Prometheus text-format rendering of a :class:`MetricRegistry`.

The live service's ops endpoint (``repro.service.ops``) serves the
output of :func:`render_prometheus` at ``/metrics``.  The renderer is
deliberately dependency-free and follows the text exposition format
version 0.0.4:

* metric names are the registry's dotted names with every character
  outside ``[a-zA-Z0-9_:]`` mapped to ``_`` (``lock.wait.latency_s``
  becomes ``lock_wait_latency_s``);
* counters are exported with the conventional ``_total`` suffix;
* histograms become the standard triplet: cumulative ``_bucket`` series
  with ``le`` labels (including ``le="+Inf"``), ``_sum`` and ``_count``;
* instrument labels (:attr:`Instrument.labels`, e.g. ``shard="3"``)
  are rendered on every sample, with label values escaped per the spec
  (backslash, double quote, newline).

Instruments sharing a base name (one per label set) are grouped under a
single ``# TYPE`` header, as the format requires.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    LabelPairs,
    MetricRegistry,
)

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus name charset."""
    sanitized = _INVALID_CHARS.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(pairs: LabelPairs, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = list(pairs) + list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - registry never produces NaN
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricRegistry) -> str:
    """The registry's current state in Prometheus text format 0.0.4."""
    families: Dict[str, Tuple[str, List[str]]] = {}

    def family(base: str, kind: str) -> List[str]:
        entry = families.get(base)
        if entry is None:
            entry = (kind, [])
            families[base] = entry
        return entry[1]

    for counter in registry.counters():
        assert isinstance(counter, Counter)
        base = sanitize_metric_name(counter.base_name) + "_total"
        family(base, "counter").append(
            f"{base}{_render_labels(counter.labels)} "
            f"{_format_value(counter.value)}"
        )
    for gauge in registry.gauges():
        assert isinstance(gauge, Gauge)
        base = sanitize_metric_name(gauge.base_name)
        family(base, "gauge").append(
            f"{base}{_render_labels(gauge.labels)} {_format_value(gauge.value)}"
        )
    for histogram in registry.histograms():
        assert isinstance(histogram, Histogram)
        base = sanitize_metric_name(histogram.base_name)
        lines = family(base, "histogram")
        snapshot = histogram.snapshot()
        counts = snapshot["counts"]
        bounds = snapshot["bounds"]
        cumulative = 0
        for bound, bucket_count in zip(bounds, counts):
            cumulative += bucket_count
            lines.append(
                f"{base}_bucket"
                f"{_render_labels(histogram.labels, (('le', _format_value(bound)),))}"
                f" {cumulative}"
            )
        cumulative += counts[-1]  # overflow bucket
        lines.append(
            f"{base}_bucket"
            f"{_render_labels(histogram.labels, (('le', '+Inf'),))}"
            f" {cumulative}"
        )
        lines.append(
            f"{base}_sum{_render_labels(histogram.labels)} "
            f"{_format_value(snapshot['sum'])}"
        )
        lines.append(
            f"{base}_count{_render_labels(histogram.labels)} {snapshot['count']}"
        )

    out: List[str] = []
    for base in sorted(families):
        kind, lines = families[base]
        out.append(f"# TYPE {base} {kind}")
        out.extend(lines)
    return "\n".join(out) + ("\n" if out else "")


__all__ = [
    "render_prometheus",
    "sanitize_metric_name",
    "escape_label_value",
]
