"""End-to-end request tracing across the process boundary.

The sampled spans of :mod:`repro.obs.spans` and the wait-event
profiler of :mod:`repro.obs.waits` both stop at the process edge: once
a lock request leaves :class:`~repro.net.client.RoutedLockClient` for a
worker's socket, nothing can say where its time went.  This module is
the cross-process layer -- the same decomposition discipline Nikolaev's
DTrace study applies to Oracle latches (gets / misses / spins / sleeps
instead of one opaque total), applied to a request's journey over the
wire.

A sampled request is decomposed into the **closed hop vocabulary**
:data:`HOP_NAMES`:

``client.encode``
    Building the request frame bytes on the client.
``client.net_wait``
    Client wall time from send to reply completion *minus* the time the
    server reported spending -- the socket, kernel and pipelining share.
``server.dispatch``
    Frame arrival in the server's read loop to execution start (decode
    plus any inline dispatch work).
``server.lock_wait``
    Inside the worker's ``LockService`` call -- latch acquisition,
    grant, or a parked lock wait.  This is the hop the wait-event
    profiler attributes to a blocker; join trace and wait records on
    (app, time) in telemetry for the blocker identity.
``server.executor_park``
    Waiting for an executor thread after dispatch chose the parking
    path (0 for inline grants).
``server.reply_encode``
    Building the reply on the server (hop-report assembly and framing
    setup; the final byte pack is small and lands in ``client.net_wait``).
``client.decode``
    Parsing the reply's hop report back on the client.

The hops are *disjoint by construction* -- ``client.net_wait``
subtracts the server-reported time from the client's wall wait, clamped
at zero -- so their sum tracks the observed end-to-end latency.  The
**wire tax** of a trace is the fraction of its total time spent in
:data:`NET_HOPS` (everything that is transport or scheduling) versus
:data:`LOCK_HOPS` (actual lock-manager time).

Context propagation rides the wire protocol's ``FLAG_TRACE`` frame
extension (:mod:`repro.net.protocol`): a 17-byte (trace id, span id,
sampled) tail the client attaches only when a tracer is configured, so
untraced deployments exchange byte-identical frames with old peers.

Overhead contract: a client stack without a tracer holds ``None`` and
pays exactly one ``is None`` check per request; with a tracer, the
off-sample cost is one increment and one modulo (the
:class:`~repro.obs.spans.RequestSpanSampler` discipline).

Thread safety: ``deque.append`` and the integer bumps are GIL-atomic;
tracers are mutated by request threads and read by ops handler threads,
which copy the ring via ``list()`` -- same model as the span sampler.
"""

from __future__ import annotations

import itertools
import os
import time
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional

#: The closed hop vocabulary, in request-lifecycle order.
HOP_NAMES = (
    "client.encode",
    "client.net_wait",
    "server.dispatch",
    "server.lock_wait",
    "server.executor_park",
    "server.reply_encode",
    "client.decode",
)

#: Hops that are transport / scheduling cost (the "wire tax" side).
NET_HOPS = frozenset(h for h in HOP_NAMES if h != "server.lock_wait")

#: Hops that are genuine lock-manager time.
LOCK_HOPS = frozenset({"server.lock_wait"})

#: Hops measured on the server and shipped back in the reply's hop
#: report, in wire order (see ``repro.net.protocol.pack_hop_report``).
SERVER_HOPS = (
    "server.dispatch",
    "server.lock_wait",
    "server.executor_park",
    "server.reply_encode",
)


def wire_tax(hops: Mapping[str, float]) -> float:
    """Fraction of a trace's hop time spent in :data:`NET_HOPS`.

    0.0 for an empty (or all-zero) hop set, so callers can render a
    trace that never reached the lock manager without special-casing.
    """
    total = 0.0
    net = 0.0
    for name, seconds in hops.items():
        total += seconds
        if name in NET_HOPS:
            net += seconds
    if total <= 0.0:
        return 0.0
    return net / total


class TraceContext:
    """The compact context propagated in the wire frame tail."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: int, span_id: int, sampled: bool = True) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def child(self) -> "TraceContext":
        """The server-side child span keyed by this context."""
        return TraceContext(self.trace_id, self.span_id + 1, self.sampled)

    def __repr__(self) -> str:
        return (
            f"TraceContext(trace={self.trace_id:#x}, span={self.span_id}, "
            f"sampled={self.sampled})"
        )


class RequestTrace:
    """One completed end-to-end trace (client side, all hops)."""

    __slots__ = (
        "trace_id",
        "span_id",
        "t_start",
        "total_s",
        "worker",
        "app_id",
        "table_id",
        "row_id",
        "mode",
        "outcome",
        "hops",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        t_start: float,
        total_s: float,
        hops: Dict[str, float],
        *,
        worker: int = -1,
        app_id: int = -1,
        table_id: int = -1,
        row_id: int = -1,
        mode: str = "",
        outcome: str = "ok",
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.t_start = t_start
        self.total_s = total_s
        self.hops = hops
        self.worker = worker
        self.app_id = app_id
        self.table_id = table_id
        self.row_id = row_id
        self.mode = mode
        self.outcome = outcome

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "t": self.t_start,
            "total_s": self.total_s,
            "worker": self.worker,
            "app": self.app_id,
            "table": self.table_id,
            "row": self.row_id,
            "mode": self.mode,
            "outcome": self.outcome,
            "hops": dict(self.hops),
            "wire_tax": round(wire_tax(self.hops), 6),
        }

    def __repr__(self) -> str:
        return (
            f"RequestTrace(trace={self.trace_id:#x}, worker={self.worker}, "
            f"{self.total_s * 1e6:.1f}us, outcome={self.outcome!r})"
        )


class RequestTracer:
    """Client-side 1-in-N end-to-end tracer with a bounded trace ring.

    Parameters
    ----------
    every:
        Trace the Nth, 2Nth, ... lock request (``every=1`` traces all).
    clock:
        Callable returning the current time in seconds (stamped onto
        completed traces so telemetry merges them in ``t`` order);
        defaults to wall-clock ``time.time``.
    capacity:
        Ring-buffer bound for completed traces.
    origin:
        High bits of every allocated trace id (defaults to the pid's
        low 16 bits shifted into the top of the u64, so ids from
        concurrent client processes never collide without randomness).
    """

    def __init__(
        self,
        every: int,
        clock=None,
        *,
        capacity: int = 256,
        origin: Optional[int] = None,
    ) -> None:
        if every <= 0:
            raise ValueError(f"sampling period must be positive, got {every}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.every = every
        self.clock = clock if clock is not None else time.time
        self.capacity = capacity
        if origin is None:
            origin = (os.getpid() & 0xFFFF) << 48
        self._origin = origin
        self._ids = itertools.count(1)
        self._seen = 0
        self.started = 0
        self.finished = 0
        self._ring: Deque[RequestTrace] = deque(maxlen=capacity)

    # -- probe sites (request threads) ---------------------------------

    def maybe_trace(self) -> Optional[TraceContext]:
        """Count one request; return a live context for the sampled 1/N."""
        self._seen += 1
        if self._seen % self.every:
            return None
        self.started += 1
        trace_id = self._origin | next(self._ids)
        return TraceContext(trace_id, 1, True)

    def finish(
        self,
        ctx: TraceContext,
        total_s: float,
        hops: Dict[str, float],
        *,
        worker: int = -1,
        app_id: int = -1,
        table_id: int = -1,
        row_id: int = -1,
        mode: str = "",
        outcome: str = "ok",
    ) -> RequestTrace:
        """Land a completed trace in the ring."""
        trace = RequestTrace(
            ctx.trace_id,
            ctx.span_id,
            self.clock(),
            total_s,
            hops,
            worker=worker,
            app_id=app_id,
            table_id=table_id,
            row_id=row_id,
            mode=mode,
            outcome=outcome,
        )
        self._ring.append(trace)
        self.finished += 1
        return trace

    # -- read side -----------------------------------------------------

    @property
    def seen(self) -> int:
        """Requests counted (traced or not)."""
        return self._seen

    @property
    def truncated(self) -> int:
        """Traces started but never finished (crash / in flight)."""
        return max(0, self.started - self.finished)

    def to_dicts(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Completed traces as dicts, oldest first (most recent ``limit``)."""
        traces = list(self._ring)
        if limit is not None:
            traces = traces[-limit:]
        return [trace.to_dict() for trace in traces]

    def summary(self) -> Dict[str, Any]:
        """The ring summary scenario results and ``/traces`` report."""
        return {
            "sampled_every": self.every,
            "seen": self._seen,
            "started": self.started,
            "finished": self.finished,
            "truncated": self.truncated,
        }

    def __repr__(self) -> str:
        return (
            f"RequestTracer(1/{self.every}, seen={self._seen}, "
            f"finished={self.finished}, truncated={self.truncated})"
        )


class ServerTracer:
    """Per-process ring of server-side child spans.

    A worker records one child span per traced request it serves: the
    server hops it measured, keyed by the propagated (trace id, span
    id).  The parent pool merges worker rings into the ``/traces``
    payload so a truncated client trace (worker died mid-request) can
    still be attributed from the surviving side.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.recorded = 0
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)

    def record(
        self,
        trace_id: int,
        span_id: int,
        hops: Dict[str, float],
        *,
        app_id: int = -1,
        outcome: str = "ok",
    ) -> None:
        self._ring.append(
            {
                "trace_id": trace_id,
                "span_id": span_id,
                "app": app_id,
                "outcome": outcome,
                "hops": dict(hops),
            }
        )
        self.recorded += 1

    def to_dicts(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        spans = list(self._ring)
        if limit is not None:
            spans = spans[-limit:]
        return [dict(span) for span in spans]

    def summary(self) -> Dict[str, Any]:
        return {"recorded": self.recorded, "held": len(self._ring)}

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return f"ServerTracer({len(self._ring)}/{self.capacity} held)"


def hop_percentiles(
    traces: List[Mapping[str, Any]]
) -> Dict[str, Dict[str, float]]:
    """``{hop: {count, p50, p99, total_s}}`` over trace dicts.

    Percentiles are exact (sorted raw values -- trace rings are small
    by construction), reported only for hops that appear.
    """
    values: Dict[str, List[float]] = {}
    for trace in traces:
        for name, seconds in (trace.get("hops") or {}).items():
            values.setdefault(name, []).append(float(seconds))
    report: Dict[str, Dict[str, float]] = {}
    for name in HOP_NAMES:
        series = values.get(name)
        if not series:
            continue
        series.sort()
        report[name] = {
            "count": len(series),
            "p50": series[(len(series) - 1) // 2],
            "p99": series[min(len(series) - 1, (len(series) * 99) // 100)],
            "total_s": sum(series),
        }
    return report


def wire_tax_summary(traces: List[Mapping[str, Any]]) -> Dict[str, float]:
    """Aggregate wire tax over trace dicts: net vs lock seconds."""
    net = 0.0
    lock = 0.0
    for trace in traces:
        for name, seconds in (trace.get("hops") or {}).items():
            if name in NET_HOPS:
                net += float(seconds)
            else:
                lock += float(seconds)
    total = net + lock
    return {
        "net_s": net,
        "lock_s": lock,
        "fraction": (net / total) if total > 0 else 0.0,
    }


__all__ = [
    "HOP_NAMES",
    "LOCK_HOPS",
    "NET_HOPS",
    "SERVER_HOPS",
    "RequestTrace",
    "RequestTracer",
    "ServerTracer",
    "TraceContext",
    "hop_percentiles",
    "wire_tax",
    "wire_tax_summary",
]
