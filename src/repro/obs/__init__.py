"""repro.obs -- the unified observability layer.

One package behind which every telemetry path of the reproduction
meets:

* :mod:`repro.obs.registry` -- named :class:`Counter` / :class:`Gauge`
  / fixed-bucket :class:`Histogram` instruments in a
  :class:`MetricRegistry`,
* :mod:`repro.obs.instruments` -- :class:`LockManagerInstruments`, the
  pre-resolved bundle the lock manager hot paths observe into,
* :mod:`repro.obs.events` -- :class:`RunTelemetry`, the single
  time-ordered JSONL stream (trace events + controller decisions +
  STMM audit entries + metric samples + registry snapshots) with a
  lossless ``write_jsonl``/``from_jsonl`` round trip,
* :mod:`repro.obs.prometheus` -- dependency-free text-format rendering
  of a registry for the live service's ``/metrics`` endpoint,
* :mod:`repro.obs.audit` -- the bounded STMM decision audit log
  (:class:`TuningAuditLog`) with its closed reason vocabulary,
* :mod:`repro.obs.spans` -- 1-in-N sampled per-request
  admission->grant->release timelines (:class:`RequestSpanSampler`),
* :mod:`repro.obs.waits` -- the wait-event profiler
  (:class:`WaitEventProfiler`): wait-class histograms with blocker
  attribution plus Oracle-style latch statistics,
* :mod:`repro.obs.incidents` -- incident forensics
  (:class:`IncidentLog`): structured deadlock / escalation /
  tuner-freeze records with posture, blockers and audit tail,
* :mod:`repro.obs.tracing` -- end-to-end distributed request tracing
  (:class:`RequestTracer` / :class:`ServerTracer`): 1-in-N sampled
  cross-process traces decomposed into the closed ``HOP_NAMES``
  vocabulary with per-trace wire-tax attribution.

Enable on a database with ``db.enable_telemetry()`` before the run,
collect with ``db.telemetry()`` (or
``RunTelemetry.from_database(db)``) after it, or drive everything from
the CLI::

    python -m repro.analysis.runner fig9 --telemetry out.jsonl --report

See ``docs/OBSERVABILITY.md`` for the event schema, metric names and
the overhead contract.
"""

from repro.obs.audit import (
    AUDIT_REASONS,
    BROKER_REASONS,
    BrokerAuditRecord,
    TuningAuditLog,
    TuningAuditRecord,
    audit_reason_for,
)
from repro.obs.events import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    WAIT_LATENCY_METRIC,
    RunTelemetry,
    load_runs,
)
from repro.obs.instruments import LockManagerInstruments
from repro.obs.prometheus import render_prometheus, sanitize_metric_name
from repro.obs.registry import (
    LATENCY_BUCKETS_S,
    SLOT_COUNT_BUCKETS,
    WALL_CLOCK_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    exponential_bounds,
    labeled_name,
    parse_labeled_name,
)
from repro.obs.incidents import (
    INCIDENT_KINDS,
    IncidentLog,
    IncidentRecord,
    IncidentRecorder,
)
from repro.obs.spans import RequestSpan, RequestSpanSampler
from repro.obs.tracing import (
    HOP_NAMES,
    LOCK_HOPS,
    NET_HOPS,
    SERVER_HOPS,
    RequestTrace,
    RequestTracer,
    ServerTracer,
    TraceContext,
    hop_percentiles,
    wire_tax,
    wire_tax_summary,
)
from repro.obs.waits import (
    WAIT_CLASSES,
    WAIT_SECONDS_METRIC,
    LatchStats,
    WaitEvent,
    WaitEventProfiler,
    merged_class_totals,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "LockManagerInstruments",
    "RunTelemetry",
    "load_runs",
    "exponential_bounds",
    "labeled_name",
    "parse_labeled_name",
    "render_prometheus",
    "sanitize_metric_name",
    "AUDIT_REASONS",
    "BROKER_REASONS",
    "BrokerAuditRecord",
    "TuningAuditLog",
    "TuningAuditRecord",
    "audit_reason_for",
    "RequestSpan",
    "RequestSpanSampler",
    "LATENCY_BUCKETS_S",
    "WALL_CLOCK_BUCKETS_S",
    "SLOT_COUNT_BUCKETS",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "WAIT_LATENCY_METRIC",
    "WAIT_CLASSES",
    "WAIT_SECONDS_METRIC",
    "LatchStats",
    "WaitEvent",
    "WaitEventProfiler",
    "merged_class_totals",
    "INCIDENT_KINDS",
    "IncidentLog",
    "IncidentRecord",
    "IncidentRecorder",
    "HOP_NAMES",
    "LOCK_HOPS",
    "NET_HOPS",
    "SERVER_HOPS",
    "RequestTrace",
    "RequestTracer",
    "ServerTracer",
    "TraceContext",
    "hop_percentiles",
    "wire_tax",
    "wire_tax_summary",
]
