"""repro.obs -- the unified observability layer.

One package behind which every telemetry path of the reproduction
meets:

* :mod:`repro.obs.registry` -- named :class:`Counter` / :class:`Gauge`
  / fixed-bucket :class:`Histogram` instruments in a
  :class:`MetricRegistry`,
* :mod:`repro.obs.instruments` -- :class:`LockManagerInstruments`, the
  pre-resolved bundle the lock manager hot paths observe into,
* :mod:`repro.obs.events` -- :class:`RunTelemetry`, the single
  time-ordered JSONL stream (trace events + controller decisions +
  metric samples + registry snapshots) with a lossless
  ``write_jsonl``/``from_jsonl`` round trip.

Enable on a database with ``db.enable_telemetry()`` before the run,
collect with ``db.telemetry()`` (or
``RunTelemetry.from_database(db)``) after it, or drive everything from
the CLI::

    python -m repro.analysis.runner fig9 --telemetry out.jsonl --report

See ``docs/OBSERVABILITY.md`` for the event schema, metric names and
the overhead contract.
"""

from repro.obs.events import (
    SCHEMA_VERSION,
    WAIT_LATENCY_METRIC,
    RunTelemetry,
    load_runs,
)
from repro.obs.instruments import LockManagerInstruments
from repro.obs.registry import (
    LATENCY_BUCKETS_S,
    SLOT_COUNT_BUCKETS,
    WALL_CLOCK_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    exponential_bounds,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "LockManagerInstruments",
    "RunTelemetry",
    "load_runs",
    "exponential_bounds",
    "LATENCY_BUCKETS_S",
    "WALL_CLOCK_BUCKETS_S",
    "SLOT_COUNT_BUCKETS",
    "SCHEMA_VERSION",
    "WAIT_LATENCY_METRIC",
]
