"""Sampled per-request spans: admission -> grant -> release timelines.

Recording a full timeline for *every* lock request would violate the
overhead budget the live service promises (and Nikolaev's DTrace latch
study is explicit that heavyweight probes distort exactly the
contention they measure), so the span recorder samples **1 in N**
requests: the Nth, 2Nth, ... request entering a service gets a
:class:`RequestSpan` carrying three timestamps --

``t_admit``
    the request entered the service (it has already passed admission
    control; this is the instant the service-side timeline starts),
``t_grant``
    the lock was granted (or the request failed; ``outcome`` says
    which),
``t_release``
    the owning session released its locks (rollback, commit via
    ``close_session``, or ``release_all``).

Completed spans land in a bounded ring buffer (served over the ops
endpoint and dumped into telemetry), and every sampled wait
(``t_grant - t_admit``) additionally feeds the per-shard wait-latency
histogram ``service.span.wait_latency_s`` so live percentiles exist
even when full-stream latency recording is off.

Overhead contract: when sampling is disabled the service holds ``None``
and every probe site costs one ``is None`` check.  When enabled, the
off-sample cost is one integer increment and one modulo; only the
sampled 1/N requests allocate a span.

Thread safety: a sampler belongs to one :class:`LockService` and every
entry point is invoked under that service's mutex, so the sampler
itself needs no lock; readers (:meth:`finished_dicts`) copy the ring
under the deque's internal consistency plus the GIL snapshot of
``list()``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.obs.registry import MetricRegistry, WALL_CLOCK_BUCKETS_S


class RequestSpan:
    """One sampled request's timeline (times in service clock seconds)."""

    __slots__ = (
        "app_id",
        "table_id",
        "row_id",
        "t_admit",
        "t_grant",
        "t_release",
        "outcome",
    )

    def __init__(self, app_id: int, table_id: int, row_id: int, t_admit: float) -> None:
        self.app_id = app_id
        self.table_id = table_id
        self.row_id = row_id
        self.t_admit = t_admit
        self.t_grant: Optional[float] = None
        self.t_release: Optional[float] = None
        self.outcome: str = "pending"

    @property
    def wait_s(self) -> Optional[float]:
        if self.t_grant is None:
            return None
        return self.t_grant - self.t_admit

    @property
    def hold_s(self) -> Optional[float]:
        if self.t_release is None or self.t_grant is None:
            return None
        return self.t_release - self.t_grant

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app": self.app_id,
            "table": self.table_id,
            "row": self.row_id,
            "t_admit": self.t_admit,
            "t_grant": self.t_grant,
            "t_release": self.t_release,
            "outcome": self.outcome,
        }

    def __repr__(self) -> str:
        return (
            f"RequestSpan(app={self.app_id}, table={self.table_id}, "
            f"row={self.row_id}, outcome={self.outcome!r})"
        )


class RequestSpanSampler:
    """1-in-N span sampling for one lock service (or shard).

    Parameters
    ----------
    every:
        Sample the Nth, 2Nth, ... request (``every=1`` samples all).
    clock:
        Callable returning the current time in seconds.
    registry / labels:
        When given, sampled waits observe into the
        ``service.span.wait_latency_s`` histogram created with
        ``labels`` (the sharded stack passes ``{"shard": str(i)}``).
    capacity:
        Ring-buffer bound for completed spans.
    """

    #: Histogram fed by sampled waits.
    WAIT_METRIC = "service.span.wait_latency_s"

    def __init__(
        self,
        every: int,
        clock: Callable[[], float],
        *,
        registry: Optional[MetricRegistry] = None,
        labels: Optional[Dict[str, str]] = None,
        capacity: int = 512,
    ) -> None:
        if every <= 0:
            raise ValueError(f"sampling period must be positive, got {every}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.every = every
        self.clock = clock
        self.capacity = capacity
        self._seen = 0
        self.sampled = 0
        self._open: Dict[int, RequestSpan] = {}
        self._finished: Deque[RequestSpan] = deque(maxlen=capacity)
        self._wait_hist = (
            None
            if registry is None
            else registry.histogram(
                self.WAIT_METRIC, WALL_CLOCK_BUCKETS_S, labels=labels
            )
        )

    # -- probe sites (called under the owning service's mutex) -------------

    def maybe_start(self, app_id: int, table_id: int, row_id: int) -> Optional[RequestSpan]:
        """Count one request; return a live span for the sampled 1/N.

        A session has at most one request in flight, but may still have
        an *open* span from a previous sampled request (granted, not yet
        released); starting a new one retires the old span first so the
        open table can never grow beyond the live-session count.
        """
        self._seen += 1
        if self._seen % self.every:
            return None
        self.sampled += 1
        stale = self._open.pop(app_id, None)
        if stale is not None:
            self._finished.append(stale)
        span = RequestSpan(app_id, table_id, row_id, self.clock())
        self._open[app_id] = span
        return span

    def grant(self, span: RequestSpan, outcome: str = "granted") -> None:
        """Mark the request's wait over (granted or failed)."""
        span.t_grant = self.clock()
        span.outcome = outcome
        if self._wait_hist is not None:
            self._wait_hist.observe(span.t_grant - span.t_admit)
        if outcome != "granted":
            # A failed request has no release phase: retire it now.
            finished = self._open.pop(span.app_id, None)
            if finished is span:
                self._finished.append(span)

    def release(self, app_id: int) -> None:
        """Close ``app_id``'s open span (session released its locks)."""
        span = self._open.pop(app_id, None)
        if span is None:
            return
        span.t_release = self.clock()
        if span.outcome == "granted":
            span.outcome = "released"
        self._finished.append(span)

    # -- reading ------------------------------------------------------------

    @property
    def seen(self) -> int:
        """Requests counted (sampled or not)."""
        return self._seen

    def open_count(self) -> int:
        return len(self._open)

    def finished_dicts(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Completed spans as dicts, oldest first (most recent ``limit``)."""
        spans = list(self._finished)
        if limit is not None:
            spans = spans[-limit:]
        return [span.to_dict() for span in spans]

    def __repr__(self) -> str:
        return (
            f"RequestSpanSampler(1/{self.every}, seen={self._seen}, "
            f"sampled={self.sampled}, open={len(self._open)})"
        )


__all__ = ["RequestSpan", "RequestSpanSampler"]
