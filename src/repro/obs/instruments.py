"""Instrument bundles binding a :class:`MetricRegistry` to subsystems.

The lock manager does not know metric names; it holds (optionally) a
:class:`LockManagerInstruments` whose attributes it observes into.  The
bundle pre-resolves every instrument once at attach time so the enabled
hot path is one attribute access plus one ``observe``/``inc`` -- and the
disabled hot path stays the contractual single ``is None`` check.

Metric names (documented in ``docs/OBSERVABILITY.md``):

===============================  =========  ====================================
name                             type       meaning
===============================  =========  ====================================
``lock.wait.latency_s``          histogram  measured lock-wait durations
                                            (simulated seconds; success,
                                            timeout and deadlock exits alike)
``lock.sync_growth.latency_s``   histogram  wall-clock cost of one growth-
                                            provider call (real seconds)
``lock.escalation.scan_slots``   histogram  row-lock structures examined by
                                            one escalation attempt
``lock.sync_growth.blocks``      counter    blocks granted synchronously
``lock.sync_growth.requests``    counter    growth-provider invocations
``lock.escalation.attempts``     counter    escalation attempts (incl. failed)
===============================  =========  ====================================
"""

from __future__ import annotations

from repro.obs.registry import (
    LATENCY_BUCKETS_S,
    MetricRegistry,
    SLOT_COUNT_BUCKETS,
    WALL_CLOCK_BUCKETS_S,
)


class LockManagerInstruments:
    """The lock manager's hot-path instruments, pre-resolved.

    Attach with ``manager.obs = LockManagerInstruments(registry)``;
    detach by setting ``manager.obs = None`` (the disabled state, and
    the default).
    """

    __slots__ = (
        "registry",
        "wait_latency",
        "sync_growth_latency",
        "escalation_scan",
        "sync_growth_blocks",
        "sync_growth_requests",
        "escalation_attempts",
    )

    def __init__(self, registry: MetricRegistry) -> None:
        self.registry = registry
        self.wait_latency = registry.histogram(
            "lock.wait.latency_s", LATENCY_BUCKETS_S
        )
        self.sync_growth_latency = registry.histogram(
            "lock.sync_growth.latency_s", WALL_CLOCK_BUCKETS_S
        )
        self.escalation_scan = registry.histogram(
            "lock.escalation.scan_slots", SLOT_COUNT_BUCKETS
        )
        self.sync_growth_blocks = registry.counter("lock.sync_growth.blocks")
        self.sync_growth_requests = registry.counter("lock.sync_growth.requests")
        self.escalation_attempts = registry.counter("lock.escalation.attempts")
