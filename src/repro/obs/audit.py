"""The STMM decision audit log: every tuning interval's "why", bounded.

Baryshnikov et al.'s memory-broker work (PAPERS.md) argues that an
adaptive memory manager is only operable if every decision leaves an
auditable trail of *inputs* and a machine-readable *reason*.  The DES
already keeps :class:`~repro.core.controller.ControllerDecision`
records, but those grow without bound and speak the controller's
internal vocabulary.  This module gives the live service a bounded ring
buffer of :class:`TuningAuditRecord` entries in a small, stable reason
enum that maps one-to-one onto the paper's section 3 tuning rules:

==============================  ==============================================
audit reason                    paper rule (controller reason)
==============================  ==============================================
``grow-async``                  3.3 grow so minFreeLockMemory is free
                                (``grow-to-min-free``)
``shrink-5pct``                 3.4 shrink by delta_reduce = 5 % per interval
                                (``shrink-delta-reduce``)
``double-escalation-recovery``  3.1 double while escalations continue
                                (``escalation-doubling``)
``noop``                        3.3 inside the [minFree, maxFree] spread
                                (``hold``)
``freeze``                      tuner crash -> static-LOCKLIST degraded mode
                                (no controller analogue)
==============================  ==============================================

The tuner daemon records one entry per interval (and one terminal
``freeze`` entry on a crash); the ops endpoint serves the ring over
``/stmm``, and ``RunTelemetry`` carries the entries into the JSONL
stream as ``audit`` records.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import asdict, dataclass
from typing import Any, Deque, Dict, List, Mapping

#: The closed reason vocabulary, in paper-rule order.
AUDIT_REASONS = (
    "grow-async",
    "shrink-5pct",
    "double-escalation-recovery",
    "noop",
    "freeze",
)

#: The closed reason vocabulary of the whole-memory broker.  ``trade-*``
#: reasons document 128 KB block movements between PMC heaps;
#: ``pressure-*`` reasons document admission-posture transitions driven
#: by the aggregate demand-vs-budget pressure score.
BROKER_REASONS = (
    "trade-benefit",
    "pressure-throttle",
    "pressure-queue",
    "pressure-shed",
    "pressure-release",
)

#: ControllerDecision.reason -> audit reason.
_CONTROLLER_REASON_MAP = {
    "grow-to-min-free": "grow-async",
    "shrink-delta-reduce": "shrink-5pct",
    "escalation-doubling": "double-escalation-recovery",
    "hold": "noop",
}


def audit_reason_for(controller_reason: str) -> str:
    """Map a controller decision reason onto the audit enum.

    Unknown controller vocabulary (a future branch) degrades to
    ``noop`` rather than raising -- the audit log must never be able to
    crash the tuning pass it is documenting.
    """
    return _CONTROLLER_REASON_MAP.get(controller_reason, "noop")


@dataclass
class TuningAuditRecord:
    """One tuning interval: the inputs seen and the action chosen."""

    #: 1-based tuning interval ordinal (0 for a terminal freeze entry).
    interval: int
    #: Clock time of the pass (wall seconds for the live service).
    time: float
    #: One of :data:`AUDIT_REASONS`.
    reason: str
    #: Signed pages the locklist actually changed by this interval.
    delta_pages: int
    # -- inputs the decision was computed from ------------------------------
    current_pages: int
    target_pages: int
    used_pages: int
    free_fraction: float
    overflow_pages: int
    escalations_in_interval: int
    #: Synchronous-growth headroom left under LMOmax, in pages.
    lmo_headroom_pages: int
    #: Human-readable amplification (e.g. the crash message for freeze).
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "TuningAuditRecord":
        return cls(
            interval=int(record["interval"]),
            time=float(record["time"]),
            reason=str(record["reason"]),
            delta_pages=int(record["delta_pages"]),
            current_pages=int(record["current_pages"]),
            target_pages=int(record["target_pages"]),
            used_pages=int(record["used_pages"]),
            free_fraction=float(record["free_fraction"]),
            overflow_pages=int(record["overflow_pages"]),
            escalations_in_interval=int(record["escalations_in_interval"]),
            lmo_headroom_pages=int(record["lmo_headroom_pages"]),
            detail=str(record.get("detail", "")),
        )


@dataclass
class BrokerAuditRecord:
    """One broker action: a block trade or an admission-posture change."""

    #: 1-based broker interval ordinal (0 for a terminal entry).
    interval: int
    #: Clock time of the pass (wall seconds for the live service).
    time: float
    #: One of :data:`BROKER_REASONS`.
    reason: str
    #: Donor heap for a trade ("" for posture records).
    heap_from: str
    #: Receiver heap for a trade ("" for posture records).
    heap_to: str
    #: Pages actually moved this record (0 for posture records).
    pages: int
    # -- inputs the decision was computed from ------------------------------
    #: Donor marginal benefit per page at decision time (s/page/s).
    benefit_from: float
    #: Receiver marginal benefit per page at decision time (s/page/s).
    benefit_to: float
    #: Aggregate demand / budget at decision time (1.0 == exactly full).
    pressure: float
    #: Admission posture after this record (normal/throttle/queue/shed).
    posture: str
    #: Human-readable amplification.
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "BrokerAuditRecord":
        return cls(
            interval=int(record["interval"]),
            time=float(record["time"]),
            reason=str(record["reason"]),
            heap_from=str(record.get("heap_from", "")),
            heap_to=str(record.get("heap_to", "")),
            pages=int(record.get("pages", 0)),
            benefit_from=float(record.get("benefit_from", 0.0)),
            benefit_to=float(record.get("benefit_to", 0.0)),
            pressure=float(record["pressure"]),
            posture=str(record["posture"]),
            detail=str(record.get("detail", "")),
        )


class TuningAuditLog:
    """A bounded, thread-safe ring of audit records.

    Appends from the tuner thread and reads from HTTP handler threads
    (the ``/stmm`` endpoint) interleave freely; readers always get a
    point-in-time copy.  The allowed reason vocabulary is closed:
    :data:`AUDIT_REASONS` by default (the LOCKLIST tuner's log),
    :data:`BROKER_REASONS` for the whole-memory broker's log.
    """

    def __init__(self, capacity: int = 256, reasons=AUDIT_REASONS) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not reasons:
            raise ValueError("reasons vocabulary must be non-empty")
        self.capacity = capacity
        self.allowed_reasons = tuple(reasons)
        self._records: Deque[Any] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Total records ever appended (survives ring eviction).
        self.total_recorded = 0

    def append(self, record) -> None:
        if record.reason not in self.allowed_reasons:
            raise ValueError(
                f"unknown audit reason {record.reason!r}; "
                f"expected one of {self.allowed_reasons}"
            )
        with self._lock:
            self._records.append(record)
            self.total_recorded += 1

    def records(self) -> List[Any]:
        """A snapshot copy of the ring, oldest first."""
        with self._lock:
            return list(self._records)

    def tail(self, n: int) -> List[Any]:
        """The most recent ``n`` records, oldest first."""
        if n <= 0:
            return []
        with self._lock:
            return list(self._records)[-n:]

    def reasons(self) -> List[str]:
        """The reason sequence currently in the ring, oldest first."""
        return [record.reason for record in self.records()]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [record.to_dict() for record in self.records()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self):
        return iter(self.records())

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"TuningAuditLog({len(self._records)}/{self.capacity} held, "
                f"{self.total_recorded} total)"
            )


__all__ = [
    "AUDIT_REASONS",
    "BROKER_REASONS",
    "BrokerAuditRecord",
    "TuningAuditLog",
    "TuningAuditRecord",
    "audit_reason_for",
]
