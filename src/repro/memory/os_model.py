"""Operating-system memory and DATABASE_MEMORY self-tuning.

STMM's outermost responsibility (paper section 2.1): "STMM will
determine ... the total amount of memory allocated to a DB2 database,
databaseMemory".  With ``DATABASE_MEMORY AUTOMATIC``, DB2 grows the
database's share of physical RAM while the OS has free memory to spare
and gives memory back when other processes need it.

* :class:`OperatingSystemModel` tracks physical RAM and the demand of
  everything that is not the database (a scriptable time series in
  experiments).
* :class:`DatabaseMemoryTuner` runs at each STMM interval: it targets a
  fixed fraction of RAM left free for the OS, growing databaseMemory
  (into the overflow area) when free memory exceeds the target band and
  shrinking (releasing overflow, reclaiming from donor PMCs first if
  needed) when the OS is under pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.memory.registry import DatabaseMemoryRegistry


class OperatingSystemModel:
    """Physical RAM shared between the database and everything else."""

    def __init__(self, total_ram_pages: int, other_demand_pages: int = 0) -> None:
        if total_ram_pages <= 0:
            raise ConfigurationError(
                f"total_ram_pages must be positive, got {total_ram_pages}"
            )
        if other_demand_pages < 0:
            raise ConfigurationError("other_demand_pages must be non-negative")
        self.total_ram_pages = total_ram_pages
        self._other_demand_pages = other_demand_pages

    @property
    def other_demand_pages(self) -> int:
        """RAM consumed by non-database processes."""
        return self._other_demand_pages

    def set_other_demand(self, pages: int) -> None:
        """Scripted change in non-database memory pressure."""
        if pages < 0:
            raise ConfigurationError("other demand must be non-negative")
        self._other_demand_pages = pages

    def free_pages(self, database_total_pages: int) -> int:
        """RAM left over for the OS at a given database size."""
        return max(
            0,
            self.total_ram_pages
            - self._other_demand_pages
            - database_total_pages,
        )


@dataclass
class DatabaseMemoryAction:
    """One DATABASE_MEMORY adjustment, for observability and tests."""

    time: float
    kind: str  # "grow" or "shrink"
    pages: int
    new_total: int
    os_free_before: int


class DatabaseMemoryTuner:
    """Adjusts databaseMemory towards an OS free-memory target band.

    Parameters
    ----------
    registry / os_model:
        The database memory set and the OS it lives on.
    target_free_fraction:
        Fraction of physical RAM to keep free for the OS.
    band_fraction:
        Hysteresis around the target (no action inside the band).
    step_fraction:
        Largest change per tuning interval, as a fraction of the
        current databaseMemory (STMM moves memory gradually).
    min_total_pages / max_total_pages:
        Hard bounds on databaseMemory.
    overflow_goal_fraction:
        Keeps the registry's overflow goal proportional to the (now
        changing) databaseMemory.
    """

    def __init__(
        self,
        registry: DatabaseMemoryRegistry,
        os_model: OperatingSystemModel,
        target_free_fraction: float = 0.10,
        band_fraction: float = 0.02,
        step_fraction: float = 0.05,
        min_total_pages: int = 8_192,
        max_total_pages: Optional[int] = None,
        overflow_goal_fraction: float = 0.05,
    ) -> None:
        if not 0.0 < target_free_fraction < 1.0:
            raise ConfigurationError(
                f"target_free_fraction must be in (0, 1), got {target_free_fraction}"
            )
        if band_fraction < 0 or band_fraction >= target_free_fraction:
            raise ConfigurationError(
                "band_fraction must be non-negative and below the target"
            )
        if not 0.0 < step_fraction <= 1.0:
            raise ConfigurationError(
                f"step_fraction must be in (0, 1], got {step_fraction}"
            )
        if min_total_pages <= 0:
            raise ConfigurationError("min_total_pages must be positive")
        self.registry = registry
        self.os_model = os_model
        self.target_free_fraction = target_free_fraction
        self.band_fraction = band_fraction
        self.step_fraction = step_fraction
        self.min_total_pages = min_total_pages
        self.max_total_pages = max_total_pages or os_model.total_ram_pages
        self.overflow_goal_fraction = overflow_goal_fraction
        self.actions: List[DatabaseMemoryAction] = []

    # -- the per-interval decision -------------------------------------------

    def tune(self, now: float) -> Optional[DatabaseMemoryAction]:
        """One adjustment pass; called by STMM each tuning interval."""
        total = self.registry.total_pages
        ram = self.os_model.total_ram_pages
        free = self.os_model.free_pages(total)
        target = int(self.target_free_fraction * ram)
        band = int(self.band_fraction * ram)
        step_cap = max(1, int(total * self.step_fraction))

        action: Optional[DatabaseMemoryAction] = None
        if free > target + band and total < self.max_total_pages:
            grow = min(free - target, step_cap, self.max_total_pages - total)
            if grow > 0:
                new_total = self.registry.resize_total(total + grow)
                action = DatabaseMemoryAction(now, "grow", grow, new_total, free)
        elif free < target - band and total > self.min_total_pages:
            want = min(target - free, step_cap, total - self.min_total_pages)
            if want > 0:
                # make the pages releasable: overflow first, donors second
                deficit = want - self.registry.overflow_pages
                if deficit > 0:
                    self.registry.reclaim_from_donors(deficit)
                new_total = self.registry.resize_total(
                    total - want, partial=True
                )
                released = total - new_total
                if released > 0:
                    action = DatabaseMemoryAction(
                        now, "shrink", released, new_total, free
                    )
        if action is not None:
            self.registry.overflow_goal_pages = max(
                1, int(self.overflow_goal_fraction * self.registry.total_pages)
            )
            self.actions.append(action)
        return action
