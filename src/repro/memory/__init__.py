"""Database shared-memory substrate.

Models DB2's database shared memory set (paper section 2.1):

* a fixed ``databaseMemory`` budget, accounted in 4 KB pages,
* named memory heaps -- bufferpool, sort, hash join, package cache and
  the lock list -- each categorised as a *performance* memory consumer
  (PMC) or a *functional* memory consumer (FMC),
* an **overflow area**: memory allocated to the database but not in use
  by any consumer, which heaps may claim synchronously on demand,
* the Self-Tuning Memory Manager (:class:`repro.memory.stmm.Stmm`) which
  redistributes memory between heaps at each tuning interval and
  restores the overflow area towards its goal size.
"""

from repro.memory.bufferpool import BufferpoolModel
from repro.memory.heaps import HeapCategory, MemoryHeap
from repro.memory.registry import DatabaseMemoryRegistry
from repro.memory.stmm import Stmm, StmmConfig

__all__ = [
    "BufferpoolModel",
    "HeapCategory",
    "MemoryHeap",
    "DatabaseMemoryRegistry",
    "Stmm",
    "StmmConfig",
]
