"""Sort heap performance model: spills make donation measurable.

In the paper's worked example STMM funds lock-memory growth by "making
decreases in sort memory (the least needy consumer)".  For that story
to be quantitative the sort heap needs a performance model: a sort
whose input fits in the heap runs at in-memory speed; one that does not
spills to disk and pays a multi-pass external-merge penalty.

The model provides:

* :meth:`sort_time` -- simulated duration of sorting ``rows`` rows with
  a given heap size,
* :meth:`marginal_benefit` -- expected time saved per extra heap page
  for a characteristic sort size, which is what STMM's donor/receiver
  ranking consumes.  A heap already big enough for the workload's sorts
  has near-zero marginal benefit (a willing donor); one that spills has
  a large benefit (a demanding receiver).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.units import PAGE_SIZE_BYTES


class SortHeapModel:
    """External-merge-sort cost model over a page-sized heap.

    Parameters
    ----------
    row_bytes:
        Bytes per sorted row (key + payload).
    cpu_time_per_row_s:
        In-memory comparison/move cost per row per pass.
    io_time_per_page_s:
        Cost to write + read back one spilled page in a merge pass.
    """

    def __init__(
        self,
        row_bytes: int = 64,
        cpu_time_per_row_s: float = 2e-7,
        io_time_per_page_s: float = 0.002,
    ) -> None:
        if row_bytes <= 0:
            raise ConfigurationError(f"row_bytes must be positive, got {row_bytes}")
        if cpu_time_per_row_s < 0 or io_time_per_page_s < 0:
            raise ConfigurationError("costs must be non-negative")
        self.row_bytes = row_bytes
        self.cpu_time_per_row_s = cpu_time_per_row_s
        self.io_time_per_page_s = io_time_per_page_s

    def rows_per_page(self) -> int:
        return max(1, PAGE_SIZE_BYTES // self.row_bytes)

    def data_pages(self, rows: int) -> int:
        """Pages occupied by ``rows`` of sort input."""
        if rows < 0:
            raise ValueError(f"rows must be non-negative, got {rows}")
        return -(-rows // self.rows_per_page())

    def merge_passes(self, rows: int, heap_pages: int) -> int:
        """External merge passes needed (0 when the sort fits in heap).

        With ``R`` initial runs of heap size and a merge fan-in equal to
        the heap's page count, the classic formula gives
        ``ceil(log_fanin(R))`` passes.
        """
        if heap_pages <= 0:
            raise ValueError(f"heap_pages must be positive, got {heap_pages}")
        data = self.data_pages(rows)
        if data <= heap_pages:
            return 0
        runs = -(-data // heap_pages)
        fan_in = max(2, heap_pages - 1)
        return max(1, math.ceil(math.log(runs, fan_in)))

    def spilled_pages(self, rows: int, heap_pages: int) -> int:
        """Pages written to disk (hybrid sort keeps a heap-resident
        fraction in memory, so the spill volume shrinks continuously as
        the heap grows)."""
        return max(0, self.data_pages(rows) - max(0, heap_pages))

    def sort_time(self, rows: int, heap_pages: int) -> float:
        """Simulated duration of sorting ``rows`` with ``heap_pages``."""
        if rows == 0:
            return 0.0
        passes = self.merge_passes(rows, heap_pages)
        cpu = rows * self.cpu_time_per_row_s * (1 + passes)
        io = (
            self.spilled_pages(rows, heap_pages)
            * self.io_time_per_page_s
            * 2
            * passes
        )
        return cpu + io

    def marginal_benefit(self, heap_pages: int, typical_sort_rows: int) -> float:
        """Time saved per additional heap page at the current size.

        Computed as a symmetric finite difference over one page; zero
        when the typical sort already fits (nothing left to improve).
        """
        if typical_sort_rows <= 0:
            return 0.0
        step = max(1, heap_pages // 100)
        slower = self.sort_time(typical_sort_rows, heap_pages)
        faster = self.sort_time(typical_sort_rows, heap_pages + step)
        return max(0.0, (slower - faster) / step)
