"""A size-to-performance model for the main memory cache (bufferpool).

The reproduction does not simulate individual page references; instead
the bufferpool's contribution to transaction service time is modelled by
a saturating hit-ratio curve.  This is the standard "concave miss-ratio
curve" shape observed for LRU caches under skewed access:

    hit(size) = max_hit * size / (size + half_saturation)

The curve matters to the experiments in two ways:

* it lets STMM compute a *marginal benefit* for bufferpool pages, so the
  donor/receiver logic has a realistic gradient to work against, and
* it converts memory taken away from the bufferpool (to feed lock
  memory) into longer transaction service times, reproducing the
  CPU/I-O competition the paper observes in section 5.3.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class BufferpoolModel:
    """Concave hit-ratio curve plus service-time helper.

    Parameters
    ----------
    half_saturation_pages:
        Bufferpool size at which the hit ratio reaches half of
        ``max_hit_ratio``.  Acts as the knob for workload cache
        friendliness (a proxy for working-set size).
    max_hit_ratio:
        Asymptotic hit ratio for an infinitely large pool.
    miss_penalty_s:
        Simulated time to service one missed page (disk read).
    hit_cost_s:
        Simulated time to service one page found in the pool.
    """

    def __init__(
        self,
        half_saturation_pages: int = 50_000,
        max_hit_ratio: float = 0.995,
        miss_penalty_s: float = 0.004,
        hit_cost_s: float = 0.00002,
    ) -> None:
        if half_saturation_pages <= 0:
            raise ConfigurationError(
                f"half_saturation_pages must be positive, got {half_saturation_pages}"
            )
        if not 0.0 < max_hit_ratio <= 1.0:
            raise ConfigurationError(
                f"max_hit_ratio must be in (0, 1], got {max_hit_ratio}"
            )
        if miss_penalty_s < 0 or hit_cost_s < 0:
            raise ConfigurationError("page service costs must be non-negative")
        self.half_saturation_pages = half_saturation_pages
        self.max_hit_ratio = max_hit_ratio
        self.miss_penalty_s = miss_penalty_s
        self.hit_cost_s = hit_cost_s

    def hit_ratio(self, size_pages: int) -> float:
        """Expected cache hit ratio at the given pool size."""
        if size_pages < 0:
            raise ValueError(f"pool size must be non-negative, got {size_pages}")
        if size_pages == 0:
            return 0.0
        return (
            self.max_hit_ratio
            * size_pages
            / (size_pages + self.half_saturation_pages)
        )

    def page_access_time(self, size_pages: int) -> float:
        """Expected time to access one page through the pool."""
        hit = self.hit_ratio(size_pages)
        return hit * self.hit_cost_s + (1.0 - hit) * self.miss_penalty_s

    def marginal_benefit(self, size_pages: int) -> float:
        """Reduction in expected page-access time per additional page.

        This is ``-d(page_access_time)/d(size)``; STMM uses it to rank
        the bufferpool against other PMC heaps when choosing donors and
        receivers.  It is strictly positive and strictly decreasing in
        pool size, so a large pool is a willing donor and a starved pool
        a demanding receiver.
        """
        if size_pages < 0:
            raise ValueError(f"pool size must be non-negative, got {size_pages}")
        h = self.half_saturation_pages
        dhit = self.max_hit_ratio * h / float(size_pages + h) ** 2
        return dhit * (self.miss_penalty_s - self.hit_cost_s)
