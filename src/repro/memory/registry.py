"""The database shared memory registry.

Tracks how the fixed ``databaseMemory`` budget is split between named
heaps and the **overflow area** -- "memory allocated to the database but
not yet in use by a memory consumer" (paper section 2.1).  The registry
maintains the core accounting invariant::

    sum(heap.size_pages for heap in heaps) + overflow_pages == total_pages

Every mutation goes through :meth:`grow_heap`, :meth:`shrink_heap` or
:meth:`transfer`, each of which preserves the invariant or raises.

Synchronous on-demand growth (a heap expanding into overflow "on a first
come-first-served basis") is exactly :meth:`grow_heap`; the asynchronous
STMM redistribution is built on :meth:`transfer`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError, MemoryAccountingError
from repro.memory.heaps import HeapCategory, MemoryHeap
from repro.units import fmt_pages


class DatabaseMemoryRegistry:
    """Page-accounted database shared memory set."""

    def __init__(self, total_pages: int, overflow_goal_pages: Optional[int] = None) -> None:
        if total_pages <= 0:
            raise ConfigurationError(
                f"databaseMemory must be positive, got {total_pages} pages"
            )
        self._total_pages = total_pages
        self._heaps: Dict[str, MemoryHeap] = {}
        #: STMM's goal for the size of the overflow area (section 3.3:
        #: "a moderate but small amount of memory is usually available").
        #: Defaults to 2 % of database memory.
        self.overflow_goal_pages = (
            overflow_goal_pages
            if overflow_goal_pages is not None
            else max(1, total_pages // 50)
        )
        if self.overflow_goal_pages > total_pages:
            raise ConfigurationError(
                "overflow goal cannot exceed database memory "
                f"({self.overflow_goal_pages} > {total_pages} pages)"
            )

    # -- introspection ----------------------------------------------------

    @property
    def total_pages(self) -> int:
        """The fixed databaseMemory budget, in pages."""
        return self._total_pages

    @property
    def overflow_pages(self) -> int:
        """Pages currently unassigned to any heap."""
        used = sum(h.size_pages for h in self._heaps.values())
        free = self._total_pages - used
        if free < 0:
            raise MemoryAccountingError(
                f"heaps oversubscribe database memory by {-free} pages"
            )
        return free

    @property
    def overflow_deficit_pages(self) -> int:
        """How far the overflow area is below its goal (0 if at/above)."""
        return max(0, self.overflow_goal_pages - self.overflow_pages)

    @property
    def overflow_surplus_pages(self) -> int:
        """How far the overflow area is above its goal (0 if at/below)."""
        return max(0, self.overflow_pages - self.overflow_goal_pages)

    def heap(self, name: str) -> MemoryHeap:
        """Look up a heap by name."""
        try:
            return self._heaps[name]
        except KeyError:
            raise KeyError(
                f"no heap {name!r}; registered: {sorted(self._heaps)}"
            ) from None

    def heaps(self, category: Optional[HeapCategory] = None) -> List[MemoryHeap]:
        """All heaps, optionally filtered by category, in registration order."""
        out = list(self._heaps.values())
        if category is not None:
            out = [h for h in out if h.category is category]
        return out

    def __contains__(self, name: str) -> bool:
        return name in self._heaps

    # -- registration ------------------------------------------------------

    def register(self, heap: MemoryHeap) -> MemoryHeap:
        """Add a heap; its initial size is carved out of overflow."""
        if heap.name in self._heaps:
            raise ConfigurationError(f"heap {heap.name!r} already registered")
        if heap.size_pages > self.overflow_pages:
            raise ConfigurationError(
                f"cannot register heap {heap.name!r} of {fmt_pages(heap.size_pages)}: "
                f"only {fmt_pages(self.overflow_pages)} unassigned"
            )
        self._heaps[heap.name] = heap
        return heap

    # -- mutation ----------------------------------------------------------

    def grow_heap(self, name: str, pages: int, partial: bool = False) -> int:
        """Grow ``name`` by up to ``pages`` taken from overflow.

        Returns the pages actually granted.  With ``partial`` the grant is
        clipped to what overflow and the heap's ``max_pages`` allow;
        without it any shortfall raises :class:`MemoryAccountingError`.
        """
        if pages < 0:
            raise ValueError(f"grow amount must be non-negative, got {pages}")
        heap = self.heap(name)
        grant = min(pages, self.overflow_pages, heap.headroom_pages())
        if grant < pages and not partial:
            raise MemoryAccountingError(
                f"cannot grow heap {name!r} by {fmt_pages(pages)}: "
                f"overflow has {fmt_pages(self.overflow_pages)}, "
                f"heap headroom {fmt_pages(heap.headroom_pages())}"
            )
        heap._apply_resize(grant)
        return grant

    def shrink_heap(self, name: str, pages: int, partial: bool = False) -> int:
        """Shrink ``name`` by up to ``pages``, returning them to overflow.

        Returns the pages actually released.  With ``partial`` the release
        is clipped to the heap's ``min_pages``; without it any shortfall
        raises.
        """
        if pages < 0:
            raise ValueError(f"shrink amount must be non-negative, got {pages}")
        heap = self.heap(name)
        release = min(pages, heap.shrinkable_pages())
        if release < pages and not partial:
            raise MemoryAccountingError(
                f"cannot shrink heap {name!r} by {fmt_pages(pages)}: "
                f"only {fmt_pages(heap.shrinkable_pages())} above its minimum"
            )
        heap._apply_resize(-release)
        return release

    def transfer(self, donor: str, receiver: str, pages: int, partial: bool = False) -> int:
        """Move pages from ``donor`` to ``receiver`` atomically.

        Returns the pages actually moved (clipped by the donor's minimum
        and the receiver's maximum when ``partial``).
        """
        if pages < 0:
            raise ValueError(f"transfer amount must be non-negative, got {pages}")
        if donor == receiver:
            raise ValueError(f"cannot transfer heap {donor!r} to itself")
        donor_heap = self.heap(donor)
        receiver_heap = self.heap(receiver)
        moved = min(pages, donor_heap.shrinkable_pages(), receiver_heap.headroom_pages())
        if moved < pages and not partial:
            raise MemoryAccountingError(
                f"cannot transfer {fmt_pages(pages)} from {donor!r} to {receiver!r}: "
                f"donor shrinkable {fmt_pages(donor_heap.shrinkable_pages())}, "
                f"receiver headroom {fmt_pages(receiver_heap.headroom_pages())}"
            )
        donor_heap._apply_resize(-moved)
        receiver_heap._apply_resize(moved)
        return moved

    # -- donor selection helpers --------------------------------------------

    def pmc_donors(self, exclude: Iterable[str] = ()) -> List[MemoryHeap]:
        """PMC heaps ordered from least to most needy (best donors first)."""
        excluded = set(exclude)
        donors = [
            h
            for h in self.heaps(HeapCategory.PMC)
            if h.name not in excluded and h.shrinkable_pages() > 0
        ]
        donors.sort(key=lambda h: (h.benefit(), h.name))
        return donors

    def pmc_receivers(self, exclude: Iterable[str] = ()) -> List[MemoryHeap]:
        """PMC heaps ordered from most to least needy (best receivers first)."""
        excluded = set(exclude)
        receivers = [
            h
            for h in self.heaps(HeapCategory.PMC)
            if h.name not in excluded and h.headroom_pages() > 0
        ]
        receivers.sort(key=lambda h: (-h.benefit(), h.name))
        return receivers

    def reclaim_from_donors(
        self, pages: int, exclude: Iterable[str] = ()
    ) -> int:
        """Shrink donor PMCs (least needy first) to free ``pages`` to overflow.

        Returns the pages actually reclaimed (may be less than requested
        when all donors are at their minimum sizes).
        """
        if pages < 0:
            raise ValueError(f"reclaim amount must be non-negative, got {pages}")
        remaining = pages
        for donor in self.pmc_donors(exclude=exclude):
            if remaining == 0:
                break
            remaining -= self.shrink_heap(donor.name, min(remaining, donor.shrinkable_pages()))
        return pages - remaining

    def resize_total(self, new_total_pages: int, partial: bool = False) -> int:
        """Change ``databaseMemory`` itself (STMM's outermost knob).

        Growth simply enlarges the overflow area.  Shrink releases
        overflow pages back to the operating system: only pages not
        assigned to any heap can leave, so the achieved reduction is
        limited by the current overflow (with ``partial``) or the
        request raises.  Returns the new total.
        """
        if new_total_pages <= 0:
            raise ConfigurationError(
                f"databaseMemory must stay positive, got {new_total_pages}"
            )
        delta = new_total_pages - self._total_pages
        if delta >= 0:
            self._total_pages = new_total_pages
            return self._total_pages
        shrink = -delta
        available = self.overflow_pages
        if shrink > available:
            if not partial:
                raise MemoryAccountingError(
                    f"cannot shrink databaseMemory by {fmt_pages(shrink)}: "
                    f"only {fmt_pages(available)} of overflow is releasable"
                )
            shrink = available
        self._total_pages -= shrink
        return self._total_pages

    def snapshot(self) -> Dict[str, int]:
        """Current sizes of every heap plus overflow, in pages."""
        out = {name: heap.size_pages for name, heap in self._heaps.items()}
        out["overflow"] = self.overflow_pages
        return out

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={heap.size_pages}p" for name, heap in self._heaps.items()
        )
        return (
            f"DatabaseMemoryRegistry(total={self._total_pages}p, "
            f"overflow={self.overflow_pages}p, {parts})"
        )
