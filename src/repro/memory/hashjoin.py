"""Hash join heap model (the third PMC the paper names).

Section 2.1 lists "bufferpools, sort, hash join, compiled statement
cache" as STMM's performance-related memory consumers.  Like the sort
heap (:mod:`repro.memory.sortheap`), the hash join heap needs a
size-to-performance curve for STMM's donor/receiver ranking to mean
anything:

* a build side that fits in the heap joins at in-memory speed,
* one that does not triggers a Grace hash join: both inputs are
  partitioned to disk and re-read, recursively if a partition still
  exceeds the heap.

``marginal_benefit`` is the finite-difference time saved per extra
page, evaluated at the workload's characteristic build size.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.units import PAGE_SIZE_BYTES


class HashJoinModel:
    """Grace-hash-join cost model over a page-sized heap.

    Parameters
    ----------
    row_bytes:
        Bytes per build-side row (key + payload + bucket overhead).
    cpu_time_per_row_s:
        Hashing/probing cost per row per partitioning level.
    io_time_per_page_s:
        Cost to write + read back one spilled partition page.
    probe_to_build_ratio:
        Probe-input size relative to the build input (drives how much
        data each extra partitioning level moves).
    """

    def __init__(
        self,
        row_bytes: int = 48,
        cpu_time_per_row_s: float = 1.5e-7,
        io_time_per_page_s: float = 0.002,
        probe_to_build_ratio: float = 4.0,
    ) -> None:
        if row_bytes <= 0:
            raise ConfigurationError(f"row_bytes must be positive, got {row_bytes}")
        if cpu_time_per_row_s < 0 or io_time_per_page_s < 0:
            raise ConfigurationError("costs must be non-negative")
        if probe_to_build_ratio <= 0:
            raise ConfigurationError(
                f"probe_to_build_ratio must be positive, got {probe_to_build_ratio}"
            )
        self.row_bytes = row_bytes
        self.cpu_time_per_row_s = cpu_time_per_row_s
        self.io_time_per_page_s = io_time_per_page_s
        self.probe_to_build_ratio = probe_to_build_ratio

    def build_pages(self, build_rows: int) -> int:
        """Pages occupied by the build side's hash table."""
        if build_rows < 0:
            raise ValueError(f"build_rows must be non-negative, got {build_rows}")
        rows_per_page = max(1, PAGE_SIZE_BYTES // self.row_bytes)
        return -(-build_rows // rows_per_page)

    def partitioning_levels(self, build_rows: int, heap_pages: int) -> int:
        """Recursive Grace partitioning levels (0 = fully in memory)."""
        if heap_pages <= 0:
            raise ValueError(f"heap_pages must be positive, got {heap_pages}")
        build = self.build_pages(build_rows)
        if build <= heap_pages:
            return 0
        fan_out = max(2, heap_pages - 1)
        # each level divides partitions by the fan-out until they fit
        return max(1, math.ceil(math.log(build / heap_pages, fan_out)))

    def spilled_pages(self, build_rows: int, heap_pages: int) -> int:
        """Build+probe pages written per partitioning level (the heap-
        resident fraction of the build stays in memory)."""
        build = self.build_pages(build_rows)
        spilled_build = max(0, build - max(0, heap_pages))
        if spilled_build == 0:
            return 0
        probe = int(build * self.probe_to_build_ratio)
        return spilled_build + probe

    def join_time(self, build_rows: int, heap_pages: int) -> float:
        """Simulated duration of the join."""
        if build_rows == 0:
            return 0.0
        levels = self.partitioning_levels(build_rows, heap_pages)
        total_rows = build_rows * (1 + self.probe_to_build_ratio)
        cpu = total_rows * self.cpu_time_per_row_s * (1 + levels)
        io = (
            self.spilled_pages(build_rows, heap_pages)
            * self.io_time_per_page_s
            * 2
            * levels
        )
        return cpu + io

    def marginal_benefit(self, heap_pages: int, typical_build_rows: int) -> float:
        """Time saved per extra heap page for the characteristic join."""
        if typical_build_rows <= 0:
            return 0.0
        step = max(1, heap_pages // 100)
        slower = self.join_time(typical_build_rows, heap_pages)
        faster = self.join_time(typical_build_rows, heap_pages + step)
        return max(0.0, (slower - faster) / step)
