"""Package cache (compiled statement cache) model.

The fourth PMC the paper names in section 2.1.  A statement whose
compiled plan is cached executes without recompilation; a miss pays a
compile cost.  Cache effectiveness follows the same concave curve shape
as the bufferpool, but over the *statement* population instead of data
pages: a handful of hot statements dominate OLTP, so a small cache
already captures most of the benefit and the package cache is usually a
willing STMM donor -- unless the workload churns through distinct
statement texts.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class PackageCacheModel:
    """Statement-cache hit curve plus compile-cost helper.

    Parameters
    ----------
    pages_per_statement:
        Cache pages one compiled plan occupies.
    distinct_statements:
        Working set of distinct statement texts the workload issues.
    zipf_skew:
        Skew of statement popularity in (0, 1): higher means fewer
        statements dominate (OLTP is very skewed; ad-hoc DSS is not).
    compile_time_s:
        Cost of compiling a statement on a cache miss.
    """

    def __init__(
        self,
        pages_per_statement: int = 8,
        distinct_statements: int = 500,
        zipf_skew: float = 0.8,
        compile_time_s: float = 0.01,
    ) -> None:
        if pages_per_statement <= 0:
            raise ConfigurationError(
                f"pages_per_statement must be positive, got {pages_per_statement}"
            )
        if distinct_statements <= 0:
            raise ConfigurationError(
                f"distinct_statements must be positive, got {distinct_statements}"
            )
        if not 0.0 < zipf_skew < 1.0:
            raise ConfigurationError(f"zipf_skew must be in (0, 1), got {zipf_skew}")
        if compile_time_s < 0:
            raise ConfigurationError("compile_time_s must be non-negative")
        self.pages_per_statement = pages_per_statement
        self.distinct_statements = distinct_statements
        self.zipf_skew = zipf_skew
        self.compile_time_s = compile_time_s

    def cached_statements(self, cache_pages: int) -> int:
        """Plans the cache can hold at the given size."""
        if cache_pages < 0:
            raise ValueError(f"cache_pages must be non-negative, got {cache_pages}")
        return min(
            self.distinct_statements, cache_pages // self.pages_per_statement
        )

    def hit_ratio(self, cache_pages: int) -> float:
        """Expected plan-cache hit ratio.

        With popularity skew ``s``, caching the hottest fraction ``f``
        of statements captures roughly ``f^(1-s)`` of executions (the
        standard Zipf-coverage approximation); s -> 1 means a tiny cache
        already hits almost always.
        """
        cached = self.cached_statements(cache_pages)
        if cached == 0:
            return 0.0
        fraction = cached / self.distinct_statements
        return fraction ** (1.0 - self.zipf_skew)

    def compile_overhead_s(self, cache_pages: int) -> float:
        """Expected compile time per statement execution."""
        return (1.0 - self.hit_ratio(cache_pages)) * self.compile_time_s

    def marginal_benefit(self, cache_pages: int) -> float:
        """Compile time saved per extra cache page."""
        step = max(1, self.pages_per_statement)
        slower = self.compile_overhead_s(cache_pages)
        faster = self.compile_overhead_s(cache_pages + step)
        return max(0.0, (slower - faster) / step)
