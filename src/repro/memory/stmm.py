"""The Self-Tuning Memory Manager (STMM).

STMM (paper section 2.1, [3]) runs at each *tuning interval* and:

1. resizes **deterministic** (FMC) heaps -- lock memory foremost -- to
   the target size their tuner requests.  Lock memory "will be tuned as
   a deterministic heap, meaning specifically that a cost-benefit model
   will not be created for lock memory" (section 3.1);
2. restores the **overflow area** towards its goal size by reclaiming
   pages from donor PMC heaps ("STMM will reduce the memory consumption
   of the heaps it controls in order to increase the overflow memory
   towards its goal", section 3.3);
3. gives overflow surplus to the *neediest* PMC heaps ("the freed memory
   is given to the most beneficial heaps, as usual", section 4);
4. performs a mild PMC-to-PMC rebalance along the marginal-benefit
   gradient, standing in for DB2's proprietary cost-benefit models.

The deterministic tuner is an object implementing the
:class:`DeterministicTuner` protocol; in this library that is the
:class:`repro.core.controller.LockMemoryController`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Protocol

from repro.errors import ConfigurationError
from repro.memory.registry import DatabaseMemoryRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.des import Environment


class DeterministicTuner(Protocol):
    """Interface STMM uses to drive a deterministically tuned heap."""

    #: Name of the heap in the registry this tuner controls.
    heap_name: str

    def compute_target_pages(self) -> int:
        """Desired heap size for the coming interval, in pages."""
        ...  # pragma: no cover - protocol

    def grow_physical(self, pages: int) -> int:
        """Physically allocate ``pages`` more; return pages achieved."""
        ...  # pragma: no cover - protocol

    def shrink_physical(self, pages: int) -> int:
        """Physically release up to ``pages``; return pages achieved.

        For lock memory only entirely-free 128 KB blocks can be released
        (paper section 2.2), so the achieved amount may be smaller.
        """
        ...  # pragma: no cover - protocol

    def on_interval_end(self, now: float) -> None:
        """Hook called after STMM finishes an interval (stats rollover)."""
        ...  # pragma: no cover - protocol


@dataclass
class StmmConfig:
    """STMM scheduling and redistribution knobs.

    The paper fixes the tuning interval at 30 s for all experiments
    (section 5); DB2 adapts it between 0.5 and 10 minutes.  Setting
    ``adaptive_interval`` selects the adaptive behaviour: the interval
    halves (down to ``min_interval_s``) after an interval that changed
    a deterministic heap and doubles (up to ``max_interval_s``) after a
    quiet one.
    """

    interval_s: float = 30.0
    adaptive_interval: bool = False
    min_interval_s: float = 30.0
    max_interval_s: float = 600.0
    #: Largest fraction of a donor PMC moved per interval during the
    #: PMC-to-PMC gradient rebalance.
    pmc_rebalance_fraction: float = 0.02
    #: Benefit ratio (receiver/donor) that must be exceeded before the
    #: PMC rebalance moves any memory.
    pmc_rebalance_threshold: float = 1.25

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ConfigurationError(f"interval_s must be positive, got {self.interval_s}")
        if self.min_interval_s <= 0 or self.max_interval_s < self.min_interval_s:
            raise ConfigurationError(
                "need 0 < min_interval_s <= max_interval_s, got "
                f"{self.min_interval_s}..{self.max_interval_s}"
            )
        if not 0.0 <= self.pmc_rebalance_fraction <= 1.0:
            raise ConfigurationError(
                f"pmc_rebalance_fraction must be in [0, 1], got {self.pmc_rebalance_fraction}"
            )
        if self.pmc_rebalance_threshold < 1.0:
            raise ConfigurationError(
                f"pmc_rebalance_threshold must be >= 1, got {self.pmc_rebalance_threshold}"
            )


@dataclass
class TuningAction:
    """Record of one STMM decision, kept for observability and tests."""

    time: float
    kind: str  # "resize", "reclaim", "distribute", "rebalance"
    heap: str
    pages: int
    detail: str = ""


@dataclass
class IntervalReport:
    """Everything STMM did during one tuning interval."""

    time: float
    actions: List[TuningAction] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return any(a.pages != 0 for a in self.actions)


class Stmm:
    """The tuning-interval scheduler and memory redistributor."""

    def __init__(
        self,
        registry: DatabaseMemoryRegistry,
        config: Optional[StmmConfig] = None,
    ) -> None:
        self.registry = registry
        self.config = config or StmmConfig()
        self._tuners: List[DeterministicTuner] = []
        self._global_tuners: List = []
        self._current_interval_s = self.config.interval_s
        #: One report per completed tuning interval.
        self.reports: List[IntervalReport] = []

    @property
    def current_interval_s(self) -> float:
        """The interval that will elapse before the next tuning pass."""
        return self._current_interval_s

    def register_deterministic_tuner(self, tuner: DeterministicTuner) -> None:
        """Attach a deterministic (FMC) heap tuner, e.g. lock memory."""
        if tuner.heap_name not in self.registry:
            raise ConfigurationError(
                f"tuner controls unknown heap {tuner.heap_name!r}"
            )
        if any(t.heap_name == tuner.heap_name for t in self._tuners):
            raise ConfigurationError(
                f"heap {tuner.heap_name!r} already has a deterministic tuner"
            )
        self._tuners.append(tuner)

    def register_global_tuner(self, tune: "callable") -> None:
        """Attach a whole-database tuner run first at each interval.

        Used for DATABASE_MEMORY self-tuning
        (:class:`repro.memory.os_model.DatabaseMemoryTuner`): the total
        budget is adjusted before heaps are redistributed within it.
        The callable receives the current simulation time.
        """
        self._global_tuners.append(tune)

    # -- one tuning pass ----------------------------------------------------

    def tune(self, now: float = 0.0) -> IntervalReport:
        """Run a single tuning interval at simulation time ``now``."""
        report = IntervalReport(time=now)
        for global_tuner in self._global_tuners:
            global_tuner(now)
        deterministic_heaps = [t.heap_name for t in self._tuners]

        for tuner in self._tuners:
            self._tune_deterministic(tuner, now, report)

        self._restore_overflow(deterministic_heaps, now, report)
        self._distribute_surplus(deterministic_heaps, now, report)
        self._rebalance_pmcs(deterministic_heaps, now, report)

        for tuner in self._tuners:
            tuner.on_interval_end(now)

        self.reports.append(report)
        self._adapt_interval(report)
        return report

    def _tune_deterministic(
        self, tuner: DeterministicTuner, now: float, report: IntervalReport
    ) -> None:
        heap = self.registry.heap(tuner.heap_name)
        target = tuner.compute_target_pages()
        if target < 0:
            raise ConfigurationError(
                f"tuner for {tuner.heap_name!r} returned negative target {target}"
            )
        delta = target - heap.size_pages
        if delta > 0:
            # Grow: deterministic heaps take priority.  Use overflow first;
            # if overflow cannot cover the growth, shrink donor PMCs now
            # rather than waiting for the overflow-restore step, so the
            # target is met within this interval.
            shortfall = delta - self.registry.overflow_pages
            if shortfall > 0:
                reclaimed = self.registry.reclaim_from_donors(
                    shortfall, exclude=[tuner.heap_name]
                )
                if reclaimed:
                    report.actions.append(
                        TuningAction(now, "reclaim", "pmc-donors", -reclaimed,
                                     f"to grow {tuner.heap_name}")
                    )
            granted = self.registry.grow_heap(tuner.heap_name, delta, partial=True)
            achieved = tuner.grow_physical(granted)
            if achieved < granted:
                # Physical layer refused part of the grant: hand it back.
                self.registry.shrink_heap(tuner.heap_name, granted - achieved)
            if achieved:
                report.actions.append(
                    TuningAction(now, "resize", tuner.heap_name, achieved,
                                 f"target {target}p")
                )
        elif delta < 0:
            freed = tuner.shrink_physical(-delta)
            if freed:
                self.registry.shrink_heap(tuner.heap_name, freed)
                report.actions.append(
                    TuningAction(now, "resize", tuner.heap_name, -freed,
                                 f"target {target}p")
                )

    def _restore_overflow(
        self, exclude: List[str], now: float, report: IntervalReport
    ) -> None:
        deficit = self.registry.overflow_deficit_pages
        if deficit > 0:
            reclaimed = self.registry.reclaim_from_donors(deficit, exclude=exclude)
            if reclaimed:
                report.actions.append(
                    TuningAction(now, "reclaim", "pmc-donors", -reclaimed,
                                 "restore overflow goal")
                )

    def _distribute_surplus(
        self, exclude: List[str], now: float, report: IntervalReport
    ) -> None:
        surplus = self.registry.overflow_surplus_pages
        if surplus <= 0:
            return
        for receiver in self.registry.pmc_receivers(exclude=exclude):
            if surplus == 0:
                break
            granted = self.registry.grow_heap(receiver.name, surplus, partial=True)
            surplus -= granted
            if granted:
                report.actions.append(
                    TuningAction(now, "distribute", receiver.name, granted,
                                 "overflow surplus")
                )

    def _rebalance_pmcs(
        self, exclude: List[str], now: float, report: IntervalReport
    ) -> None:
        if self.config.pmc_rebalance_fraction == 0:
            return
        donors = self.registry.pmc_donors(exclude=exclude)
        receivers = self.registry.pmc_receivers(exclude=exclude)
        if not donors or not receivers:
            return
        donor, receiver = donors[0], receivers[0]
        if donor.name == receiver.name:
            return
        donor_benefit = donor.benefit()
        if donor_benefit <= 0:
            needs_move = receiver.benefit() > 0
        else:
            needs_move = (
                receiver.benefit() / donor_benefit
                > self.config.pmc_rebalance_threshold
            )
        if not needs_move:
            return
        step = int(donor.size_pages * self.config.pmc_rebalance_fraction)
        if step == 0:
            return
        moved = self.registry.transfer(donor.name, receiver.name, step, partial=True)
        if moved:
            report.actions.append(
                TuningAction(now, "rebalance", receiver.name, moved,
                             f"from {donor.name}")
            )

    def _adapt_interval(self, report: IntervalReport) -> None:
        if not self.config.adaptive_interval:
            self._current_interval_s = self.config.interval_s
            return
        if report.changed:
            self._current_interval_s = max(
                self.config.min_interval_s, self._current_interval_s / 2.0
            )
        else:
            self._current_interval_s = min(
                self.config.max_interval_s, self._current_interval_s * 2.0
            )

    # -- DES integration ------------------------------------------------------

    def run(self, env: "Environment"):
        """DES process: tune every ``current_interval_s`` seconds, forever.

        The first pass happens one interval after start, matching DB2
        (the initial configuration is in force until the first interval
        elapses).
        """
        while True:
            yield env.timeout(self._current_interval_s)
            self.tune(env.now)
