"""Memory heaps: the named consumers inside database shared memory.

The paper divides memory consumers into two categories (section 2.1):

* **PMC** -- performance-related memory consumers (bufferpools, sort,
  hash join, package cache): more memory means better performance, less
  memory means worse performance, but queries still succeed.
* **FMC** -- functional memory consumers: without enough memory,
  operations *fail*.  Lock memory is modelled as an FMC because lock
  escalation "can have an effect on the system that is similar to denial
  of service".

A :class:`MemoryHeap` is pure accounting: it tracks its configured size
in pages plus optional bounds, and exposes a marginal-benefit score used
by the STMM donor/receiver selection.  The actual consumers (the lock
manager, the bufferpool model) observe heap sizes through the registry.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.errors import ConfigurationError, MemoryAccountingError


class HeapCategory(enum.Enum):
    """STMM consumer category (paper section 2.1)."""

    PMC = "performance"
    FMC = "functional"


class MemoryHeap:
    """A named, page-accounted memory heap.

    Parameters
    ----------
    name:
        Heap identifier (e.g. ``"bufferpool"``, ``"locklist"``).
    category:
        PMC or FMC; STMM only *donates from* and *rebalances between*
        PMC heaps -- FMC heaps are resized deterministically.
    size_pages:
        Initial configured size.
    min_pages / max_pages:
        Hard bounds enforced on every resize.  ``max_pages=None`` means
        unbounded (the registry budget still applies).
    benefit:
        Optional callable returning the heap's current marginal benefit
        per page; higher values mean the heap is needier.  Used by STMM
        to pick donors (lowest benefit) and receivers (highest benefit).
    """

    def __init__(
        self,
        name: str,
        category: HeapCategory,
        size_pages: int,
        min_pages: int = 0,
        max_pages: Optional[int] = None,
        benefit: Optional[Callable[["MemoryHeap"], float]] = None,
    ) -> None:
        if size_pages < 0:
            raise ConfigurationError(f"heap {name!r}: negative size {size_pages}")
        if min_pages < 0:
            raise ConfigurationError(f"heap {name!r}: negative min {min_pages}")
        if max_pages is not None and max_pages < min_pages:
            raise ConfigurationError(
                f"heap {name!r}: max_pages {max_pages} < min_pages {min_pages}"
            )
        if size_pages < min_pages:
            raise ConfigurationError(
                f"heap {name!r}: size {size_pages} below min {min_pages}"
            )
        if max_pages is not None and size_pages > max_pages:
            raise ConfigurationError(
                f"heap {name!r}: size {size_pages} above max {max_pages}"
            )
        self.name = name
        self.category = category
        self._size_pages = size_pages
        self.min_pages = min_pages
        self.max_pages = max_pages
        self._benefit = benefit

    @property
    def size_pages(self) -> int:
        """Currently configured size in 4 KB pages."""
        return self._size_pages

    @property
    def is_pmc(self) -> bool:
        return self.category is HeapCategory.PMC

    @property
    def is_fmc(self) -> bool:
        return self.category is HeapCategory.FMC

    def benefit(self) -> float:
        """Marginal benefit per additional page (0 when not modelled)."""
        if self._benefit is None:
            return 0.0
        return float(self._benefit(self))

    def headroom_pages(self) -> int:
        """Pages this heap may still grow before hitting ``max_pages``."""
        if self.max_pages is None:
            return 2**62  # effectively unbounded; registry budget binds first
        return self.max_pages - self._size_pages

    def shrinkable_pages(self) -> int:
        """Pages this heap may shed before hitting ``min_pages``."""
        return self._size_pages - self.min_pages

    def _apply_resize(self, delta_pages: int) -> None:
        """Resize by ``delta_pages`` (registry-internal; bounds-checked)."""
        new_size = self._size_pages + delta_pages
        if new_size < self.min_pages:
            raise MemoryAccountingError(
                f"heap {self.name!r}: resize to {new_size} below min "
                f"{self.min_pages}"
            )
        if self.max_pages is not None and new_size > self.max_pages:
            raise MemoryAccountingError(
                f"heap {self.name!r}: resize to {new_size} above max "
                f"{self.max_pages}"
            )
        self._size_pages = new_size

    def __repr__(self) -> str:
        return (
            f"MemoryHeap({self.name!r}, {self.category.name}, "
            f"size={self._size_pages}p, min={self.min_pages}p, "
            f"max={self.max_pages if self.max_pages is not None else 'inf'})"
        )
