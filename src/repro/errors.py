"""Exception hierarchy for the repro library.

All library-specific exceptions derive from :class:`ReproError` so callers
can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class MemoryAccountingError(ReproError):
    """An internal memory-accounting invariant was violated.

    Raised when page bookkeeping would go negative or exceed the database
    memory budget -- these indicate bugs, not recoverable conditions.
    """


class OutOfMemoryError(ReproError):
    """A memory request could not be satisfied from any source."""


class LockManagerError(ReproError):
    """Base class for lock-manager failures."""


class LockNotHeldError(LockManagerError):
    """An application tried to release a lock it does not hold."""


class EscalationFailedError(LockManagerError):
    """A lock escalation could not complete (e.g. conflicting table lock)."""


class DeadlockError(LockManagerError):
    """A lock request would create a wait-for cycle.

    The simulated engine resolves deadlocks by rolling back the requesting
    transaction, mirroring DB2's deadlock detector choosing a victim.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ServiceError(ReproError):
    """Base class for failures of the live (wall-clock) lock service."""


class ServiceClosedError(ServiceError):
    """An operation was attempted on a service that has shut down."""


class RequestCancelledError(ServiceError):
    """A pending lock request was cancelled by another thread.

    Raised inside the requesting thread; the session should respond by
    rolling back (``release_all``), exactly like a deadlock victim.
    """


class AdmissionError(ServiceError):
    """Base class for admission-control failures."""


class AdmissionRejectedError(AdmissionError):
    """The admission queue is full: the request was shed at the door.

    Carries ``retry_after_s``, the controller's backoff hint for the
    client's next attempt.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class AdmissionTimeoutError(AdmissionError):
    """An admission wait exceeded its deadline before a slot freed up."""


class StopProcess(Exception):  # noqa: N818 - control-flow signal, not an error
    """Internal control-flow signal used to terminate a DES process early."""
