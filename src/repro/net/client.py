"""Client library for the lock-service wire protocol.

Three layers, innermost first:

* :class:`ClientConnection` -- one socket with a pending-request
  table: any number of caller threads may have requests in flight on
  the same connection (pipelining).  There is no dedicated reader
  thread -- whichever requester finds the read side free becomes the
  reader and settles everyone's responses until its own arrives.
* :class:`LockClient` -- a pool of connections presenting the
  *service* surface the in-process stacks present
  (``open_session`` / ``session()`` / ``lock_row`` / ``rollback`` /
  ...), plus wire-only extras: ``lock_rows`` batching, ``stats``,
  ``ping``.  Sessions are sticky to one connection because the server
  binds session cleanup to the connection that opened them.
* :class:`NetClientStack` -- the shim that makes a remote server look
  like a :class:`~repro.service.stack.ServiceStack` to
  :class:`~repro.service.driver.LoadDriver`: ``.service`` is the
  client, ``.admission`` is a *local* admission controller (back-
  pressure belongs at the edge; the server never queues admissions).

Failure model: a dead socket fails every request in flight on it with
:class:`~repro.net.protocol.ConnectionLostError` and is replaced by a
fresh connect on next use, so a client survives a server restart --
sessions it held are gone (the server force-closed them on
disconnect), but new ``session()`` scopes work immediately.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import socket
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.net import protocol as wire
from repro.net.protocol import ConnectionLostError
from repro.service.admission import AdmissionController
from repro.service.service import _USE_DEFAULT

#: Wire encoding of an *explicitly unbounded* wait (``timeout_s=None``
#: passed by the caller, distinct from "use the server default").
_UNBOUNDED = -1.0


def _value(response: "int | wire.Response") -> int:
    """The integer result of a request (hot path returns it bare)."""
    return response if response.__class__ is int else response.value


def _wire_timeout(timeout_s: object) -> Optional[float]:
    """Map the service-facade timeout convention onto the wire."""
    if timeout_s is _USE_DEFAULT:
        return None  # no flag: server applies its default
    if timeout_s is None:
        return _UNBOUNDED
    return float(timeout_s)


class _Pending:
    """One in-flight request's parking spot (pooled, reusable).

    ``response`` is an ``int`` for the hot path (the value of a
    data-free OK, no :class:`~repro.net.protocol.Response` built) or a
    full ``Response`` otherwise.
    """

    __slots__ = ("event", "response", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: "Optional[int | wire.Response]" = None
        self.error: Optional[BaseException] = None

    @property
    def settled(self) -> bool:
        return self.response is not None or self.error is not None

    def reset(self) -> None:
        # When the requester was its own reader the event was never
        # set; skipping the clear avoids two condition-lock rounds per
        # request on the hot path.
        if self.event.is_set():
            self.event.clear()
        self.response = None
        self.error = None


class ClientConnection:
    """One pipelined protocol connection (thread-safe).

    There is no dedicated reader thread: whichever requester thread
    needs a response and finds the read side free *becomes* the reader
    (driver-style reader-role handoff), consuming frames and settling
    other threads' pending entries until its own answer shows up, then
    passing the role on.  For the common single-requester case this
    makes a round trip exactly one send and one recv on the calling
    thread -- no cross-thread wakeups -- which on a single core is
    worth roughly 2.5x in closed-loop throughput over a reader-thread
    design (two context switches saved per request).
    """

    def __init__(
        self, host: str, port: int, *, connect_timeout_s: float = 5.0
    ) -> None:
        self.host = host
        self.port = port
        if host.startswith("unix:"):
            # Unix-domain transport: ``host="unix:/path"``, port unused.
            # The default for same-box deployments (worker pools): the
            # same wire protocol over a cheaper kernel path.
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(connect_timeout_s)
            self._sock.connect(host[len("unix:"):])
        else:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout_s
            )
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        #: Guards the _dead flip and the victim sweep in _fail; the
        #: pending table itself is touched only with GIL-atomic dict
        #: operations (single set / pop / values snapshot), so the hot
        #: request path takes no lock besides the send lock.
        self._pending_lock = threading.Lock()
        self._pending: Dict[int, _Pending] = {}
        #: One reusable _Pending per requester thread: a thread can
        #: only have one request outstanding (request() blocks), so no
        #: shared pool -- and no pool lock -- is needed.
        self._tls = threading.local()
        self._ids = itertools.count(1)
        self._dead: Optional[BaseException] = None
        self._decoder = wire.FrameDecoder()
        #: Held by the thread currently playing reader.
        self._reader_lock = threading.Lock()

    @property
    def alive(self) -> bool:
        return self._dead is None

    # -- request/response --

    def request(self, build, raw: bool = False) -> "int | wire.Response":
        """Send ``build(request_id)`` and block for its response.

        ``build`` returns a payload (framed here), or -- with
        ``raw=True`` -- a complete frame, for hot-path callers using
        the protocol's one-pack helpers.  Returns the OK value as a
        bare ``int`` on the hot path, a full ``Response`` when the
        reply carried data.  Raises the mapped service exception on
        RESP_ERR and :class:`ConnectionLostError` if the socket dies
        first.
        """
        if self._dead is not None:
            raise ConnectionLostError(
                f"connection to {self.host}:{self.port} is down: "
                f"{self._dead}"
            )
        try:
            pending = self._tls.pending
        except AttributeError:
            pending = self._tls.pending = _Pending()
        request_id = next(self._ids)  # atomic (C-level) under the GIL
        self._pending[request_id] = pending
        frame = (
            build(request_id) if raw else wire.encode_frame(build(request_id))
        )
        try:
            with self._send_lock:
                self._sock.sendall(frame)
        except OSError as exc:
            self._pending.pop(request_id, None)
            self._fail(exc)
            raise ConnectionLostError(
                f"send to {self.host}:{self.port} failed: {exc}"
            ) from exc
        self._await(pending)
        response, error = pending.response, pending.error
        pending.reset()
        if error is not None:
            raise ConnectionLostError(
                f"connection to {self.host}:{self.port} lost mid-request: "
                f"{error}"
            ) from error
        assert response is not None
        if response.__class__ is int:
            return response
        response.raise_if_error()
        return response

    def send_only(self, payload: bytes) -> None:
        """Send a fire-and-forget request (no pending entry, no wait).

        Only for payloads carrying ``FLAG_NO_REPLY``: the server sends
        nothing back, so registering a pending entry would leak it.
        The TCP stream still orders the op before any later request on
        this connection.
        """
        if self._dead is not None:
            raise ConnectionLostError(
                f"connection to {self.host}:{self.port} is down: "
                f"{self._dead}"
            )
        frame = wire.encode_frame(payload)
        try:
            with self._send_lock:
                self._sock.sendall(frame)
        except OSError as exc:
            self._fail(exc)
            raise ConnectionLostError(
                f"send to {self.host}:{self.port} failed: {exc}"
            ) from exc

    def _await(self, pending: _Pending) -> None:
        """Park until ``pending`` settles, reading the socket if free.

        The event is a wakeup hint, not the truth: ``pending.settled``
        is.  A retiring reader sets every still-pending event so one
        parked thread picks up the reader role; the rest re-park.
        """
        while pending.response is None and pending.error is None:
            if self._reader_lock.acquire(blocking=False):
                try:
                    if pending.response is None and pending.error is None:
                        self._read_until(pending)
                finally:
                    self._reader_lock.release()
                    # Dirty read: an empty pending table means nobody
                    # can be parked in wait() below (a later requester
                    # will find the reader lock free and read for
                    # itself), so the lock round in _handoff is skipped.
                    if self._pending:
                        self._handoff()
            else:
                pending.event.wait(timeout=0.2)
                pending.event.clear()

    def _read_until(self, pending: _Pending) -> None:
        """Reader role: consume frames until ``pending`` settles."""
        recv = self._sock.recv
        decoder = self._decoder
        split_frames = wire.split_frames
        try_parse_ok = wire.try_parse_ok
        deliver = self._deliver
        try:
            while pending.response is None and pending.error is None:
                data = recv(65536)
                if not data:
                    raise ConnectionLostError("server closed the connection")
                for payload in split_frames(data, decoder):
                    fast = try_parse_ok(payload)
                    if fast is not None:
                        deliver(fast[0], fast[1], pending)
                    else:
                        response = wire.decode_response(payload)
                        deliver(response.request_id, response, pending)
        except ConnectionLostError as exc:
            self._fail(exc)
        except (OSError, wire.ProtocolError) as exc:
            self._fail(exc)

    def _handoff(self) -> None:
        """Wake parked waiters so one of them takes the reader role."""
        for waiter in list(self._pending.values()):
            waiter.event.set()

    def _deliver(
        self,
        request_id: int,
        response: "int | wire.Response",
        reader: Optional[_Pending] = None,
    ) -> None:
        pending = self._pending.pop(request_id, None)
        if pending is None:
            # id 0 is the server's "stream broken" report; anything
            # else is a response whose waiter already gave up.
            return
        pending.response = response
        if pending is not reader:
            # The reader checks ``settled`` itself; waking it through
            # the event would be pure condition-variable overhead.
            pending.event.set()

    def _fail(self, exc: BaseException) -> None:
        with self._pending_lock:
            if self._dead is None:
                self._dead = exc
            victims = list(self._pending.values())
            self._pending.clear()
        for pending in victims:
            pending.error = exc
            pending.event.set()
        with contextlib.suppress(OSError):
            self._sock.close()

    def close(self) -> None:
        self._fail(ConnectionLostError("closed by client"))


class LockClient:
    """Pooled sync facade over one server, session-sticky.

    Presents the same method surface (and raises the same exception
    classes) as the in-process services, so code written against
    :class:`LockService` -- including :class:`LoadDriver` -- drives a
    remote server unchanged.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = 2,
        connect_timeout_s: float = 5.0,
    ) -> None:
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.connect_timeout_s = connect_timeout_s
        self._lock = threading.Lock()
        self._pool: List[Optional[ClientConnection]] = [None] * pool_size
        self._next_slot = 0
        self._sessions: Dict[int, ClientConnection] = {}
        #: Open-but-idle sessions per connection, recycled by
        #: :meth:`session` to avoid an open/close round-trip pair per
        #: transaction scope.
        self._idle_sessions: Dict[ClientConnection, List[int]] = {}
        self._closed = False
        #: Connections replaced after dying (server restart forensics).
        self.reconnects = 0

    # -- pool management --

    def _connection(self, slot: Optional[int] = None) -> ClientConnection:
        with self._lock:
            if self._closed:
                raise ConnectionLostError("client is closed")
            if slot is None:
                slot = self._next_slot
                self._next_slot = (self._next_slot + 1) % self.pool_size
            conn = self._pool[slot]
            if conn is not None and conn.alive:
                return conn
            if conn is not None:
                self.reconnects += 1
                self._idle_sessions.pop(conn, None)
            conn = ClientConnection(
                self.host, self.port, connect_timeout_s=self.connect_timeout_s
            )
            self._pool[slot] = conn
            return conn

    def _session_conn(self, app_id: int) -> ClientConnection:
        conn = self._sessions.get(app_id)  # atomic read under the GIL
        if conn is None:
            raise wire.ServiceError(
                f"app {app_id} has no live session on this client"
            )
        if not conn.alive:
            # The server force-closed the session when the connection
            # died; surface that instead of silently re-opening.
            with self._lock:
                self._sessions.pop(app_id, None)
            raise ConnectionLostError(
                f"session {app_id} was lost with its connection"
            )
        return conn

    # -- the service surface --

    def open_session(self) -> int:
        conn = self._connection()
        app_id = _value(conn.request(wire.encode_open_session))
        with self._lock:
            self._sessions[app_id] = conn
        return app_id

    def close_session(self, app_id: int, *, wait: bool = True) -> int:
        """Close ``app_id`` (releasing all its locks server-side).

        With ``wait=False`` the close is fire-and-forget: one send, no
        round trip, return value 0.  The TCP stream still orders the
        release before anything this client sends next, so the hot
        open/lock/close transaction loop stays correct while paying
        one round trip less per transaction.
        """
        conn = self._session_conn(app_id)
        try:
            if wait:
                response = conn.request(
                    lambda rid: wire.encode_close_session(rid, app_id)
                )
            else:
                conn.send_only(
                    wire.encode_close_session(0, app_id, no_reply=True)
                )
                response = 0
        finally:
            with self._lock:
                self._sessions.pop(app_id, None)
        return _value(response)

    @contextlib.contextmanager
    def session(self) -> Iterator[int]:
        """A transaction scope: yields an app id, releases its locks on
        exit.

        Sessions are *recycled*: scope exit sends one fire-and-forget
        ``release_all`` (the strict-2PL transaction boundary) and
        parks the still-open session on a per-connection free list for
        the next scope, so the steady-state cost of a scope is zero
        round trips instead of the open/close pair.  Server-side
        cleanup is unchanged -- recycled sessions stay bound to their
        connection and are force-closed when it drops.
        """
        conn = self._connection()
        app_id: Optional[int] = None
        idle = self._idle_sessions.get(conn)
        if idle:
            # list.pop is atomic under the GIL; a concurrent pop on a
            # just-emptied list surfaces as IndexError, not corruption.
            try:
                app_id = idle.pop()
            except IndexError:
                app_id = None
        if app_id is None:
            app_id = _value(conn.request(wire.encode_open_session))
            with self._lock:
                self._sessions[app_id] = conn
        try:
            yield app_id
        finally:
            recycled = False
            with contextlib.suppress(ConnectionLostError):
                conn.send_only(
                    wire.encode_release_all(0, app_id, no_reply=True)
                )
                recycled = True
            if recycled and not self._closed:
                self._idle_sessions.setdefault(conn, []).append(app_id)
            else:
                self._sessions.pop(app_id, None)

    def lock_row(
        self,
        app_id: int,
        table_id: int,
        row_id: int,
        mode: Any,
        timeout_s: object = _USE_DEFAULT,
    ) -> None:
        timeout = _wire_timeout(timeout_s)
        mode_byte = wire.wire_mode(mode)
        self._session_conn(app_id).request(
            lambda rid: wire.pack_lock_row_frame(
                rid, app_id, table_id, row_id, mode_byte, timeout
            ),
            raw=True,
        )

    def lock_table(
        self,
        app_id: int,
        table_id: int,
        mode: Any,
        timeout_s: object = _USE_DEFAULT,
    ) -> None:
        timeout = _wire_timeout(timeout_s)
        self._session_conn(app_id).request(
            lambda rid: wire.encode_lock_table(
                rid, app_id, table_id, wire.wire_mode(mode), timeout
            )
        )

    def lock_rows(
        self,
        app_id: int,
        accesses: Sequence[Tuple[int, int, Any]],
        timeout_s: object = _USE_DEFAULT,
    ) -> int:
        """Batch: acquire every ``(table, row, mode)`` in one frame.

        Returns the number granted.  On failure the locks granted
        before the failing access are still held (exactly as if the
        caller had looped ``lock_row``) -- roll back to shed them.
        """
        timeout = _wire_timeout(timeout_s)
        triples = [(t, r, wire.wire_mode(m)) for t, r, m in accesses]
        response = self._session_conn(app_id).request(
            lambda rid: wire.encode_batch_lock(rid, app_id, triples, timeout)
        )
        return _value(response)

    def release_read_lock(
        self, app_id: int, table_id: int, row_id: int
    ) -> bool:
        response = self._session_conn(app_id).request(
            lambda rid: wire.encode_unlock_read(rid, app_id, table_id, row_id)
        )
        return bool(_value(response))

    def rollback(self, app_id: int) -> int:
        response = self._session_conn(app_id).request(
            lambda rid: wire.encode_release_all(rid, app_id)
        )
        return _value(response)

    def cancel(self, app_id: int, message: str = "cancelled") -> bool:
        response = self._session_conn(app_id).request(
            lambda rid: wire.encode_cancel(rid, app_id)
        )
        return bool(_value(response))

    # -- wire-only extras --

    def stats(self) -> Dict[str, Any]:
        response = self._connection().request(wire.encode_stats)
        return json.loads(response.data.decode("utf-8"))

    def ping(self) -> None:
        self._connection().request(wire.encode_ping)

    @property
    def session_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns = [c for c in self._pool if c is not None]
            self._pool = [None] * self.pool_size
            self._sessions.clear()
        for conn in conns:
            conn.close()

    def __enter__(self) -> "LockClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NetClientStack:
    """Make a remote lock server drivable by :class:`LoadDriver`.

    The driver touches exactly two attributes of its stack --
    ``.service`` and ``.admission`` -- so this shim provides a
    :class:`LockClient` as the service and a client-side
    :class:`AdmissionController` for back-pressure (the wire protocol
    deliberately has no admission op: shedding load *before* it hits
    the socket is the whole point of admission control).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = 2,
        max_in_flight: int = 64,
        max_queue_depth: int = 256,
    ) -> None:
        self.service = LockClient(host, port, pool_size=pool_size)
        self.admission = AdmissionController(
            max_in_flight=max_in_flight, max_queue_depth=max_queue_depth
        )

    def close(self) -> None:
        self.admission.close()
        self.service.close()

    def __enter__(self) -> "NetClientStack":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _RoutedSession:
    """One routed transaction scope: app id + per-worker connections.

    ``conns`` maps worker index -> the :class:`ClientConnection` the
    session is registered on there (opened on the home worker, adopted
    lazily elsewhere).  Validity is the conjunction of those
    connections being alive: a server force-closes its registration
    when the connection drops.
    """

    __slots__ = ("app_id", "conns")

    def __init__(self, app_id: int, conns: Dict[int, ClientConnection]) -> None:
        self.app_id = app_id
        self.conns = conns


class RoutedLockClient:
    """Client-side router over a worker pool's per-worker endpoints.

    Tables are routed ``table_id % workers`` -- the same deterministic
    placement :func:`repro.service.sharded.shard_of` uses -- so every
    lock request goes straight to the worker that owns the table, with
    no intermediate hop.  Sessions open on a round-robin *home* worker
    and are lazily **adopted** (``OP_ADOPT_SESSION``) by other workers
    on first touch; worker-allocated app ids come from disjoint
    arithmetic progressions, so adoption never collides.

    Presents the same service surface as :class:`LockClient`, so
    :class:`LoadDriver` drives a multi-process pool unchanged.
    Sessions are recycled exactly like :class:`LockClient.session`:
    scope exit fans one fire-and-forget ``release_all`` out to every
    adopted worker (strict 2PL commit across the pool) and parks the
    record for the next scope, keeping adoption warm.
    """

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, int]],
        *,
        pool_size: int = 1,
        connect_timeout_s: float = 5.0,
        metrics: Any = None,
        tracer: Any = None,
    ) -> None:
        if not endpoints:
            raise ValueError("need at least one worker endpoint")
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self._endpoints = list(endpoints)
        self._n = len(self._endpoints)
        self.pool_size = pool_size
        self.connect_timeout_s = connect_timeout_s
        self._lock = threading.Lock()
        self._pool: List[List[Optional[ClientConnection]]] = [
            [None] * pool_size for _ in range(self._n)
        ]
        self._next_slot = [0] * self._n
        #: All live session records by app id (in-scope and idle alike).
        self._recs: Dict[int, _RoutedSession] = {}
        self._idle: List[_RoutedSession] = []
        self._rr = itertools.count()
        self._closed = False
        self.reconnects = 0
        #: Optional end-to-end request tracer
        #: (:class:`repro.obs.tracing.RequestTracer`).  Sampled lock_row
        #: calls take the traced path; everything else pays exactly one
        #: None check here (the disabled-overhead contract).
        self._tracer = tracer
        #: Optional per-worker wire-latency histograms (one observation
        #: per lock_row round trip, labeled by worker).
        self._lat = None
        if metrics is not None:
            from repro.obs.registry import WALL_CLOCK_BUCKETS_S

            self._lat = [
                metrics.histogram(
                    "net.client.request_latency_s",
                    WALL_CLOCK_BUCKETS_S,
                    labels={"worker": str(idx)},
                )
                for idx in range(self._n)
            ]

    @property
    def workers(self) -> int:
        return self._n

    # -- connections --

    def _conn(self, worker: int) -> ClientConnection:
        with self._lock:
            if self._closed:
                raise ConnectionLostError("client is closed")
            slot = self._next_slot[worker]
            self._next_slot[worker] = (slot + 1) % self.pool_size
            conn = self._pool[worker][slot]
            if conn is not None and conn.alive:
                return conn
            if conn is not None:
                self.reconnects += 1
            host, port = self._endpoints[worker]
            conn = ClientConnection(
                host, port, connect_timeout_s=self.connect_timeout_s
            )
            self._pool[worker][slot] = conn
            return conn

    def _rec(self, app_id: int) -> _RoutedSession:
        rec = self._recs.get(app_id)  # atomic read under the GIL
        if rec is None:
            raise wire.ServiceError(
                f"app {app_id} has no live session on this client"
            )
        return rec

    def _adopt(self, rec: _RoutedSession, worker: int) -> ClientConnection:
        conn = self._conn(worker)
        conn.request(
            lambda rid: wire.encode_adopt_session(rid, rec.app_id)
        )
        rec.conns[worker] = conn
        return conn

    # -- session lifecycle --

    def open_session(self) -> int:
        home = next(self._rr) % self._n
        conn = self._conn(home)
        app_id = _value(conn.request(wire.encode_open_session))
        rec = _RoutedSession(app_id, {home: conn})
        self._recs[app_id] = rec
        return app_id

    def close_session(self, app_id: int, *, wait: bool = True) -> int:
        rec = self._rec(app_id)
        released = 0
        try:
            for conn in rec.conns.values():
                if not conn.alive:
                    continue
                if wait:
                    released += _value(
                        conn.request(
                            lambda rid: wire.encode_close_session(
                                rid, app_id
                            )
                        )
                    )
                else:
                    with contextlib.suppress(ConnectionLostError):
                        conn.send_only(
                            wire.encode_close_session(
                                0, app_id, no_reply=True
                            )
                        )
        finally:
            self._recs.pop(app_id, None)
        return released

    def _discard(self, rec: _RoutedSession) -> None:
        self._recs.pop(rec.app_id, None)
        for conn in rec.conns.values():
            if conn.alive:
                with contextlib.suppress(ConnectionLostError):
                    conn.send_only(
                        wire.encode_close_session(
                            0, rec.app_id, no_reply=True
                        )
                    )

    @contextlib.contextmanager
    def session(self) -> Iterator[int]:
        """A transaction scope across the pool (recycled, see class doc)."""
        rec: Optional[_RoutedSession] = None
        while rec is None:
            try:
                candidate = self._idle.pop()  # GIL-atomic
            except IndexError:
                break
            if all(conn.alive for conn in candidate.conns.values()):
                rec = candidate
            else:
                self._discard(candidate)
        if rec is None:
            home = next(self._rr) % self._n
            conn = self._conn(home)
            app_id = _value(conn.request(wire.encode_open_session))
            rec = _RoutedSession(app_id, {home: conn})
            self._recs[app_id] = rec
        try:
            yield rec.app_id
        finally:
            recycled = True
            for conn in rec.conns.values():
                if not conn.alive:
                    recycled = False
                    continue
                try:
                    conn.send_only(
                        wire.encode_release_all(
                            0, rec.app_id, no_reply=True
                        )
                    )
                except ConnectionLostError:
                    recycled = False
            if recycled and not self._closed:
                self._idle.append(rec)
            else:
                self._discard(rec)

    # -- the service surface --

    def lock_row(
        self,
        app_id: int,
        table_id: int,
        row_id: int,
        mode: Any,
        timeout_s: object = _USE_DEFAULT,
    ) -> None:
        rec = self._rec(app_id)
        worker = table_id % self._n
        conn = rec.conns.get(worker)
        if conn is None:
            conn = self._adopt(rec, worker)
        timeout = _wire_timeout(timeout_s)
        mode_byte = wire.wire_mode(mode)
        if self._tracer is not None:
            ctx = self._tracer.maybe_trace()
            if ctx is not None:
                self._lock_row_traced(
                    ctx, conn, worker, app_id, table_id, row_id,
                    mode_byte, timeout,
                )
                return
        if self._lat is None:
            conn.request(
                lambda rid: wire.pack_lock_row_frame(
                    rid, app_id, table_id, row_id, mode_byte, timeout
                ),
                raw=True,
            )
            return
        started = time.perf_counter()
        conn.request(
            lambda rid: wire.pack_lock_row_frame(
                rid, app_id, table_id, row_id, mode_byte, timeout
            ),
            raw=True,
        )
        self._lat[worker].observe(time.perf_counter() - started)

    def _lock_row_traced(
        self,
        ctx: Any,
        conn: ClientConnection,
        worker: int,
        app_id: int,
        table_id: int,
        row_id: int,
        mode_byte: int,
        timeout: Optional[float],
    ) -> None:
        """One sampled lock_row round trip, decomposed into hops.

        The payload is pre-built with request id 0 (that pack is the
        ``client.encode`` hop) and the per-request id spliced in with
        :func:`~repro.net.protocol.rewrite_request_id`, so the timed
        encode work happens exactly once.  The server ships its four
        hop durations back as the OK payload; subtracting their sum
        from the observed wall wait leaves the disjoint
        ``client.net_wait`` hop, so the hops sum to the end-to-end
        latency.  Session adoption (if any) happened before this
        method, outside the trace window -- an adopted worker adds no
        extra hops.
        """
        perf = time.perf_counter
        t0 = perf()
        payload = wire.encode_lock_row(
            0, app_id, table_id, row_id, mode_byte, timeout,
            trace=(ctx.trace_id, ctx.span_id, True),
        )
        t1 = perf()
        try:
            response = conn.request(
                lambda rid: wire.rewrite_request_id(payload, rid)
            )
        except BaseException as exc:
            t2 = perf()
            self._tracer.finish(
                ctx,
                t2 - t0,
                {
                    "client.encode": t1 - t0,
                    "client.net_wait": t2 - t1,
                    "client.decode": 0.0,
                },
                worker=worker,
                app_id=app_id,
                table_id=table_id,
                row_id=row_id,
                mode=str(mode_byte),
                outcome=type(exc).__name__,
            )
            raise
        t2 = perf()
        wall = t2 - t1
        data = b"" if response.__class__ is int else response.data
        report = wire.parse_hop_report(data)
        t3 = perf()
        hops = {
            "client.encode": t1 - t0,
            "client.decode": t3 - t2,
        }
        if report is not None:
            dispatch_s, lock_wait_s, park_s, reply_s = report
            hops["server.dispatch"] = dispatch_s
            hops["server.lock_wait"] = lock_wait_s
            hops["server.executor_park"] = park_s
            hops["server.reply_encode"] = reply_s
            hops["client.net_wait"] = max(
                0.0, wall - (dispatch_s + lock_wait_s + park_s + reply_s)
            )
        else:
            # An old peer ignored the trace tail (or stripped the
            # report): the whole wall wait is net as far as we can see.
            hops["client.net_wait"] = wall
        self._tracer.finish(
            ctx,
            t3 - t0,
            hops,
            worker=worker,
            app_id=app_id,
            table_id=table_id,
            row_id=row_id,
            mode=str(mode_byte),
            outcome="ok",
        )
        if self._lat is not None:
            self._lat[worker].observe(wall)

    def lock_table(
        self,
        app_id: int,
        table_id: int,
        mode: Any,
        timeout_s: object = _USE_DEFAULT,
    ) -> None:
        rec = self._rec(app_id)
        worker = table_id % self._n
        conn = rec.conns.get(worker) or self._adopt(rec, worker)
        timeout = _wire_timeout(timeout_s)
        conn.request(
            lambda rid: wire.encode_lock_table(
                rid, app_id, table_id, wire.wire_mode(mode), timeout
            )
        )

    def lock_rows(
        self,
        app_id: int,
        accesses: Sequence[Tuple[int, int, Any]],
        timeout_s: object = _USE_DEFAULT,
    ) -> int:
        """Batch across workers: one frame per worker touched.

        Splits the batch by owning worker and issues the sub-batches
        sequentially (first-touch order), so failure semantics match
        the looped ``lock_row`` per worker; a failing sub-batch leaves
        earlier workers' locks held, exactly like the loop would.
        """
        rec = self._rec(app_id)
        timeout = _wire_timeout(timeout_s)
        by_worker: Dict[int, List[Tuple[int, int, int]]] = {}
        order: List[int] = []
        for table_id, row_id, mode in accesses:
            worker = table_id % self._n
            if worker not in by_worker:
                by_worker[worker] = []
                order.append(worker)
            by_worker[worker].append(
                (table_id, row_id, wire.wire_mode(mode))
            )
        granted = 0
        for worker in order:
            conn = rec.conns.get(worker) or self._adopt(rec, worker)
            granted += _value(
                conn.request(
                    lambda rid, w=worker: wire.encode_batch_lock(
                        rid, app_id, by_worker[w], timeout
                    )
                )
            )
        return granted

    def release_read_lock(
        self, app_id: int, table_id: int, row_id: int
    ) -> bool:
        rec = self._rec(app_id)
        worker = table_id % self._n
        conn = rec.conns.get(worker) or self._adopt(rec, worker)
        response = conn.request(
            lambda rid: wire.encode_unlock_read(rid, app_id, table_id, row_id)
        )
        return bool(_value(response))

    def rollback(self, app_id: int) -> int:
        rec = self._rec(app_id)
        released = 0
        for conn in rec.conns.values():
            released += _value(
                conn.request(
                    lambda rid: wire.encode_release_all(rid, app_id)
                )
            )
        return released

    def cancel(self, app_id: int, message: str = "cancelled") -> bool:
        rec = self._rec(app_id)
        cancelled = False
        for conn in rec.conns.values():
            response = conn.request(
                lambda rid: wire.encode_cancel(rid, app_id)
            )
            cancelled = cancelled or bool(_value(response))
        return cancelled

    # -- wire-only extras --

    def stats(self) -> List[Dict[str, Any]]:
        """Per-worker stats payloads, indexed by worker."""
        payloads = []
        for worker in range(self._n):
            response = self._conn(worker).request(wire.encode_stats)
            payloads.append(json.loads(response.data.decode("utf-8")))
        return payloads

    def ping(self) -> None:
        for worker in range(self._n):
            self._conn(worker).request(wire.encode_ping)

    @property
    def session_count(self) -> int:
        return len(self._recs)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns = [
                conn
                for pool in self._pool
                for conn in pool
                if conn is not None
            ]
            self._pool = [[None] * self.pool_size for _ in range(self._n)]
            self._recs.clear()
            self._idle.clear()
        for conn in conns:
            conn.close()

    def __enter__(self) -> "RoutedLockClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RoutedClientStack:
    """Make a worker pool drivable by :class:`LoadDriver`.

    Same shape as :class:`NetClientStack` -- ``.service`` plus a local
    ``.admission`` -- but the service is a :class:`RoutedLockClient`
    over every worker endpoint.
    """

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, int]],
        *,
        pool_size: int = 1,
        max_in_flight: int = 64,
        max_queue_depth: int = 256,
        metrics: Any = None,
        tracer: Any = None,
    ) -> None:
        self.service = RoutedLockClient(
            endpoints, pool_size=pool_size, metrics=metrics, tracer=tracer
        )
        self.admission = AdmissionController(
            max_in_flight=max_in_flight, max_queue_depth=max_queue_depth
        )

    def close(self) -> None:
        self.admission.close()
        self.service.close()

    def __enter__(self) -> "RoutedClientStack":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "ClientConnection",
    "ConnectionLostError",
    "LockClient",
    "NetClientStack",
    "RoutedClientStack",
    "RoutedLockClient",
]
