"""Network front end for the live lock service.

The live stacks (:mod:`repro.service.stack`,
:mod:`repro.service.sharded`) run the paper's tuning algorithm against
in-process callers; this package puts a socket in front of them so the
same service can be driven from other processes and other machines --
the first step of the multi-process scale-out
(:mod:`repro.service.workers`).

* :mod:`repro.net.protocol` -- the length-prefixed binary wire format:
  framing, request/response encoding, and the closed error-code
  vocabulary that maps service exceptions across the wire.
* :mod:`repro.net.server` -- an asyncio socket server speaking the
  protocol in front of any lock-service-shaped backend, with request
  pipelining (many requests in flight per connection, responses
  matched by request id).
* :mod:`repro.net.client` -- the client library: a pooled, pipelined
  sync facade (drop-in for the surface :class:`LoadDriver` drives) plus
  an asyncio client used by the worker-pool router.
"""

from repro.net.protocol import (
    FrameDecoder,
    FrameTooLargeError,
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
)

__all__ = [
    "FrameDecoder",
    "FrameTooLargeError",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
]
