"""Asyncio socket server fronting a lock service.

One :class:`LockServer` owns a private event loop (in a dedicated
thread, like :class:`~repro.service.ops.OpsServer` owns its HTTP serve
loop) and speaks :mod:`repro.net.protocol` on every accepted
connection.  Requests are **pipelined**: each decoded frame becomes an
independent unit of work and responses are written in completion
order, matched by request id -- a connection blocked on a contended
lock does not stall the uncontended traffic behind it.

The split between the event loop and the executor is the load-bearing
decision on a box where the GIL makes threads expensive: grants that
cannot block (``lock_row_uncontended``) are executed *inline* on the
loop thread -- one mutex acquire, no handoff -- and only requests that
may genuinely park (contended locks, table locks, batches) are pushed
to the thread pool.  Under the churn workload the overwhelming
majority of requests takes the inline path, which is what keeps the
socket hop within the same order of magnitude as in-process calls.

Session lifecycle is connection-bound: sessions opened (or adopted)
over a connection are force-closed when that connection drops, so a
killed client never leaks lock-list slots on the server.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import logging
import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Set, Tuple

from repro.net import protocol as wire
from repro.service.service import _USE_DEFAULT

logger = logging.getLogger(__name__)


def _json_safe(value: Any) -> Any:
    """JSON fallback for stats payloads (sets, enums, odd scalars)."""
    if isinstance(value, (set, frozenset)):
        return sorted(value, key=repr)
    if hasattr(value, "value"):
        return value.value
    return repr(value)


class ServiceBackend:
    """Adapts a lock-service-shaped object to the wire operations.

    Works against :class:`~repro.service.service.LockService`,
    :class:`~repro.service.sharded.ShardedLockService`, or anything
    duck-typing their session/lock surface.  ``try_fast`` exposes the
    non-blocking grant attempt when the service has one.
    """

    def __init__(
        self,
        service: Any,
        *,
        name: str = "service",
        tracer: Any = None,
        incidents: Any = None,
    ) -> None:
        self.service = service
        self.name = name
        self._uncontended = getattr(service, "lock_row_uncontended", None)
        #: Optional :class:`repro.obs.tracing.ServerTracer` -- when set,
        #: requests carrying a sampled trace context take the timed
        #: dispatch path and their OK replies carry a hop report.
        self.tracer = tracer
        #: Optional :class:`repro.obs.incidents.IncidentRecorder` --
        #: traced executions register their trace id so incidents
        #: raised while they run (deadlock victim, escalation) are
        #: stamped with it.  Falls back to the service's own recorder.
        self._incidents = incidents
        if self._incidents is None:
            manager = getattr(service, "manager", None)
            self._incidents = getattr(manager, "incidents", None)

    #: Ops that only ever take the service mutex for microseconds --
    #: they run inline on the event loop thread.  Everything else can
    #: park a thread on a contended lock and goes to the executor.
    NONPARKING_OPS = frozenset(
        {
            wire.OP_OPEN_SESSION,
            wire.OP_CLOSE_SESSION,
            wire.OP_UNLOCK_READ,
            wire.OP_RELEASE_ALL,
            wire.OP_ADOPT_SESSION,
            wire.OP_CANCEL,
            wire.OP_STATS,
            wire.OP_PING,
        }
    )

    # -- non-blocking (safe on the event loop thread) --

    def is_nonparking(self, req: wire.Request) -> bool:
        return req.op in self.NONPARKING_OPS

    def try_fast(self, req: wire.Request) -> bool:
        """Attempt an immediate grant; False means "use the slow path"."""
        if self._uncontended is None or req.op != wire.OP_LOCK_ROW:
            return False
        return self._uncontended(
            req.app_id, req.table_id, req.row_id, req.lock_mode
        )

    def fast_lock_row(
        self, app_id: int, table_id: int, row_id: int, mode: int
    ) -> bool:
        """:meth:`try_fast` without the Request object (hot path)."""
        if self._uncontended is None:
            return False
        return self._uncontended(
            app_id, table_id, row_id, wire.WIRE_TO_MODE[mode]
        )

    # -- potentially blocking (executor only) --

    @staticmethod
    def _timeout_of(req: wire.Request) -> object:
        """Wire timeout -> service convention (negative = unbounded)."""
        if not req.has_timeout:
            return _USE_DEFAULT
        assert req.timeout_s is not None
        return None if req.timeout_s < 0 else req.timeout_s

    def execute(self, req: wire.Request) -> Tuple[int, bytes]:
        """Run ``req`` to completion; returns (value, data) for RESP_OK."""
        svc = self.service
        op = req.op
        if op == wire.OP_LOCK_ROW:
            svc.lock_row(
                req.app_id,
                req.table_id,
                req.row_id,
                req.lock_mode,
                timeout_s=self._timeout_of(req),
            )
            return 1, b""
        if op == wire.OP_BATCH_LOCK:
            timeout = self._timeout_of(req)
            granted = 0
            for table_id, row_id, mode in req.accesses:
                svc.lock_row(
                    req.app_id,
                    table_id,
                    row_id,
                    wire.WIRE_TO_MODE[mode],
                    timeout_s=timeout,
                )
                granted += 1
            return granted, b""
        if op == wire.OP_LOCK_TABLE:
            svc.lock_table(
                req.app_id,
                req.table_id,
                req.lock_mode,
                timeout_s=self._timeout_of(req),
            )
            return 1, b""
        if op == wire.OP_UNLOCK_READ:
            released = svc.release_read_lock(
                req.app_id, req.table_id, req.row_id
            )
            return int(released), b""
        if op == wire.OP_RELEASE_ALL:
            return svc.rollback(req.app_id), b""
        if op == wire.OP_OPEN_SESSION:
            return svc.open_session(), b""
        if op == wire.OP_CLOSE_SESSION:
            return svc.close_session(req.app_id), b""
        if op == wire.OP_ADOPT_SESSION:
            adopt = getattr(svc, "adopt_session", None)
            if adopt is None:
                raise wire.ProtocolError(
                    f"{self.name} does not support session adoption"
                )
            adopt(req.app_id)
            return 0, b""
        if op == wire.OP_CANCEL:
            return int(svc.cancel(req.app_id)), b""
        if op == wire.OP_STATS:
            return 0, json.dumps(
                self.stats_payload(), default=_json_safe
            ).encode("utf-8")
        if op == wire.OP_PING:
            return 0, b""
        raise wire.ProtocolError(f"unknown request op 0x{op:02x}")

    def execute_traced(self, req: wire.Request) -> Tuple[int, bytes]:
        """:meth:`execute` with the trace id registered for incidents.

        While the request runs, any incident recorded against its app
        (deadlock victimhood, an escalation it triggered) carries
        ``trace_id`` in its data, linking the incident to the exact
        traced request it hurt.
        """
        incidents = self._incidents
        if incidents is None:
            return self.execute(req)
        trace_ids = getattr(incidents, "trace_ids", None)
        if trace_ids is None:
            return self.execute(req)
        trace_ids[req.app_id] = req.trace_id
        try:
            return self.execute(req)
        finally:
            trace_ids.pop(req.app_id, None)

    def stats_payload(self) -> Dict[str, Any]:
        svc = self.service
        sessions = svc.session_count
        waiting = svc.waiting_sessions
        payload: Dict[str, Any] = {
            "name": self.name,
            "sessions": sessions() if callable(sessions) else sessions,
            "waiting": waiting() if callable(waiting) else waiting,
        }
        agg = getattr(svc, "aggregate_stats", None)
        service_stats = agg() if agg is not None else svc.stats
        payload["service"] = dataclasses.asdict(service_stats)
        mgr = getattr(svc, "manager_stats", None)
        if mgr is not None:
            payload["manager"] = dataclasses.asdict(mgr())
        else:
            payload["manager"] = dataclasses.asdict(svc.manager.stats)
        return payload

    def cleanup_session(self, app_id: int) -> None:
        """Force-release a disconnected client's session."""
        try:
            self.service.cancel(app_id, message="connection lost")
        except Exception:
            pass
        try:
            self.service.close_session(app_id)
        except Exception:
            logger.debug(
                "%s: cleanup of session %d failed", self.name, app_id,
                exc_info=True,
            )


class _Connection(asyncio.Protocol):
    """One client connection: frame reassembly + request dispatch."""

    def __init__(self, server: "LockServer") -> None:
        self._server = server
        self._backend = server.backend
        self._decoder = wire.FrameDecoder()
        self._transport: Optional[asyncio.Transport] = None
        #: Sessions this connection owns (opened or adopted here); they
        #: are force-closed if the connection drops.
        self._sessions: Set[int] = set()
        self._closing = False

    # -- asyncio.Protocol --

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self._transport = transport  # type: ignore[assignment]
        self._server._connections.add(self)

    def connection_lost(self, exc: Optional[Exception]) -> None:
        self._server._connections.discard(self)
        if self._sessions and not self._server._stopping:
            orphans = list(self._sessions)
            self._sessions.clear()
            self._server._executor.submit(self._cleanup, orphans)

    def data_received(self, data: bytes) -> None:
        try:
            payloads = wire.split_frames(data, self._decoder)
        except wire.ProtocolError as exc:
            # The stream is unrecoverable (we cannot resynchronise on
            # frame boundaries): report once on the reserved id 0, then
            # hang up.
            self._send(wire.encode_error(0, exc))
            self._closing = True
            assert self._transport is not None
            self._transport.close()
            return
        for payload in payloads:
            self._dispatch(payload)

    # -- dispatch --

    def _dispatch(self, payload: bytes) -> None:
        try:
            req = wire.decode_request(payload)
        except wire.ProtocolError as exc:
            # The frame boundary held, so the connection survives; the
            # offending request id (if parseable) gets the error.
            try:
                request_id = wire.peek_request_id(payload)
            except wire.ProtocolError:
                request_id = 0
            self._send(wire.encode_error(request_id, exc))
            return
        # Inline paths: the executor handoff costs two context switches
        # -- more than most requests' entire service time on one core --
        # so anything that cannot park runs right here on the loop
        # thread: non-parking ops outright, and contended-capable row
        # locks via the mutate-nothing immediate-grant attempt.
        try:
            if self._backend.try_fast(req):
                self._record(req)
                self._send(wire.encode_ok(req.request_id, 1))
                return
            if self._backend.is_nonparking(req):
                value, data = self._backend.execute(req)
                self._record(req, value)
                if not req.no_reply:
                    self._send(wire.encode_ok(req.request_id, value, data))
                return
        except Exception as exc:
            if not req.no_reply:
                self._send(wire.encode_error(req.request_id, exc))
            return
        future = self._server._loop.run_in_executor(
            self._server._executor, self._backend.execute, req
        )
        future.add_done_callback(
            lambda fut, req=req: self._complete(req, fut)
        )

    def _complete(self, req: wire.Request, fut: "asyncio.Future") -> None:
        if self._transport is None or self._transport.is_closing():
            fut.exception()  # consume; the requester is gone
            return
        exc = fut.exception()
        if exc is not None:
            if not req.no_reply:
                self._send(wire.encode_error(req.request_id, exc))
            return
        value, data = fut.result()
        self._record(req, value)
        if not req.no_reply:
            self._send(wire.encode_ok(req.request_id, value, data))

    def _record(self, req: wire.Request, value: int = 0) -> None:
        """Track connection-owned sessions for disconnect cleanup."""
        op = req.op
        if op == wire.OP_OPEN_SESSION:
            self._sessions.add(value)
        elif op == wire.OP_ADOPT_SESSION:
            self._sessions.add(req.app_id)
        elif op == wire.OP_CLOSE_SESSION:
            self._sessions.discard(req.app_id)

    def _send(self, payload: bytes) -> None:
        if self._transport is not None and not self._transport.is_closing():
            self._server._observe_response(payload)
            self._transport.write(wire.encode_frame(payload))

    def _cleanup(self, orphans: list) -> None:
        for app_id in orphans:
            self._backend.cleanup_session(app_id)


class LockServer:
    """The socket front end: event loop thread + worker executor.

    ``start()`` binds and returns the live ``(host, port)`` (port 0
    picks an ephemeral one -- how worker processes report their
    listening port back to the router).  ``stop()`` is idempotent and
    leaves the backend service untouched: closing the service is its
    owner's job, the server only stops speaking for it.
    """

    def __init__(
        self,
        backend: ServiceBackend,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        executor_threads: int = 16,
        metrics: Any = None,
        metric_labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.backend = backend
        self.host = host
        self.port = port
        self._loop = asyncio.new_event_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads,
            thread_name_prefix=f"net-{backend.name}",
        )
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[_Connection] = set()
        self._stopping = False
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._responses = 0
        self._response_counter = None
        if metrics is not None:
            self._response_counter = metrics.counter(
                "net.responses", labels=metric_labels
            )

    # -- lifecycle --

    def start(self) -> Tuple[str, int]:
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run, name=f"lockserver-{self.backend.name}",
            daemon=True,
        )
        self._thread.start()
        self._started.wait()
        if self._start_error is not None:
            self._thread.join()
            raise self._start_error
        return self.host, self.port

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            coro = self._loop.create_server(
                lambda: _Connection(self), self.host, self.port
            )
            self._server = self._loop.run_until_complete(coro)
            sock = self._server.sockets[0]
            self.host, self.port = sock.getsockname()[:2]
        except BaseException as exc:  # bind failure and friends
            self._start_error = exc
            self._started.set()
            self._loop.close()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._drain()
            self._loop.close()

    def _drain(self) -> None:
        if self._server is not None:
            self._server.close()
            self._loop.run_until_complete(self._server.wait_closed())
        for conn in list(self._connections):
            if conn._transport is not None:
                conn._transport.close()
        # Flush transport close callbacks.
        self._loop.run_until_complete(asyncio.sleep(0))

    def stop(self) -> None:
        if self._thread is None or self._stopping:
            return
        self._stopping = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._executor.shutdown(wait=True)

    # -- observability --

    def _observe_response(self, payload: bytes) -> None:
        self._responses += 1
        if self._response_counter is not None:
            self._response_counter.inc()

    @property
    def responses_written(self) -> int:
        return self._responses

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    def __enter__(self) -> "LockServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class _ThreadedConnection:
    """One connection of :class:`ThreadedLockServer` (own reader thread).

    The reader thread *is* the fast path: it decodes a frame and --
    for immediate grants and non-parking ops -- executes and replies
    without leaving the thread, so an uncontended lock costs one
    client->server and one server->client context switch, nothing
    else.  Only requests that can park are handed to the shared
    executor; their replies are written out of order under the send
    lock, which is what keeps pipelining intact.
    """

    def __init__(
        self, server: "ThreadedLockServer", sock: socket.socket
    ) -> None:
        self._server = server
        self._backend = server.backend
        self._sock = sock
        self._send_lock = threading.Lock()
        self._sessions: Set[int] = set()
        self._closed = False
        self._thread = threading.Thread(
            target=self._read_loop,
            name=f"netconn-{server.backend.name}",
            daemon=True,
        )

    def start(self) -> None:
        self._thread.start()

    def _read_loop(self) -> None:
        decoder = wire.FrameDecoder()
        sock = self._sock
        recv = sock.recv
        split_frames = wire.split_frames
        try_parse_lock_row = wire.try_parse_lock_row
        pack_ok_frame = wire.pack_ok_frame
        fast_lock_row = self._backend.fast_lock_row
        send = self._send
        try:
            while True:
                data = recv(65536)
                if not data:
                    break
                for payload in split_frames(data, decoder):
                    # Hot path inline: plain LOCK_ROW, immediate grant.
                    parsed = try_parse_lock_row(payload)
                    if parsed is not None:
                        rid, app, table, row, mode, _timeout = parsed
                        try:
                            if fast_lock_row(app, table, row, mode):
                                send(pack_ok_frame(rid, 1))
                                continue
                        except Exception as exc:
                            self._send_payload(wire.encode_error(rid, exc))
                            continue
                    self._dispatch(payload)
        except wire.ProtocolError as exc:
            self._send_payload(wire.encode_error(0, exc))
        except OSError:
            pass
        finally:
            self._shutdown()

    def _dispatch(self, payload: bytes) -> None:
        # The disabled-overhead contract: with no tracer configured this
        # costs exactly one None check before the untraced flow.
        tracer = self._backend.tracer
        t0 = time.perf_counter() if tracer is not None else 0.0
        try:
            req = wire.decode_request(payload)
        except wire.ProtocolError as exc:
            try:
                request_id = wire.peek_request_id(payload)
            except wire.ProtocolError:
                request_id = 0
            self._send_payload(wire.encode_error(request_id, exc))
            return
        if tracer is not None and req.trace_sampled:
            self._dispatch_traced(req, t0)
            return
        try:
            if self._backend.try_fast(req):
                self._send(wire.pack_ok_frame(req.request_id, 1))
                return
            if self._backend.is_nonparking(req):
                value, data = self._backend.execute(req)
                self._record(req, value)
                if not req.no_reply:
                    self._send_payload(
                        wire.encode_ok(req.request_id, value, data)
                    )
                return
        except Exception as exc:
            if not req.no_reply:
                self._send_payload(wire.encode_error(req.request_id, exc))
            return
        self._server.executor.submit(self._run_parking, req)

    def _dispatch_traced(self, req: wire.Request, t0: float) -> None:
        """The traced twin of :meth:`_dispatch`: same scheduling
        decisions (inline immediate grant / inline non-parking /
        executor handoff), with the hop clock running.  ``t0`` is the
        frame's arrival at dispatch; everything up to execution start
        is the ``server.dispatch`` hop.
        """
        perf = time.perf_counter
        backend = self._backend
        try:
            t_exec = perf()
            if backend.try_fast(req):
                t_done = perf()
                self._finish_traced(
                    req, 1, t_exec - t0, t_done - t_exec, 0.0, t_done
                )
                return
            if backend.is_nonparking(req):
                t_svc = perf()
                value, _data = backend.execute_traced(req)
                t_done = perf()
                self._record(req, value)
                self._finish_traced(
                    req, value, t_svc - t0, t_done - t_svc, 0.0, t_done
                )
                return
        except Exception as exc:
            self._fail_traced(req, exc, t0)
            return
        self._server.executor.submit(self._run_parking, req, t0, perf())

    def _run_parking(
        self,
        req: wire.Request,
        trace_t0: Optional[float] = None,
        t_submit: Optional[float] = None,
    ) -> None:
        if trace_t0 is not None:
            assert t_submit is not None
            perf = time.perf_counter
            t_start = perf()
            try:
                value, _data = self._backend.execute_traced(req)
            except Exception as exc:
                self._fail_traced(req, exc, trace_t0)
                return
            t_svc_end = perf()
            self._finish_traced(
                req,
                value,
                t_submit - trace_t0,
                t_svc_end - t_start,
                t_start - t_submit,
                t_svc_end,
            )
            return
        try:
            value, data = self._backend.execute(req)
        except Exception as exc:
            if not req.no_reply:
                self._send_payload(wire.encode_error(req.request_id, exc))
            return
        if not req.no_reply:
            self._send_payload(wire.encode_ok(req.request_id, value, data))

    def _finish_traced(
        self,
        req: wire.Request,
        value: int,
        dispatch_s: float,
        lock_wait_s: float,
        park_s: float,
        t_svc_end: float,
    ) -> None:
        """Record the server child span and reply with the hop report.

        ``server.reply_encode`` is measured service-completion to
        reply-assembly start; the final byte pack itself (~us) lands in
        the client's ``client.net_wait`` hop, which is derived by
        subtraction and absorbs whatever the report cannot carry.
        """
        reply_s = time.perf_counter() - t_svc_end
        self._backend.tracer.record(
            req.trace_id,
            req.trace_span + 1,
            {
                "server.dispatch": dispatch_s,
                "server.lock_wait": lock_wait_s,
                "server.executor_park": park_s,
                "server.reply_encode": reply_s,
            },
            app_id=req.app_id,
            outcome="ok",
        )
        if not req.no_reply:
            report = wire.pack_hop_report(
                dispatch_s, lock_wait_s, park_s, reply_s
            )
            self._send_payload(wire.encode_ok(req.request_id, value, report))

    def _fail_traced(
        self, req: wire.Request, exc: Exception, t0: float
    ) -> None:
        self._backend.tracer.record(
            req.trace_id,
            req.trace_span + 1,
            {"server.dispatch": time.perf_counter() - t0},
            app_id=req.app_id,
            outcome=type(exc).__name__,
        )
        if not req.no_reply:
            self._send_payload(wire.encode_error(req.request_id, exc))

    def _record(self, req: wire.Request, value: int) -> None:
        op = req.op
        if op == wire.OP_OPEN_SESSION:
            self._sessions.add(value)
        elif op == wire.OP_ADOPT_SESSION:
            self._sessions.add(req.app_id)
        elif op == wire.OP_CLOSE_SESSION:
            self._sessions.discard(req.app_id)

    def _send(self, frame: bytes) -> None:
        try:
            with self._send_lock:
                self._sock.sendall(frame)
            self._server._observe_response()
        except OSError:
            pass  # reader sees the dead socket and cleans up

    def _send_payload(self, payload: bytes) -> None:
        self._send(wire.encode_frame(payload))

    def _shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._server._connections.discard(self)
        with contextlib.suppress(OSError):
            self._sock.close()
        if self._sessions and not self._server._stopping:
            orphans = list(self._sessions)
            self._sessions.clear()
            for app_id in orphans:
                self._backend.cleanup_session(app_id)

    def close(self) -> None:
        with contextlib.suppress(OSError):
            self._sock.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._sock.close()


class ThreadedLockServer:
    """Thread-per-connection variant of :class:`LockServer`.

    Same protocol, same backend, same pipelining semantics -- different
    scheduling: each connection gets a dedicated reader thread instead
    of sharing an epoll loop.  On a single core the epoll dispatch in
    asyncio costs ~25-30us per round trip over a plain blocking recv,
    which is more than an uncontended lock request's entire service
    time; since the data plane serves a handful of long-lived
    connections (not thousands), threads win decisively there.  The
    asyncio :class:`LockServer` remains the right front end for the
    worker-pool router, which multiplexes many client connections onto
    per-worker links.
    """

    def __init__(
        self,
        backend: ServiceBackend,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        path: Optional[str] = None,
        executor_threads: int = 16,
        metrics: Any = None,
        metric_labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.backend = backend
        self.host = host
        self.port = port
        #: Unix-domain socket path; when set it replaces host/port and
        #: ``address`` reports ``("unix:<path>", 0)`` so clients can be
        #: built with ``NetClientStack(*server.address)`` either way.
        self.path = path
        self.executor = ThreadPoolExecutor(
            max_workers=executor_threads,
            thread_name_prefix=f"net-{backend.name}",
        )
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: Set[_ThreadedConnection] = set()
        self._conn_lock = threading.Lock()
        self._stopping = False
        self._responses = 0
        self._response_counter = None
        if metrics is not None:
            self._response_counter = metrics.counter(
                "net.responses", labels=metric_labels
            )

    def start(self) -> Tuple[str, int]:
        if self._listener is not None:
            raise RuntimeError("server already started")
        if self.path is not None:
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            with contextlib.suppress(OSError):
                os.unlink(self.path)  # stale socket from a dead server
            listener.bind(self.path)
            self.host, self.port = f"unix:{self.path}", 0
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
        listener.listen(64)
        self._listener = listener
        if self.path is None:
            self.host, self.port = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"lockserver-{self.backend.name}",
            daemon=True,
        )
        self._accept_thread.start()
        return self.host, self.port

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: stop()
            if self._stopping:
                with contextlib.suppress(OSError):
                    sock.close()
                return
            if self.path is None:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _ThreadedConnection(self, sock)
            with self._conn_lock:
                if self._stopping:
                    conn.close()
                    continue
                self._connections.add(conn)
            conn.start()

    def stop(self) -> None:
        if self._listener is None or self._stopping:
            return
        self._stopping = True
        # Closing a listening socket does not wake a thread parked in
        # accept() on Linux; poke it with a throwaway connection so the
        # accept loop observes the stop flag immediately.
        with contextlib.suppress(OSError):
            if self.path is not None:
                poke = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                poke.settimeout(1.0)
                poke.connect(self.path)
                poke.close()
            else:
                poke_host = (
                    "127.0.0.1" if self.host == "0.0.0.0" else self.host
                )
                socket.create_connection(
                    (poke_host, self.port), timeout=1.0
                ).close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        with contextlib.suppress(OSError):
            self._listener.close()
        if self.path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.path)
        with self._conn_lock:
            conns = list(self._connections)
        for conn in conns:
            conn.close()
        self.executor.shutdown(wait=True)

    def _observe_response(self) -> None:
        self._responses += 1
        if self._response_counter is not None:
            self._response_counter.inc()

    @property
    def responses_written(self) -> int:
        return self._responses

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    def __enter__(self) -> "ThreadedLockServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve_service(
    service: Any,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    path: Optional[str] = None,
    executor_threads: int = 16,
    name: str = "service",
    kind: str = "threaded",
    metrics: Any = None,
    metric_labels: Optional[Dict[str, str]] = None,
) -> "LockServer | ThreadedLockServer":
    """Build and start a lock server for ``service``.

    ``kind="threaded"`` (default) serves the data plane with blocking
    per-connection reader threads; ``kind="asyncio"`` uses the event-
    loop server (the router's front end).  ``path`` selects a Unix-
    domain socket (threaded kind only) for same-box deployments.
    """
    if path is not None and kind != "threaded":
        raise ValueError("unix-domain serving requires kind='threaded'")
    if kind == "threaded":
        server: "LockServer | ThreadedLockServer" = ThreadedLockServer(
            ServiceBackend(service, name=name),
            host=host,
            port=port,
            path=path,
            executor_threads=executor_threads,
            metrics=metrics,
            metric_labels=metric_labels,
        )
    else:
        server = LockServer(
            ServiceBackend(service, name=name),
            host=host,
            port=port,
            executor_threads=executor_threads,
            metrics=metrics,
            metric_labels=metric_labels,
        )
    server.start()
    return server


__all__ = [
    "LockServer",
    "ServiceBackend",
    "ThreadedLockServer",
    "serve_service",
]
