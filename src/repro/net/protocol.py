"""The lock-service wire protocol: framing + message codec.

Every message -- request or response, client-to-server or
router-to-worker -- is one **frame**::

    +----------------+----------------------------------------+
    | length (u32 BE)| payload (length bytes)                 |
    +----------------+----------------------------------------+

and every payload starts with the same fixed header::

    +---------------+---------------+------------------------+
    | msg type (u8) | flags (u8)    | request id (u64 BE)    |
    +---------------+---------------+------------------------+

followed by an operation-specific body.  The request id is chosen by
the sender and echoed verbatim in the response, which is what makes
**pipelining** work: a connection may have any number of requests in
flight, responses come back in completion order, and each side matches
them by id.  The router additionally exploits the fixed header layout
to splice its own ids into relayed frames without re-encoding bodies
(:func:`rewrite_request_id`).

Numbers are big-endian (network order) throughout.  Frames are bounded
by :data:`MAX_FRAME_BYTES`; a peer announcing a larger frame is
protocol-broken (or hostile) and the connection is torn down with a
clean :class:`FrameTooLargeError` rather than an attempt to buffer it.

The error vocabulary is closed: a failed operation travels as
``RESP_ERR`` carrying one of the :data:`ERROR_CODES` plus the message
text, and :func:`exception_for` rebuilds the *same* exception class on
the client side -- so ``except DeadlockError:`` in the load driver
works identically against a socket and against an in-process stack.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Type

from repro.errors import (
    AdmissionRejectedError,
    AdmissionTimeoutError,
    DeadlockError,
    ReproError,
    RequestCancelledError,
    ServiceClosedError,
    ServiceError,
)
from repro.lockmgr.manager import LockListFullError, LockTimeoutError
from repro.lockmgr.modes import LockMode

#: Stable wire ordinals for lock modes (declaration order; the mode
#: byte on the wire is this ordinal, never the enum's string value).
MODE_TO_WIRE: Dict[LockMode, int] = {
    mode: i for i, mode in enumerate(LockMode)
}
WIRE_TO_MODE: Dict[int, LockMode] = {
    i: mode for mode, i in MODE_TO_WIRE.items()
}


def wire_mode(mode: "LockMode | int") -> int:
    """The u8 wire value for ``mode`` (idempotent on ints)."""
    if isinstance(mode, int):
        return mode
    return MODE_TO_WIRE[mode]


class ProtocolError(ServiceError):
    """The peer sent bytes that do not parse as the wire protocol."""


class FrameTooLargeError(ProtocolError):
    """A length prefix announced a frame beyond MAX_FRAME_BYTES."""


class ConnectionLostError(ServiceError):
    """The transport died with requests still in flight."""


#: Hard bound on one frame's payload.  Far above any legitimate message
#: (the largest is a batch-lock of a few thousand accesses) and far
#: below anything that could pressure memory.
MAX_FRAME_BYTES = 1 << 20

_LEN = struct.Struct("!I")
_HEADER = struct.Struct("!BBQ")
HEADER_BYTES = _HEADER.size

# -- message types ----------------------------------------------------------

OP_OPEN_SESSION = 0x01
OP_CLOSE_SESSION = 0x02
OP_LOCK_ROW = 0x03
OP_LOCK_TABLE = 0x04
OP_BATCH_LOCK = 0x05
OP_UNLOCK_READ = 0x06  # cursor-stability early release
OP_RELEASE_ALL = 0x07  # rollback: release everything, keep the session
OP_ADOPT_SESSION = 0x08  # router -> worker: register an external app id
OP_CANCEL = 0x09  # withdraw a pending wait (best-effort)
OP_STATS = 0x0A
OP_PING = 0x0B

RESP_OK = 0x80
RESP_ERR = 0x81

REQUEST_NAMES = {
    OP_OPEN_SESSION: "open_session",
    OP_CLOSE_SESSION: "close_session",
    OP_LOCK_ROW: "lock_row",
    OP_LOCK_TABLE: "lock_table",
    OP_BATCH_LOCK: "batch_lock",
    OP_UNLOCK_READ: "unlock_read",
    OP_RELEASE_ALL: "release_all",
    OP_ADOPT_SESSION: "adopt_session",
    OP_CANCEL: "cancel",
    OP_STATS: "stats",
    OP_PING: "ping",
}

#: flags bit 0: the request carries an explicit timeout (f64 seconds
#: follows the fixed body); unset means "use the server default".
FLAG_HAS_TIMEOUT = 0x01
#: flags bit 1: fire-and-forget -- the server executes the request but
#: sends no response frame (success or failure).  Only meaningful for
#: ops whose result the caller can discard (session close, rollback):
#: the TCP stream still orders the op before everything the client
#: sends next, so "close then open" semantics are preserved without
#: paying a round trip.
FLAG_NO_REPLY = 0x02
#: flags bit 2: the frame carries a trailing 17-byte trace context
#: (trace id u64, span id u64, sampled u8) -- the distributed-tracing
#: extension (see :mod:`repro.obs.tracing`).  The tail sits at the very
#: end of the frame, *after* any timeout tail, and is stripped first
#: during decode.  Because the codec enforces exact body sizes, a peer
#: that predates this flag rejects traced frames cleanly instead of
#: misparsing them -- so the extension is **capability-gated**: a
#: client only attaches trace context when explicitly configured with a
#: tracer (both ends of an in-repo deployment speak the same version),
#: and untraced frames remain byte-identical to the pre-extension
#: format.
FLAG_TRACE = 0x04

#: The trace-context tail: trace id, span id, sampled.
_TRACE_CTX = struct.Struct("!QQB")
TRACE_CTX_BYTES = _TRACE_CTX.size

# -- the closed error-code vocabulary ---------------------------------------

ERROR_CODES: Dict[int, Type[ReproError]] = {
    1: ServiceError,
    2: ServiceClosedError,
    3: RequestCancelledError,
    4: DeadlockError,
    5: LockTimeoutError,
    6: LockListFullError,
    7: AdmissionRejectedError,
    8: AdmissionTimeoutError,
    9: ProtocolError,
}
_CODE_FOR: Dict[Type[ReproError], int] = {
    cls: code for code, cls in ERROR_CODES.items()
}


def code_for_exception(exc: BaseException) -> int:
    """The wire code for ``exc``: the *nearest* registered class.

    Walks the MRO so a subclass maps to its most specific registered
    base (FrameTooLargeError travels as ProtocolError, not as the
    ServiceError it also inherits from).
    """
    for cls in type(exc).__mro__:
        code = _CODE_FOR.get(cls)
        if code is not None:
            return code
    return 1  # generic ServiceError


def exception_for(code: int, message: str) -> ReproError:
    """Rebuild the client-side exception for a RESP_ERR frame."""
    cls = ERROR_CODES.get(code, ServiceError)
    if cls is AdmissionRejectedError:
        return AdmissionRejectedError(message, retry_after_s=0.05)
    return cls(message)


# -- framing ----------------------------------------------------------------


def encode_frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its big-endian u32 length."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return _LEN.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    Feed it whatever the socket produced -- single bytes, torn length
    prefixes, many frames at once -- and iterate complete payloads.
    The decoder never buffers beyond one frame plus unread input, and
    rejects oversized announcements *before* buffering the body.
    """

    __slots__ = ("_buffer", "_need")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._need: Optional[int] = None  # body length once prefix is read

    def feed(self, data: bytes) -> List[bytes]:
        """Append ``data``; return every frame payload now complete."""
        self._buffer.extend(data)
        out: List[bytes] = []
        while True:
            if self._need is None:
                if len(self._buffer) < _LEN.size:
                    return out
                (length,) = _LEN.unpack_from(self._buffer)
                if length > MAX_FRAME_BYTES:
                    raise FrameTooLargeError(
                        f"peer announced a {length}-byte frame "
                        f"(limit {MAX_FRAME_BYTES})"
                    )
                del self._buffer[: _LEN.size]
                self._need = length
            if len(self._buffer) < self._need:
                return out
            out.append(bytes(self._buffer[: self._need]))
            del self._buffer[: self._need]
            self._need = None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next (incomplete) frame."""
        return len(self._buffer)


def split_frames(data: bytes, decoder: FrameDecoder) -> List[bytes]:
    """Frame payloads in ``data``, skipping the decoder when possible.

    When ``decoder`` holds no partial frame -- the overwhelmingly
    common case for request/response traffic -- complete frames are
    sliced straight out of ``data`` with no bytearray copies; only a
    trailing partial frame (or a pre-existing one) goes through the
    incremental decoder.  Semantically identical to
    ``decoder.feed(data)``, including the oversize rejection.
    """
    if decoder.pending_bytes:
        return decoder.feed(data)
    out: List[bytes] = []
    offset = 0
    total = len(data)
    while total - offset >= _LEN.size:
        (length,) = _LEN.unpack_from(data, offset)
        if length > MAX_FRAME_BYTES:
            raise FrameTooLargeError(
                f"peer announced a {length}-byte frame "
                f"(limit {MAX_FRAME_BYTES})"
            )
        end = offset + _LEN.size + length
        if end > total:
            break
        out.append(data[offset + _LEN.size : end])
        offset = end
    if offset < total:
        decoder.feed(data[offset:])
    return out


# -- requests ---------------------------------------------------------------


@dataclass
class Request:
    """One decoded request payload."""

    op: int
    request_id: int
    app_id: int = 0
    table_id: int = 0
    row_id: int = 0
    mode: int = 0
    timeout_s: Optional[float] = None
    has_timeout: bool = False
    no_reply: bool = False
    #: BATCH_LOCK only: (table_id, row_id, mode) triples, in order.
    accesses: List[Tuple[int, int, int]] = field(default_factory=list)
    message: str = ""
    #: FLAG_TRACE extension: propagated trace context (0 = untraced).
    trace_id: int = 0
    trace_span: int = 0
    trace_sampled: bool = False

    @property
    def lock_mode(self) -> LockMode:
        try:
            return WIRE_TO_MODE[self.mode]
        except KeyError:
            raise ProtocolError(f"unknown lock mode byte {self.mode}")


_BODY_SESSION = struct.Struct("!Q")  # app_id
_BODY_LOCK_ROW = struct.Struct("!QqqB")  # app, table, row, mode
_BODY_LOCK_TABLE = struct.Struct("!QqB")  # app, table, mode
_BODY_BATCH_HEAD = struct.Struct("!QI")  # app, access count
_BODY_ACCESS = struct.Struct("!qqB")  # table, row, mode
_BODY_UNLOCK = struct.Struct("!Qqq")  # app, table, row
_TIMEOUT = struct.Struct("!d")

#: Batches larger than this are rejected before execution; combined
#: with MAX_FRAME_BYTES it bounds per-request server work.
MAX_BATCH_ACCESSES = 4096


def _header(op: int, request_id: int, flags: int = 0) -> bytes:
    return _HEADER.pack(op, flags, request_id)


def _timeout_tail(timeout_s: Optional[float]) -> Tuple[int, bytes]:
    if timeout_s is None:
        return 0, b""
    return FLAG_HAS_TIMEOUT, _TIMEOUT.pack(timeout_s)


def _trace_tail(
    trace: Optional[Tuple[int, int, bool]]
) -> Tuple[int, bytes]:
    """Flag bit + packed tail for a ``(trace_id, span_id, sampled)``."""
    if trace is None:
        return 0, b""
    trace_id, span_id, sampled = trace
    return FLAG_TRACE, _TRACE_CTX.pack(trace_id, span_id, 1 if sampled else 0)


def encode_open_session(request_id: int) -> bytes:
    return _header(OP_OPEN_SESSION, request_id)


def encode_close_session(
    request_id: int, app_id: int, *, no_reply: bool = False
) -> bytes:
    flags = FLAG_NO_REPLY if no_reply else 0
    return _header(OP_CLOSE_SESSION, request_id, flags) + _BODY_SESSION.pack(
        app_id
    )


def encode_adopt_session(request_id: int, app_id: int) -> bytes:
    return _header(OP_ADOPT_SESSION, request_id) + _BODY_SESSION.pack(app_id)


def encode_release_all(
    request_id: int, app_id: int, *, no_reply: bool = False
) -> bytes:
    flags = FLAG_NO_REPLY if no_reply else 0
    return _header(OP_RELEASE_ALL, request_id, flags) + _BODY_SESSION.pack(
        app_id
    )


def encode_cancel(request_id: int, app_id: int) -> bytes:
    return _header(OP_CANCEL, request_id) + _BODY_SESSION.pack(app_id)


def encode_lock_row(
    request_id: int,
    app_id: int,
    table_id: int,
    row_id: int,
    mode: int,
    timeout_s: Optional[float] = None,
    trace: Optional[Tuple[int, int, bool]] = None,
) -> bytes:
    flags, tail = _timeout_tail(timeout_s)
    trace_flag, trace_tail = _trace_tail(trace)
    return (
        _header(OP_LOCK_ROW, request_id, flags | trace_flag)
        + _BODY_LOCK_ROW.pack(app_id, table_id, row_id, mode)
        + tail
        + trace_tail
    )


def encode_lock_table(
    request_id: int,
    app_id: int,
    table_id: int,
    mode: int,
    timeout_s: Optional[float] = None,
) -> bytes:
    flags, tail = _timeout_tail(timeout_s)
    return (
        _header(OP_LOCK_TABLE, request_id, flags)
        + _BODY_LOCK_TABLE.pack(app_id, table_id, mode)
        + tail
    )


def encode_batch_lock(
    request_id: int,
    app_id: int,
    accesses: List[Tuple[int, int, int]],
    timeout_s: Optional[float] = None,
) -> bytes:
    if len(accesses) > MAX_BATCH_ACCESSES:
        raise ProtocolError(
            f"batch of {len(accesses)} accesses exceeds {MAX_BATCH_ACCESSES}"
        )
    flags, tail = _timeout_tail(timeout_s)
    parts = [
        _header(OP_BATCH_LOCK, request_id, flags),
        _BODY_BATCH_HEAD.pack(app_id, len(accesses)),
    ]
    parts.extend(
        _BODY_ACCESS.pack(table, row, mode) for table, row, mode in accesses
    )
    parts.append(tail)
    return b"".join(parts)


def encode_unlock_read(
    request_id: int, app_id: int, table_id: int, row_id: int
) -> bytes:
    return _header(OP_UNLOCK_READ, request_id) + _BODY_UNLOCK.pack(
        app_id, table_id, row_id
    )


def encode_stats(request_id: int) -> bytes:
    return _header(OP_STATS, request_id)


def encode_ping(request_id: int) -> bytes:
    return _header(OP_PING, request_id)


def decode_request(payload: bytes) -> Request:
    """Parse one request payload (raises :class:`ProtocolError`)."""
    if len(payload) < HEADER_BYTES:
        raise ProtocolError(
            f"request payload of {len(payload)} bytes is shorter than the "
            f"{HEADER_BYTES}-byte header"
        )
    op, flags, request_id = _HEADER.unpack_from(payload)
    body = memoryview(payload)[HEADER_BYTES:]
    req = Request(op=op, request_id=request_id)
    if flags & FLAG_NO_REPLY:
        req.no_reply = True
    if flags & FLAG_TRACE:
        # The trace tail is always the last thing in the frame; strip
        # it before the per-op parsing (which strips the timeout tail).
        if len(body) < _TRACE_CTX.size:
            raise ProtocolError("trace flag set but no trace context present")
        req.trace_id, req.trace_span, sampled = _TRACE_CTX.unpack(
            body[-_TRACE_CTX.size :]
        )
        req.trace_sampled = bool(sampled)
        body = body[: -_TRACE_CTX.size]
    try:
        if op in (OP_OPEN_SESSION, OP_STATS, OP_PING):
            _expect(body, 0)
        elif op in (
            OP_CLOSE_SESSION,
            OP_RELEASE_ALL,
            OP_ADOPT_SESSION,
            OP_CANCEL,
        ):
            _expect(body, _BODY_SESSION.size)
            (req.app_id,) = _BODY_SESSION.unpack(body)
        elif op == OP_LOCK_ROW:
            body = _split_timeout(req, flags, body)
            _expect(body, _BODY_LOCK_ROW.size)
            req.app_id, req.table_id, req.row_id, req.mode = (
                _BODY_LOCK_ROW.unpack(body)
            )
        elif op == OP_LOCK_TABLE:
            body = _split_timeout(req, flags, body)
            _expect(body, _BODY_LOCK_TABLE.size)
            req.app_id, req.table_id, req.mode = _BODY_LOCK_TABLE.unpack(body)
        elif op == OP_BATCH_LOCK:
            body = _split_timeout(req, flags, body)
            if len(body) < _BODY_BATCH_HEAD.size:
                raise ProtocolError("batch header truncated")
            req.app_id, count = _BODY_BATCH_HEAD.unpack_from(body)
            if count > MAX_BATCH_ACCESSES:
                raise ProtocolError(
                    f"batch of {count} accesses exceeds {MAX_BATCH_ACCESSES}"
                )
            rest = body[_BODY_BATCH_HEAD.size :]
            _expect(rest, count * _BODY_ACCESS.size)
            req.accesses = [
                _BODY_ACCESS.unpack_from(rest, i * _BODY_ACCESS.size)
                for i in range(count)
            ]
        elif op == OP_UNLOCK_READ:
            _expect(body, _BODY_UNLOCK.size)
            req.app_id, req.table_id, req.row_id = _BODY_UNLOCK.unpack(body)
        else:
            raise ProtocolError(f"unknown request op 0x{op:02x}")
    except struct.error as exc:
        raise ProtocolError(f"malformed {REQUEST_NAMES.get(op, op)}: {exc}")
    return req


def _split_timeout(req: Request, flags: int, body: memoryview) -> memoryview:
    """Strip the trailing f64 timeout when FLAG_HAS_TIMEOUT is set."""
    if not flags & FLAG_HAS_TIMEOUT:
        return body
    if len(body) < _TIMEOUT.size:
        raise ProtocolError("timeout flag set but no timeout value present")
    (req.timeout_s,) = _TIMEOUT.unpack(body[-_TIMEOUT.size :])
    req.has_timeout = True
    return body[: -_TIMEOUT.size]


def _expect(body: memoryview, size: int) -> None:
    if len(body) != size:
        raise ProtocolError(
            f"body is {len(body)} bytes, expected exactly {size}"
        )


# -- responses --------------------------------------------------------------


@dataclass
class Response:
    """One decoded response payload."""

    request_id: int
    ok: bool
    #: RESP_OK: operation-dependent integer result (app id for
    #: open_session, freed count for release/close, 0/1 for
    #: unlock_read, granted count for batch_lock, 0 otherwise).
    value: int = 0
    #: RESP_OK with a data payload (stats): UTF-8 JSON text.
    data: bytes = b""
    #: RESP_ERR: wire error code + message.
    error_code: int = 0
    error_message: str = ""

    def raise_if_error(self) -> None:
        if not self.ok:
            raise exception_for(self.error_code, self.error_message)


_RESP_OK_BODY = struct.Struct("!q")
_RESP_ERR_HEAD = struct.Struct("!H")


def encode_ok(request_id: int, value: int = 0, data: bytes = b"") -> bytes:
    return _header(RESP_OK, request_id) + _RESP_OK_BODY.pack(value) + data


def encode_error(request_id: int, exc: BaseException) -> bytes:
    code = code_for_exception(exc)
    message = str(exc).encode("utf-8", "replace")[:4096]
    return (
        _header(RESP_ERR, request_id) + _RESP_ERR_HEAD.pack(code) + message
    )


def decode_response(payload: bytes) -> Response:
    if len(payload) < HEADER_BYTES:
        raise ProtocolError(
            f"response payload of {len(payload)} bytes is shorter than the "
            f"{HEADER_BYTES}-byte header"
        )
    op, _flags, request_id = _HEADER.unpack_from(payload)
    body = memoryview(payload)[HEADER_BYTES:]
    if op == RESP_OK:
        if len(body) < _RESP_OK_BODY.size:
            raise ProtocolError("OK response body truncated")
        (value,) = _RESP_OK_BODY.unpack_from(body)
        return Response(
            request_id=request_id,
            ok=True,
            value=value,
            data=bytes(body[_RESP_OK_BODY.size :]),
        )
    if op == RESP_ERR:
        if len(body) < _RESP_ERR_HEAD.size:
            raise ProtocolError("error response body truncated")
        (code,) = _RESP_ERR_HEAD.unpack_from(body)
        message = bytes(body[_RESP_ERR_HEAD.size :]).decode("utf-8", "replace")
        return Response(
            request_id=request_id,
            ok=False,
            error_code=code,
            error_message=message,
        )
    raise ProtocolError(f"unknown response op 0x{op:02x}")


# -- preassembled hot-path frames -------------------------------------------
#
# The request/response codecs above parse into dataclasses -- right for
# every control-plane op, too slow for the one op that dominates every
# wire byte: LOCK_ROW and its OK.  These helpers pack a complete frame
# (length prefix included) in a single struct call each.

_LOCK_ROW_FRAME = struct.Struct("!IBBQQqqB")  # len,op,flags,rid,app,tbl,row,md
_LOCK_ROW_FRAME_T = struct.Struct("!IBBQQqqBd")  # ... + timeout
# Traced variants append the 17-byte trace context (trace id, span id,
# sampled) after the body/timeout, mirroring encode_lock_row's layout.
_LOCK_ROW_FRAME_TR = struct.Struct("!IBBQQqqBQQB")
_LOCK_ROW_FRAME_T_TR = struct.Struct("!IBBQQqqBdQQB")
_OK_FRAME = struct.Struct("!IBBQq")  # len, RESP_OK, 0, rid, value
_LOCK_ROW_BODY = _LOCK_ROW_FRAME.size - _LEN.size
_LOCK_ROW_BODY_T = _LOCK_ROW_FRAME_T.size - _LEN.size
_LOCK_ROW_BODY_TR = _LOCK_ROW_FRAME_TR.size - _LEN.size
_LOCK_ROW_BODY_T_TR = _LOCK_ROW_FRAME_T_TR.size - _LEN.size
_OK_BODY = _OK_FRAME.size - _LEN.size


def pack_lock_row_frame(
    request_id: int,
    app_id: int,
    table_id: int,
    row_id: int,
    mode: int,
    timeout_s: Optional[float] = None,
    trace: Optional[Tuple[int, int, bool]] = None,
) -> bytes:
    """One-pack equivalent of ``encode_frame(encode_lock_row(...))``."""
    if trace is None:
        if timeout_s is None:
            return _LOCK_ROW_FRAME.pack(
                _LOCK_ROW_BODY, OP_LOCK_ROW, 0, request_id,
                app_id, table_id, row_id, mode,
            )
        return _LOCK_ROW_FRAME_T.pack(
            _LOCK_ROW_BODY_T, OP_LOCK_ROW, FLAG_HAS_TIMEOUT, request_id,
            app_id, table_id, row_id, mode, timeout_s,
        )
    trace_id, span_id, sampled = trace
    if timeout_s is None:
        return _LOCK_ROW_FRAME_TR.pack(
            _LOCK_ROW_BODY_TR, OP_LOCK_ROW, FLAG_TRACE, request_id,
            app_id, table_id, row_id, mode,
            trace_id, span_id, 1 if sampled else 0,
        )
    return _LOCK_ROW_FRAME_T_TR.pack(
        _LOCK_ROW_BODY_T_TR, OP_LOCK_ROW,
        FLAG_HAS_TIMEOUT | FLAG_TRACE, request_id,
        app_id, table_id, row_id, mode, timeout_s,
        trace_id, span_id, 1 if sampled else 0,
    )


def pack_ok_frame(request_id: int, value: int = 0) -> bytes:
    """One-pack equivalent of ``encode_frame(encode_ok(...))``."""
    return _OK_FRAME.pack(_OK_BODY, RESP_OK, 0, request_id, value)


# -- server hop report ------------------------------------------------------
#
# A traced LOCK_ROW's OK reply carries the server-side hop durations as
# the response ``data`` payload: dispatch-queue, lock-wait,
# executor-park, reply-encode -- the wire order of
# ``repro.obs.tracing.SERVER_HOPS``.  The client subtracts their sum
# from its observed wall wait to derive the disjoint ``client.net_wait``
# hop, so hop durations sum to the end-to-end latency.

_HOP_REPORT = struct.Struct("!4d")
HOP_REPORT_BYTES = _HOP_REPORT.size


def pack_hop_report(
    dispatch_s: float, lock_wait_s: float, park_s: float, reply_s: float
) -> bytes:
    """Pack the four server-side hop durations for an OK reply."""
    return _HOP_REPORT.pack(dispatch_s, lock_wait_s, park_s, reply_s)


def parse_hop_report(
    data: bytes,
) -> Optional[Tuple[float, float, float, float]]:
    """Inverse of :func:`pack_hop_report`; None on a size mismatch."""
    if len(data) != _HOP_REPORT.size:
        return None
    dispatch_s, lock_wait_s, park_s, reply_s = _HOP_REPORT.unpack(data)
    return dispatch_s, lock_wait_s, park_s, reply_s


_FAST_OK = struct.Struct("!Qq")  # request_id, value (flags byte skipped)


def try_parse_ok(payload: bytes) -> Optional[Tuple[int, int]]:
    """Fast parse of a data-free RESP_OK payload.

    Returns ``(request_id, value)``, or None for anything else (error
    responses, stats payloads) -- callers fall back to
    :func:`decode_response`.
    """
    if payload[0] != RESP_OK or len(payload) != _OK_BODY:
        return None
    request_id, value = _FAST_OK.unpack_from(payload, _FAST_OFF)
    return request_id, value


_FAST_LOCK_ROW = struct.Struct("!QQqqB")  # rid, app, table, row, mode
_FAST_LOCK_ROW_T = struct.Struct("!QQqqBd")  # ... + timeout
_FAST_OFF = 2  # past op + flags


def try_parse_lock_row(
    payload: bytes,
) -> Optional[Tuple[int, int, int, int, int, Optional[float]]]:
    """Fast parse of a LOCK_ROW payload, timeout variant included.

    Returns ``(request_id, app_id, table_id, row_id, mode, timeout_s)``
    (timeout None when absent) or None when the payload is anything
    else -- callers fall back to :func:`decode_request`.
    """
    if payload[0] != OP_LOCK_ROW:
        return None
    flags = payload[1]
    if flags == 0 and len(payload) == _FAST_OFF + _FAST_LOCK_ROW.size:
        rid, app, table, row, mode = _FAST_LOCK_ROW.unpack_from(
            payload, _FAST_OFF
        )
        return rid, app, table, row, mode, None
    if (
        flags == FLAG_HAS_TIMEOUT
        and len(payload) == _FAST_OFF + _FAST_LOCK_ROW_T.size
    ):
        rid, app, table, row, mode, timeout = _FAST_LOCK_ROW_T.unpack_from(
            payload, _FAST_OFF
        )
        return rid, app, table, row, mode, timeout
    return None


# -- router helpers ---------------------------------------------------------

_REQUEST_ID_OFFSET = 2  # after msg type (u8) + flags (u8)
_REQUEST_ID = struct.Struct("!Q")


def rewrite_request_id(payload: bytes, request_id: int) -> bytes:
    """A copy of ``payload`` carrying ``request_id`` in its header.

    The router relays request *bodies* verbatim between client and
    worker connections but must splice in its own id space (many client
    connections multiplex onto one worker link); the fixed header
    layout makes that an 8-byte overwrite instead of a decode/encode
    round trip.
    """
    if len(payload) < HEADER_BYTES:
        raise ProtocolError("payload shorter than the fixed header")
    out = bytearray(payload)
    _REQUEST_ID.pack_into(out, _REQUEST_ID_OFFSET, request_id)
    return bytes(out)


def peek_request_id(payload: bytes) -> int:
    if len(payload) < HEADER_BYTES:
        raise ProtocolError("payload shorter than the fixed header")
    (request_id,) = _REQUEST_ID.unpack_from(payload, _REQUEST_ID_OFFSET)
    return request_id


def iter_frames(data: bytes) -> Iterator[bytes]:
    """Split a byte string of back-to-back frames (tests, tools)."""
    decoder = FrameDecoder()
    for payload in decoder.feed(data):
        yield payload
    if decoder.pending_bytes:
        raise ProtocolError(
            f"{decoder.pending_bytes} trailing bytes do not form a frame"
        )


__all__ = [
    "ConnectionLostError",
    "FrameDecoder",
    "FrameTooLargeError",
    "HOP_REPORT_BYTES",
    "MAX_BATCH_ACCESSES",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "Request",
    "Response",
    "code_for_exception",
    "decode_request",
    "decode_response",
    "encode_adopt_session",
    "encode_batch_lock",
    "encode_cancel",
    "encode_close_session",
    "encode_error",
    "encode_frame",
    "encode_lock_row",
    "encode_lock_table",
    "encode_ok",
    "encode_open_session",
    "encode_ping",
    "encode_release_all",
    "encode_stats",
    "encode_unlock_read",
    "iter_frames",
    "pack_hop_report",
    "pack_lock_row_frame",
    "pack_ok_frame",
    "parse_hop_report",
    "peek_request_id",
    "rewrite_request_id",
    "try_parse_lock_row",
    "try_parse_ok",
    "wire_mode",
    "TRACE_CTX_BYTES",
]
